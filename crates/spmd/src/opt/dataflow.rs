use crate::ir::{BcastPart, SActual, SBinOp, SExpr, SLval, SProc, SRect, SStmt, SpmdProgram};
use fortrand_analysis::framework::{self, DataflowGraph, DataflowProblem, SolveStats};
use fortrand_analysis::registry::Direction;
use fortrand_ir::dist::{ArrayDist, DistKind};

use fortrand_ir::{Interner, Sym};
use std::collections::{BTreeMap, BTreeSet};

use super::OptReport;

// ---------------------------------------------------------------------------
// Expression utilities: substitution, linear forms, proofs
// ---------------------------------------------------------------------------

pub(super) fn map_expr(e: &SExpr, f: &mut dyn FnMut(&SExpr) -> Option<SExpr>) -> SExpr {
    if let Some(r) = f(e) {
        return r;
    }
    match e {
        SExpr::Int(_) | SExpr::Real(_) | SExpr::Var(_) | SExpr::MyP | SExpr::NProcs => e.clone(),
        SExpr::Elem { array, subs } => SExpr::Elem {
            array: *array,
            subs: subs.iter().map(|s| map_expr(s, f)).collect(),
        },
        SExpr::Bin { op, l, r } => SExpr::Bin {
            op: *op,
            l: Box::new(map_expr(l, f)),
            r: Box::new(map_expr(r, f)),
        },
        SExpr::Neg(x) => SExpr::Neg(Box::new(map_expr(x, f))),
        SExpr::Not(x) => SExpr::Not(Box::new(map_expr(x, f))),
        SExpr::Intr { name, args } => SExpr::Intr {
            name: *name,
            args: args.iter().map(|a| map_expr(a, f)).collect(),
        },
        SExpr::Owner { dist, subs } => SExpr::Owner {
            dist: *dist,
            subs: subs.iter().map(|s| map_expr(s, f)).collect(),
        },
        SExpr::CurOwner { array, subs } => SExpr::CurOwner {
            array: *array,
            subs: subs.iter().map(|s| map_expr(s, f)).collect(),
        },
        SExpr::LocalIdx { dist, dim, sub } => SExpr::LocalIdx {
            dist: *dist,
            dim: *dim,
            sub: Box::new(map_expr(sub, f)),
        },
    }
}

pub(super) fn visit_expr(e: &SExpr, f: &mut dyn FnMut(&SExpr)) {
    f(e);
    match e {
        SExpr::Int(_) | SExpr::Real(_) | SExpr::Var(_) | SExpr::MyP | SExpr::NProcs => {}
        SExpr::Elem { subs, .. } | SExpr::Owner { subs, .. } | SExpr::CurOwner { subs, .. } => {
            for s in subs {
                visit_expr(s, f);
            }
        }
        SExpr::Bin { l, r, .. } => {
            visit_expr(l, f);
            visit_expr(r, f);
        }
        SExpr::Neg(x) | SExpr::Not(x) => visit_expr(x, f),
        SExpr::Intr { args, .. } => {
            for a in args {
                visit_expr(a, f);
            }
        }
        SExpr::LocalIdx { sub, .. } => visit_expr(sub, f),
    }
}

/// True if `e` mentions any of the given scalar symbols.
pub(super) fn mentions_any(e: &SExpr, syms: &BTreeSet<Sym>) -> bool {
    let mut hit = false;
    visit_expr(e, &mut |x| {
        if let SExpr::Var(s) = x {
            if syms.contains(s) {
                hit = true;
            }
        }
    });
    hit
}

/// True if `e` evaluates to the same value on every rank given that the
/// scalars in `repl` are replicated. `my$p` and array elements are not;
/// `owner()`/`local()` of replicated subscripts are (they consult the
/// shared distribution table).
fn expr_replicated(e: &SExpr, repl: &BTreeSet<Sym>) -> bool {
    match e {
        SExpr::Int(_) | SExpr::Real(_) | SExpr::NProcs => true,
        SExpr::Var(s) => repl.contains(s),
        SExpr::MyP | SExpr::Elem { .. } | SExpr::CurOwner { .. } => false,
        SExpr::Bin { l, r, .. } => expr_replicated(l, repl) && expr_replicated(r, repl),
        SExpr::Neg(x) | SExpr::Not(x) => expr_replicated(x, repl),
        SExpr::Intr { args, .. } | SExpr::Owner { subs: args, .. } => {
            args.iter().all(|a| expr_replicated(a, repl))
        }
        SExpr::LocalIdx { sub, .. } => expr_replicated(sub, repl),
    }
}

/// A linear form: sum of `coeff * atom` plus a constant, where atoms are
/// arbitrary non-additive subexpressions compared syntactically.
#[derive(Clone, Debug)]
pub(super) struct Lin {
    pub(super) terms: Vec<(SExpr, i64)>,
    pub(super) konst: i64,
}

impl Lin {
    fn konst(c: i64) -> Lin {
        Lin {
            terms: vec![],
            konst: c,
        }
    }

    fn add_term(&mut self, atom: SExpr, coeff: i64) {
        if coeff == 0 {
            return;
        }
        for (a, c) in self.terms.iter_mut() {
            if *a == atom {
                *c += coeff;
                return;
            }
        }
        self.terms.push((atom, coeff));
    }

    fn add(&mut self, other: Lin, scale: i64) {
        self.konst += other.konst * scale;
        for (a, c) in other.terms {
            self.add_term(a, c * scale);
        }
    }

    fn prune(&mut self) {
        self.terms.retain(|(_, c)| *c != 0);
    }
}

/// Linearizes an integer index expression. Non-affine nodes become opaque
/// atoms; `Real` makes the whole expression non-linearizable.
pub(super) fn linearize(e: &SExpr) -> Option<Lin> {
    match e {
        SExpr::Int(v) => Some(Lin::konst(*v)),
        SExpr::Real(_) => None,
        SExpr::Neg(x) => {
            let mut l = Lin::konst(0);
            l.add(linearize(x)?, -1);
            Some(l)
        }
        SExpr::Bin { op, l, r } => match op {
            SBinOp::Add | SBinOp::Sub => {
                let mut out = linearize(l)?;
                out.add(linearize(r)?, if *op == SBinOp::Add { 1 } else { -1 });
                out.prune();
                Some(out)
            }
            SBinOp::Mul => {
                let ll = linearize(l)?;
                let lr = linearize(r)?;
                let (lin, c) = if ll.terms.is_empty() {
                    (lr, ll.konst)
                } else if lr.terms.is_empty() {
                    (ll, lr.konst)
                } else {
                    // Non-linear product: opaque atom.
                    let mut out = Lin::konst(0);
                    out.add_term(e.clone(), 1);
                    return Some(out);
                };
                let mut out = Lin::konst(0);
                out.add(lin, c);
                out.prune();
                Some(out)
            }
            _ => {
                let mut out = Lin::konst(0);
                out.add_term(e.clone(), 1);
                Some(out)
            }
        },
        _ => {
            let mut out = Lin::konst(0);
            out.add_term(e.clone(), 1);
            Some(out)
        }
    }
}

/// Rebuilds an expression from a linear form (deterministic shape).
fn delinearize(lin: &Lin) -> SExpr {
    let mut acc: Option<SExpr> = None;
    for (a, c) in &lin.terms {
        let t = if *c == 1 {
            a.clone()
        } else if *c == -1 {
            SExpr::Neg(Box::new(a.clone()))
        } else {
            SExpr::mul(SExpr::int(*c), a.clone())
        };
        acc = Some(match acc {
            None => t,
            Some(p) => SExpr::add(p, t),
        });
    }
    match acc {
        None => SExpr::int(lin.konst),
        Some(p) if lin.konst == 0 => p,
        Some(p) if lin.konst > 0 => SExpr::add(p, SExpr::int(lin.konst)),
        Some(p) => SExpr::sub(p, SExpr::int(-lin.konst)),
    }
}

/// Applies the globalization identity to a linear form in place: the
/// codegen shapes `(local(G)-1)*P + owner(G) + 1` (CYCLIC) and
/// `owner(G)*b + local(G)` (BLOCK) collapse back to the global subscript
/// `G`. Only fires when the consulted distribution has exactly one
/// distributed dimension (so `owner` depends only on that subscript).
fn glob_identity(lin: &mut Lin, dists: &[ArrayDist]) {
    loop {
        let mut hit: Option<(usize, usize, SExpr, i64, i64)> = None; // (li, wi, g, c, extra)
        'search: for (li, (la, lc)) in lin.terms.iter().enumerate() {
            let SExpr::LocalIdx { dist, dim, sub } = la else {
                continue;
            };
            let d = &dists[dist.0 as usize];
            if d.first_dist_dim() != Some(*dim)
                || d.dims.iter().filter(|p| p.kind.is_distributed()).count() != 1
            {
                continue;
            }
            let part = &d.dims[*dim];
            for (wi, (wa, wc)) in lin.terms.iter().enumerate() {
                let SExpr::Owner { dist: wd, subs } = wa else {
                    continue;
                };
                if wd != dist || subs.len() <= *dim || !syn_eq_raw(&subs[*dim], sub) {
                    continue;
                }
                // coefficient pattern: lc = c * factor, wc = c
                let c = *wc;
                if c == 0 {
                    continue;
                }
                if part.kind == DistKind::Cyclic {
                    let p = part.nprocs as i64;
                    if *lc == c * p {
                        // c*(P*l + w) = c*(G + P - 1)
                        hit = Some((li, wi, (**sub).clone(), c, c * (p - 1)));
                        break 'search;
                    }
                }
            }
            // BLOCK: coeff(l) = c, coeff(w) = c*b
            if part.kind == DistKind::Block {
                let b = part.block_size();
                let c = *lc;
                for (wi, (wa, wc)) in lin.terms.iter().enumerate() {
                    let SExpr::Owner { dist: wd, subs } = wa else {
                        continue;
                    };
                    if let SExpr::LocalIdx { dist, dim, sub } = la {
                        if wd == dist
                            && subs.len() > *dim
                            && syn_eq_raw(&subs[*dim], sub)
                            && *wc == c * b
                        {
                            hit = Some((li, wi, (**sub).clone(), c, 0));
                            break 'search;
                        }
                    }
                }
            }
        }
        let Some((li, wi, g, c, extra)) = hit else {
            return;
        };
        let (hi_i, lo_i) = if li > wi { (li, wi) } else { (wi, li) };
        lin.terms.remove(hi_i);
        lin.terms.remove(lo_i);
        lin.konst += extra;
        if let Some(gl) = linearize(&g) {
            lin.add(gl, c);
        } else {
            lin.add_term(g, c);
        }
        lin.prune();
    }
}

/// Raw structural equality (no normalization).
fn syn_eq_raw(a: &SExpr, b: &SExpr) -> bool {
    a == b
}

/// Simplifies an index expression: recursively linearizes additive subtrees,
/// applies the globalization identity, and rebuilds a canonical shape.
pub(super) fn simplify(e: &SExpr, dists: &[ArrayDist]) -> SExpr {
    match linearize(e) {
        Some(mut lin) => {
            // Normalize atoms recursively (their subexpressions may contain
            // additive islands, e.g. LocalIdx(k+1)).
            let mut norm = Lin::konst(lin.konst);
            for (a, c) in lin.terms.drain(..) {
                let a2 = simplify_children(&a, dists);
                norm.add_term(a2, c);
            }
            norm.prune();
            glob_identity(&mut norm, dists);
            delinearize(&norm)
        }
        None => simplify_children(e, dists),
    }
}

fn simplify_children(e: &SExpr, dists: &[ArrayDist]) -> SExpr {
    match e {
        SExpr::Int(_) | SExpr::Real(_) | SExpr::Var(_) | SExpr::MyP | SExpr::NProcs => e.clone(),
        SExpr::Elem { array, subs } => SExpr::Elem {
            array: *array,
            subs: subs.iter().map(|s| simplify(s, dists)).collect(),
        },
        SExpr::Bin { op, l, r } => SExpr::bin(*op, simplify(l, dists), simplify(r, dists)),
        SExpr::Neg(x) => SExpr::Neg(Box::new(simplify(x, dists))),
        SExpr::Not(x) => SExpr::Not(Box::new(simplify(x, dists))),
        SExpr::Intr { name, args } => SExpr::Intr {
            name: *name,
            args: args.iter().map(|a| simplify(a, dists)).collect(),
        },
        SExpr::Owner { dist, subs } => SExpr::Owner {
            dist: *dist,
            subs: subs.iter().map(|s| simplify(s, dists)).collect(),
        },
        SExpr::CurOwner { array, subs } => SExpr::CurOwner {
            array: *array,
            subs: subs.iter().map(|s| simplify(s, dists)).collect(),
        },
        SExpr::LocalIdx { dist, dim, sub } => SExpr::LocalIdx {
            dist: *dist,
            dim: *dim,
            sub: Box::new(simplify(sub, dists)),
        },
    }
}

/// Symbolic ranges for scalar values, `sym → (lo, hi)` inclusive, with
/// bound expressions in the enclosing scope's terms.
pub(super) type Ranges = BTreeMap<Sym, (SExpr, SExpr)>;

/// Proves `a >= b` by showing `lin(a - b) >= 0`: substitute ranged symbols
/// by the favorable bound and recurse (depth-limited).
pub(super) fn prove_ge(a: &SExpr, b: &SExpr, ranges: &Ranges, dists: &[ArrayDist]) -> bool {
    let (Some(la), Some(lb)) = (
        linearize(&simplify(a, dists)),
        linearize(&simplify(b, dists)),
    ) else {
        return false;
    };
    let mut d = la;
    d.add(lb, -1);
    d.prune();
    prove_ge0(d, ranges, dists, 4)
}

fn prove_ge0(lin: Lin, ranges: &Ranges, dists: &[ArrayDist], depth: usize) -> bool {
    if lin.terms.is_empty() {
        return lin.konst >= 0;
    }
    if depth == 0 {
        return false;
    }
    // Substitute the first ranged Var atom by its favorable bound.
    for (i, (a, c)) in lin.terms.iter().enumerate() {
        let SExpr::Var(s) = a else { continue };
        let Some((lo, hi)) = ranges.get(s) else {
            continue;
        };
        let bound = if *c > 0 { lo } else { hi };
        let Some(lb) = linearize(&simplify(bound, dists)) else {
            continue;
        };
        // The bound must not re-mention the symbol being eliminated.
        if lb
            .terms
            .iter()
            .any(|(x, _)| matches!(x, SExpr::Var(t) if t == s))
        {
            continue;
        }
        let c = *c;
        let mut next = lin.clone();
        next.terms.remove(i);
        next.add(lb, c);
        next.prune();
        if prove_ge0(next, ranges, dists, depth - 1) {
            return true;
        }
    }
    false
}

/// Normalized syntactic equality: `a == b` after simplification, or a
/// provably-zero linear difference.
pub(super) fn syn_eq(a: &SExpr, b: &SExpr, dists: &[ArrayDist]) -> bool {
    let sa = simplify(a, dists);
    let sb = simplify(b, dists);
    if sa == sb {
        return true;
    }
    if let (Some(la), Some(lb)) = (linearize(&sa), linearize(&sb)) {
        let mut d = la;
        d.add(lb, -1);
        d.prune();
        return d.terms.is_empty() && d.konst == 0;
    }
    false
}

/// Constant-folds a simplified expression to an integer if possible.
pub(super) fn const_of(e: &SExpr, dists: &[ArrayDist]) -> Option<i64> {
    let lin = linearize(&simplify(e, dists))?;
    if lin.terms.is_empty() {
        Some(lin.konst)
    } else {
        None
    }
}

// ---------------------------------------------------------------------------
// Effect analyses over the pristine (pre-optimization) procedure snapshot
// ---------------------------------------------------------------------------

/// For each procedure, the set of formal positions whose arrays may be
/// written (transitively through nested calls). Fixpoint over the call
/// graph.
pub(super) fn written_formals(procs: &[SProc]) -> Vec<BTreeSet<usize>> {
    let mut wf: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); procs.len()];
    loop {
        let mut changed = false;
        for (i, p) in procs.iter().enumerate() {
            let mut written: BTreeSet<Sym> = BTreeSet::new();
            collect_written_arrays(&p.body, &wf, &mut written);
            for (pos, f) in p.formals.iter().enumerate() {
                if f.is_array && written.contains(&f.name) && wf[i].insert(pos) {
                    changed = true;
                }
            }
        }
        if !changed {
            return wf;
        }
    }
}

/// Collects every array symbol that may be written by `stmts` (locals,
/// formals and, through calls, actual arrays at written formal positions).
pub(super) fn collect_written_arrays(
    stmts: &[SStmt],
    wf: &[BTreeSet<usize>],
    out: &mut BTreeSet<Sym>,
) {
    for s in stmts {
        match s {
            SStmt::Assign {
                lhs: SLval::Elem { array, .. },
                ..
            } => {
                out.insert(*array);
            }
            SStmt::RecvElem {
                lhs: SLval::Elem { array, .. },
                ..
            } => {
                out.insert(*array);
            }
            SStmt::Recv { array, .. } => {
                out.insert(*array);
            }
            SStmt::Bcast { dst_array, .. } => {
                out.insert(*dst_array);
            }
            SStmt::BcastPack { parts, .. } | SStmt::WaitBcastPack { parts, .. } => {
                for p in parts {
                    if let BcastPart::Section { dst_array, .. } = p {
                        out.insert(*dst_array);
                    }
                }
            }
            SStmt::WaitRecv { array, .. } => {
                out.insert(*array);
            }
            SStmt::WaitBcast { dst_array, .. } => {
                out.insert(*dst_array);
            }
            SStmt::Remap { array, .. }
            | SStmt::RemapGlobal { array, .. }
            | SStmt::MarkDist { array, .. } => {
                out.insert(*array);
            }
            SStmt::Do { body, .. } => collect_written_arrays(body, wf, out),
            SStmt::If {
                then_body,
                else_body,
                ..
            } => {
                collect_written_arrays(then_body, wf, out);
                collect_written_arrays(else_body, wf, out);
            }
            SStmt::Call { proc, args, .. } => {
                for &pos in &wf[*proc] {
                    if let Some(SActual::Array(a)) = args.get(pos) {
                        out.insert(*a);
                    }
                }
            }
            _ => {}
        }
    }
}

/// Collects scalar symbols that may be assigned by `stmts` (including loop
/// variables, copy-out targets and received/broadcast scalars).
pub(super) fn collect_assigned_scalars(stmts: &[SStmt], out: &mut BTreeSet<Sym>) {
    for s in stmts {
        match s {
            SStmt::Assign {
                lhs: SLval::Scalar(v),
                ..
            } => {
                out.insert(*v);
            }
            SStmt::RecvElem {
                lhs: SLval::Scalar(v),
                ..
            } => {
                out.insert(*v);
            }
            SStmt::BcastScalar { var, .. } => {
                out.insert(*var);
            }
            SStmt::BcastPack { parts, .. } | SStmt::WaitBcastPack { parts, .. } => {
                for p in parts {
                    if let BcastPart::Scalar(v) = p {
                        out.insert(*v);
                    }
                }
            }
            SStmt::Do { var, body, .. } => {
                out.insert(*var);
                collect_assigned_scalars(body, out);
            }
            SStmt::If {
                then_body,
                else_body,
                ..
            } => {
                collect_assigned_scalars(then_body, out);
                collect_assigned_scalars(else_body, out);
            }
            SStmt::Call { copy_out, .. } => {
                for (_, caller) in copy_out {
                    out.insert(*caller);
                }
            }
            _ => {}
        }
    }
}

/// Counts textual occurrences of `array` in any array position of `stmts`
/// (element reads/writes, sections, call actuals). The mention audit of the
/// elimination pass compares validated mentions against this total.
fn count_mentions(stmts: &[SStmt], array: Sym) -> usize {
    fn in_expr(e: &SExpr, array: Sym) -> usize {
        let mut n = 0;
        visit_expr(e, &mut |x| {
            if let SExpr::Elem { array: a, .. } = x {
                if *a == array {
                    n += 1;
                }
            }
            if let SExpr::CurOwner { array: a, .. } = x {
                if *a == array {
                    n += 1;
                }
            }
        });
        n
    }
    fn in_rect(r: &SRect, array: Sym) -> usize {
        r.dims
            .iter()
            .map(|(lo, hi, _)| in_expr(lo, array) + in_expr(hi, array))
            .sum()
    }
    let mut n = 0;
    for s in stmts {
        match s {
            SStmt::Assign { lhs, rhs } => {
                n += in_expr(rhs, array);
                if let SLval::Elem { array: a, subs } = lhs {
                    if *a == array {
                        n += 1;
                    }
                    n += subs.iter().map(|e| in_expr(e, array)).sum::<usize>();
                }
            }
            SStmt::Do { lo, hi, body, .. } => {
                n += in_expr(lo, array) + in_expr(hi, array) + count_mentions(body, array);
            }
            SStmt::If {
                cond,
                then_body,
                else_body,
            } => {
                n += in_expr(cond, array)
                    + count_mentions(then_body, array)
                    + count_mentions(else_body, array);
            }
            SStmt::Call { args, .. } => {
                for a in args {
                    match a {
                        SActual::Array(s) if *s == array => n += 1,
                        SActual::Scalar(e) => n += in_expr(e, array),
                        _ => {}
                    }
                }
            }
            SStmt::Send {
                to,
                array: a,
                section,
                ..
            } => {
                n += in_expr(to, array) + in_rect(section, array) + usize::from(*a == array);
            }
            SStmt::Recv {
                from,
                array: a,
                section,
                ..
            } => {
                n += in_expr(from, array) + in_rect(section, array) + usize::from(*a == array);
            }
            SStmt::SendElem { to, value, .. } => n += in_expr(to, array) + in_expr(value, array),
            SStmt::RecvElem { from, lhs, .. } => {
                n += in_expr(from, array);
                if let SLval::Elem { array: a, subs } = lhs {
                    if *a == array {
                        n += 1;
                    }
                    n += subs.iter().map(|e| in_expr(e, array)).sum::<usize>();
                }
            }
            SStmt::Bcast {
                root,
                src_array,
                src_section,
                dst_array,
                dst_section,
            } => {
                n += in_expr(root, array)
                    + in_rect(src_section, array)
                    + in_rect(dst_section, array)
                    + usize::from(*src_array == array)
                    + usize::from(*dst_array == array);
            }
            SStmt::BcastScalar { root, .. } => n += in_expr(root, array),
            SStmt::BcastPack { root, parts } => {
                n += in_expr(root, array);
                for p in parts {
                    if let BcastPart::Section {
                        src_array,
                        src_section,
                        dst_array,
                        dst_section,
                    } = p
                    {
                        n += in_rect(src_section, array)
                            + in_rect(dst_section, array)
                            + usize::from(*src_array == array)
                            + usize::from(*dst_array == array);
                    }
                }
            }
            SStmt::PostSend {
                to,
                array: a,
                section,
                ..
            } => {
                n += in_expr(to, array) + in_rect(section, array) + usize::from(*a == array);
            }
            SStmt::WaitSend { .. } => {}
            SStmt::PostRecv { from, .. } => n += in_expr(from, array),
            SStmt::WaitRecv {
                array: a, section, ..
            } => {
                n += in_rect(section, array) + usize::from(*a == array);
            }
            SStmt::PostBcast {
                root,
                src_array,
                src_section,
                ..
            } => {
                n += in_expr(root, array)
                    + in_rect(src_section, array)
                    + usize::from(*src_array == array);
            }
            SStmt::WaitBcast {
                dst_array,
                dst_section,
                ..
            } => {
                n += in_rect(dst_section, array) + usize::from(*dst_array == array);
            }
            SStmt::PostBcastPack { root, parts, .. } => {
                n += in_expr(root, array);
                for p in parts {
                    if let BcastPart::Section {
                        src_array,
                        src_section,
                        ..
                    } = p
                    {
                        n += in_rect(src_section, array) + usize::from(*src_array == array);
                    }
                }
            }
            SStmt::WaitBcastPack { parts, .. } => {
                for p in parts {
                    if let BcastPart::Section {
                        dst_array,
                        dst_section,
                        ..
                    } = p
                    {
                        n += in_rect(dst_section, array) + usize::from(*dst_array == array);
                    }
                }
            }
            SStmt::Remap { array: a, .. }
            | SStmt::RemapGlobal { array: a, .. }
            | SStmt::MarkDist { array: a, .. } => n += usize::from(*a == array),
            SStmt::Print { args } => {
                n += args.iter().map(|e| in_expr(e, array)).sum::<usize>();
            }
            SStmt::Comment(_) | SStmt::Return | SStmt::Stop => {}
        }
    }
    n
}

/// Finds the call sites (callee proc indices) anywhere inside `stmts`.
pub(super) fn collect_callees(stmts: &[SStmt], out: &mut Vec<usize>) {
    for s in stmts {
        match s {
            SStmt::Call { proc, .. } => out.push(*proc),
            SStmt::Do { body, .. } => collect_callees(body, out),
            SStmt::If {
                then_body,
                else_body,
                ..
            } => {
                collect_callees(then_body, out);
                collect_callees(else_body, out);
            }
            _ => {}
        }
    }
}

/// Orders procedures callers-before-callees (Kahn). Procedures on call
/// cycles (or called from them) are appended in index order and flagged:
/// their recorded entry states are discarded (⊥).
fn topo_callers_first(procs: &[SProc]) -> (Vec<usize>, Vec<bool>) {
    let n = procs.len();
    let mut callees: Vec<Vec<usize>> = Vec::with_capacity(n);
    let mut indeg = vec![0usize; n];
    for p in procs {
        let mut cs = Vec::new();
        collect_callees(&p.body, &mut cs);
        cs.sort_unstable();
        cs.dedup();
        for &c in &cs {
            indeg[c] += 1;
        }
        callees.push(cs);
    }
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut seen = vec![false; n];
    while let Some(i) = queue.pop() {
        if seen[i] {
            continue;
        }
        seen[i] = true;
        order.push(i);
        for &c in &callees[i] {
            indeg[c] -= 1;
            if indeg[c] == 0 {
                queue.push(c);
            }
        }
        queue.sort_unstable_by(|a, b| b.cmp(a)); // deterministic: lowest index next
    }
    let mut cyclic = vec![false; n];
    for i in 0..n {
        if !seen[i] {
            cyclic[i] = true;
            order.push(i);
        }
    }
    (order, cyclic)
}

// ---------------------------------------------------------------------------
// Redundant-communication elimination: available-section facts
// ---------------------------------------------------------------------------

/// One available-data fact: every rank holds `src[src_sec]` (as seen on
/// `root`) in `buf[dst_sec]`. `shadows` are pending replicated updates to
/// `buf` (mirrors of guarded writes to `src`) that must be spliced into the
/// output before the fact can be used.
#[derive(Clone, Debug, PartialEq)]
struct Fact {
    id: usize,
    src: Sym,
    buf: Sym,
    root: SExpr,
    /// Source section (simplified); pinned dims have `lo == hi`.
    src_sec: SRect,
    /// Buffer section — one dim per non-pinned source dim, same bounds.
    dst_sec: SRect,
    /// Indices of the non-pinned dims of `src_sec`, in order.
    row_dims: Vec<usize>,
    shadows: Vec<SStmt>,
    is_entry: bool,
}

impl Fact {
    fn mentions(&self, syms: &BTreeSet<Sym>) -> bool {
        let mut hit = mentions_any(&self.root, syms);
        for (lo, hi, _) in self.src_sec.dims.iter().chain(self.dst_sec.dims.iter()) {
            hit |= mentions_any(lo, syms) || mentions_any(hi, syms);
        }
        hit
    }

    fn pinned_dims(&self) -> Vec<usize> {
        (0..self.src_sec.dims.len())
            .filter(|d| !self.row_dims.contains(d))
            .collect()
    }
}

/// Dataflow state at a program point.
#[derive(Clone, Debug, Default)]
struct State {
    /// Scalars provably holding the same value on every rank.
    repl: BTreeSet<Sym>,
    /// Value ranges for scalars (used by the containment prover).
    ranges: Ranges,
    /// Live available-section facts.
    facts: Vec<Fact>,
}

/// Callee entry state accumulated over call sites (met pairwise).
#[derive(Clone, Debug, Default)]
struct Entry {
    repl: BTreeSet<Sym>,
    ranges: Ranges,
    facts: Vec<Fact>,
    bounds: BTreeMap<Sym, Vec<(i64, i64)>>,
}

fn meet_entries(a: Entry, b: &Entry) -> Entry {
    Entry {
        repl: a.repl.intersection(&b.repl).copied().collect(),
        ranges: a
            .ranges
            .into_iter()
            .filter(|(s, r)| b.ranges.get(s) == Some(r))
            .collect(),
        facts: a
            .facts
            .into_iter()
            .filter(|f| {
                b.facts.iter().any(|g| {
                    f.src == g.src
                        && f.buf == g.buf
                        && f.root == g.root
                        && f.src_sec == g.src_sec
                        && f.dst_sec == g.dst_sec
                })
            })
            .collect(),
        bounds: a
            .bounds
            .into_iter()
            .filter(|(s, bs)| b.bounds.get(s) == Some(bs))
            .collect(),
    }
}

/// The elimination scan for one procedure.
struct Scan<'a> {
    interner: &'a mut Interner,
    dists: &'a [ArrayDist],
    snapshot: &'a [SProc],
    wf: &'a [BTreeSet<usize>],
    /// Index of the procedure being scanned (the dataflow node).
    caller: usize,
    /// Callee entry contributions recorded per `(caller, callee)` edge in
    /// arrival order; the framework solver replays them through
    /// [`meet_entries`] when the callee's turn comes.
    contribs: &'a mut BTreeMap<(usize, usize), Vec<Entry>>,
    cyclic: &'a [bool],
    /// Decl bounds for this proc's arrays (own decls + entry-mapped formals).
    bounds: BTreeMap<Sym, Vec<(i64, i64)>>,
    /// Array formals of this proc (shadow writes to them are not allowed:
    /// callers were analyzed against the pristine write sets).
    formal_arrays: BTreeSet<Sym>,
    /// Pristine body, kept for mention counting.
    original: Vec<SStmt>,
    mention_memo: BTreeMap<Sym, usize>,
    /// Validated buffer mentions (scan-wide, per buffer array).
    validated: BTreeMap<Sym, usize>,
    next_fact_id: usize,
    eliminated: usize,
    notes: Vec<String>,
}

impl<'a> Scan<'a> {
    fn mention_total(&mut self, buf: Sym) -> usize {
        if let Some(&n) = self.mention_memo.get(&buf) {
            return n;
        }
        let n = count_mentions(&self.original, buf);
        self.mention_memo.insert(buf, n);
        n
    }

    fn rect_simplify(&self, r: &SRect) -> SRect {
        SRect {
            dims: r
                .dims
                .iter()
                .map(|(lo, hi, st)| (simplify(lo, self.dists), simplify(hi, self.dists), *st))
                .collect(),
        }
    }

    fn rect_replicated(&self, r: &SRect, repl: &BTreeSet<Sym>) -> bool {
        r.dims
            .iter()
            .all(|(lo, hi, _)| expr_replicated(lo, repl) && expr_replicated(hi, repl))
    }

    fn kill_facts_writing(&mut self, st: &mut State, arrays: &BTreeSet<Sym>) {
        st.facts
            .retain(|f| !arrays.contains(&f.src) && !arrays.contains(&f.buf));
    }

    fn kill_facts_mentioning(&mut self, st: &mut State, syms: &BTreeSet<Sym>) {
        st.facts.retain(|f| !f.mentions(syms));
    }

    fn drop_ranges_mentioning(&mut self, st: &mut State, syms: &BTreeSet<Sym>) {
        st.ranges.retain(|s, (lo, hi)| {
            !syms.contains(s) && !mentions_any(lo, syms) && !mentions_any(hi, syms)
        });
    }

    /// Validates element reads of live fact buffers inside `e`: each
    /// in-region read is accounted toward the mention audit.
    fn validate_expr(&mut self, e: &SExpr, st: &State) {
        let mut reads: Vec<(Sym, Vec<SExpr>)> = Vec::new();
        visit_expr(e, &mut |x| {
            if let SExpr::Elem { array, subs } = x {
                reads.push((*array, subs.clone()));
            }
        });
        for (array, subs) in reads {
            if let Some(f) = st.facts.iter().find(|f| f.buf == array) {
                if self.subs_in_region(&subs, f, &st.ranges) {
                    *self.validated.entry(array).or_insert(0) += 1;
                }
            }
        }
    }

    /// True if `subs` (one per buffer dim) provably lie inside the fact's
    /// buffer region.
    fn subs_in_region(&self, subs: &[SExpr], f: &Fact, ranges: &Ranges) -> bool {
        subs.len() == f.dst_sec.dims.len()
            && subs
                .iter()
                .zip(f.dst_sec.dims.iter())
                .all(|(s, (lo, hi, _))| {
                    prove_ge(s, lo, ranges, self.dists) && prove_ge(hi, s, ranges, self.dists)
                })
    }

    /// Validates a section read of a fact buffer (e.g. as a broadcast or
    /// send source).
    fn validate_section_read(&mut self, array: Sym, sec: &SRect, st: &State) {
        if let Some(f) = st.facts.iter().find(|f| f.buf == array) {
            let inside = sec.dims.len() == f.dst_sec.dims.len()
                && sec.dims.iter().zip(f.dst_sec.dims.iter()).all(
                    |((lo, hi, _), (flo, fhi, _))| {
                        prove_ge(lo, flo, &st.ranges, self.dists)
                            && prove_ge(fhi, hi, &st.ranges, self.dists)
                    },
                );
            if inside {
                *self.validated.entry(array).or_insert(0) += 1;
            }
        }
    }

    /// Attempts to establish a fact for the broadcast `dst ← src[sec]`.
    fn establish(
        &mut self,
        st: &mut State,
        root: &SExpr,
        src: Sym,
        src_sec: &SRect,
        dst: Sym,
        dst_sec: &SRect,
    ) {
        if src == dst || !expr_replicated(root, &st.repl) {
            return;
        }
        let src_sec = self.rect_simplify(src_sec);
        let dst_sec = self.rect_simplify(dst_sec);
        if !self.rect_replicated(&src_sec, &st.repl)
            || !self.rect_replicated(&dst_sec, &st.repl)
            || src_sec.dims.iter().any(|d| d.2 != 1)
            || dst_sec.dims.iter().any(|d| d.2 != 1)
        {
            return;
        }
        let row_dims: Vec<usize> = (0..src_sec.dims.len())
            .filter(|&d| !syn_eq(&src_sec.dims[d].0, &src_sec.dims[d].1, self.dists))
            .collect();
        if dst_sec.dims.len() != row_dims.len() {
            return;
        }
        for (i, &rd) in row_dims.iter().enumerate() {
            if !syn_eq(&dst_sec.dims[i].0, &src_sec.dims[rd].0, self.dists)
                || !syn_eq(&dst_sec.dims[i].1, &src_sec.dims[rd].1, self.dists)
            {
                return;
            }
        }
        st.facts.retain(|f| f.buf != dst);
        *self.validated.entry(dst).or_insert(0) += 1;
        let id = self.next_fact_id;
        self.next_fact_id += 1;
        st.facts.push(Fact {
            id,
            src,
            buf: dst,
            root: simplify(root, self.dists),
            src_sec,
            dst_sec,
            row_dims,
            shadows: vec![],
            is_entry: false,
        });
    }

    /// Handles one `Bcast`: tries elimination against the live facts, else
    /// performs kills and (re-)establishment. Pushes the replacement
    /// statements onto `out`.
    #[allow(clippy::too_many_arguments)]
    fn scan_bcast(
        &mut self,
        st: &mut State,
        out: &mut Vec<SStmt>,
        root: SExpr,
        src_array: Sym,
        src_section: SRect,
        dst_array: Sym,
        dst_section: SRect,
    ) {
        self.validate_section_read(src_array, &src_section, st);
        if let Some((rep, buf)) =
            self.try_eliminate(st, &root, src_array, &src_section, dst_array, &dst_section)
        {
            out.extend(rep);
            self.eliminated += 1;
            if dst_array == buf {
                // Nothing was written: the buffer already holds the data.
                *self.validated.entry(dst_array).or_insert(0) += 1;
            } else {
                // The copy writes dst exactly as the broadcast would have.
                st.facts
                    .retain(|f| f.buf != dst_array && f.src != dst_array);
                self.establish(st, &root, src_array, &src_section, dst_array, &dst_section);
            }
            return;
        }
        let mut w = BTreeSet::new();
        w.insert(dst_array);
        self.kill_facts_writing(st, &w);
        self.establish(st, &root, src_array, &src_section, dst_array, &dst_section);
        out.push(SStmt::Bcast {
            root,
            src_array,
            src_section,
            dst_array,
            dst_section,
        });
    }

    /// The elimination check proper: returns the replacement statements
    /// (spliced shadows + local copy) if the broadcast is redundant.
    fn try_eliminate(
        &mut self,
        st: &mut State,
        root: &SExpr,
        src: Sym,
        src_sec: &SRect,
        dst: Sym,
        dst_sec: &SRect,
    ) -> Option<(Vec<SStmt>, Sym)> {
        let src_sec = self.rect_simplify(src_sec);
        let dst_sec = self.rect_simplify(dst_sec);
        if !self.rect_replicated(&src_sec, &st.repl)
            || !self.rect_replicated(&dst_sec, &st.repl)
            || !expr_replicated(root, &st.repl)
            || src_sec.dims.iter().any(|d| d.2 != 1)
            || dst_sec.dims.iter().any(|d| d.2 != 1)
        {
            return None;
        }
        let fidx = (0..st.facts.len()).find(|&i| {
            let f = &st.facts[i];
            if f.src != src
                || !syn_eq(&f.root, &simplify(root, self.dists), self.dists)
                || f.src_sec.dims.len() != src_sec.dims.len()
                || dst_sec.dims.len() != f.row_dims.len()
            {
                return false;
            }
            // Pinned dims must match exactly; row dims must be contained.
            for d in f.pinned_dims() {
                let (lo, hi, _) = &src_sec.dims[d];
                if !syn_eq(lo, hi, self.dists) || !syn_eq(lo, &f.src_sec.dims[d].0, self.dists) {
                    return false;
                }
            }
            for (i2, &rd) in f.row_dims.iter().enumerate() {
                let (lo, hi, _) = &src_sec.dims[rd];
                let (flo, fhi, _) = &f.src_sec.dims[rd];
                if !prove_ge(lo, flo, &st.ranges, self.dists)
                    || !prove_ge(fhi, hi, &st.ranges, self.dists)
                {
                    return false;
                }
                // The new destination must be indexed by the same row
                // coordinates as the buffer.
                let (dlo, dhi, _) = &dst_sec.dims[i2];
                if !syn_eq(dlo, lo, self.dists) || !syn_eq(dhi, hi, self.dists) {
                    return false;
                }
            }
            true
        })?;
        // Mention audit: splicing shadows mutates the buffer, so every
        // textual mention of it must already be validated (i.e. covered by
        // an establishment at its execution point).
        let buf = st.facts[fidx].buf;
        if !st.facts[fidx].shadows.is_empty() {
            let total = self.mention_total(buf);
            if self.validated.get(&buf).copied().unwrap_or(0) != total {
                return None;
            }
        }
        let mut rep: Vec<SStmt> = Vec::new();
        rep.append(&mut st.facts[fidx].shadows);
        if dst != buf {
            // Nested copy loops: dst[sec] = buf[sec], indexed by the shared
            // row coordinates.
            let mut vars = Vec::new();
            for _ in &dst_sec.dims {
                vars.push(self.interner.fresh("i$c"));
            }
            let subs: Vec<SExpr> = vars.iter().map(|&v| SExpr::Var(v)).collect();
            let mut stmt = SStmt::Assign {
                lhs: SLval::Elem {
                    array: dst,
                    subs: subs.clone(),
                },
                rhs: SExpr::Elem { array: buf, subs },
            };
            for (i2, &v) in vars.iter().enumerate().rev() {
                let (lo, hi, _) = &dst_sec.dims[i2];
                stmt = SStmt::Do {
                    var: v,
                    lo: lo.clone(),
                    hi: hi.clone(),
                    step: 1,
                    body: vec![stmt],
                };
            }
            rep.push(stmt);
        }
        self.notes.push(format!(
            "elim bcast src={} via buf={}",
            self.interner.name(src),
            self.interner.name(buf)
        ));
        Some((rep, buf))
    }
}

/// Rewrites a caller-term expression into callee formal terms: plain-`Var`
/// scalar actuals map to their formals, constants and run-time resolution
/// nodes pass through. Fails (None) on anything rank- or caller-local.
fn rewrite_to_callee(e: &SExpr, smap: &BTreeMap<Sym, Sym>) -> Option<SExpr> {
    match e {
        SExpr::Int(_) | SExpr::Real(_) | SExpr::NProcs => Some(e.clone()),
        SExpr::Var(s) => smap.get(s).map(|f| SExpr::Var(*f)),
        SExpr::MyP | SExpr::Elem { .. } | SExpr::CurOwner { .. } => None,
        SExpr::Bin { op, l, r } => Some(SExpr::bin(
            *op,
            rewrite_to_callee(l, smap)?,
            rewrite_to_callee(r, smap)?,
        )),
        SExpr::Neg(x) => Some(SExpr::Neg(Box::new(rewrite_to_callee(x, smap)?))),
        SExpr::Not(x) => Some(SExpr::Not(Box::new(rewrite_to_callee(x, smap)?))),
        SExpr::Intr { name, args } => Some(SExpr::Intr {
            name: *name,
            args: args
                .iter()
                .map(|a| rewrite_to_callee(a, smap))
                .collect::<Option<Vec<_>>>()?,
        }),
        SExpr::Owner { dist, subs } => Some(SExpr::Owner {
            dist: *dist,
            subs: subs
                .iter()
                .map(|a| rewrite_to_callee(a, smap))
                .collect::<Option<Vec<_>>>()?,
        }),
        SExpr::LocalIdx { dist, dim, sub } => Some(SExpr::LocalIdx {
            dist: *dist,
            dim: *dim,
            sub: Box::new(rewrite_to_callee(sub, smap)?),
        }),
    }
}

fn rewrite_rect_to_callee(r: &SRect, smap: &BTreeMap<Sym, Sym>) -> Option<SRect> {
    Some(SRect {
        dims: r
            .dims
            .iter()
            .map(|(lo, hi, st)| {
                Some((
                    rewrite_to_callee(lo, smap)?,
                    rewrite_to_callee(hi, smap)?,
                    *st,
                ))
            })
            .collect::<Option<Vec<_>>>()?,
    })
}

fn expr_rank_dependent_value(e: &SExpr) -> bool {
    let mut hit = false;
    visit_expr(e, &mut |x| {
        if matches!(x, SExpr::MyP | SExpr::Elem { .. } | SExpr::CurOwner { .. }) {
            hit = true;
        }
    });
    hit
}

fn mentions_sym(e: &SExpr, s: Sym) -> bool {
    let mut set = BTreeSet::new();
    set.insert(s);
    mentions_any(e, &set)
}

impl<'a> Scan<'a> {
    fn record_bottom_calls(&mut self, stmts: &[SStmt]) {
        let mut cs = Vec::new();
        collect_callees(stmts, &mut cs);
        for c in cs {
            self.merge_entry(c, Entry::default());
        }
    }

    fn merge_entry(&mut self, callee: usize, e: Entry) {
        if self.cyclic[callee] {
            return;
        }
        self.contribs
            .entry((self.caller, callee))
            .or_default()
            .push(e);
    }

    fn record_entry(&mut self, callee: usize, args: &[SActual], st: &State) {
        if self.cyclic[callee] {
            return;
        }
        let cal = &self.snapshot[callee];
        if cal.formals.len() != args.len() {
            self.merge_entry(callee, Entry::default());
            return;
        }
        let mut smap: BTreeMap<Sym, Sym> = BTreeMap::new();
        let mut amap: BTreeMap<Sym, Sym> = BTreeMap::new();
        let mut e = Entry::default();
        for (f, a) in cal.formals.iter().zip(args) {
            match a {
                SActual::Scalar(x) => {
                    if expr_replicated(x, &st.repl) {
                        e.repl.insert(f.name);
                    }
                    if let SExpr::Var(s) = x {
                        smap.entry(*s).or_insert(f.name);
                    }
                }
                SActual::Array(s) => {
                    amap.entry(*s).or_insert(f.name);
                    if let Some(b) = self.bounds.get(s) {
                        e.bounds.insert(f.name, b.clone());
                    }
                }
            }
        }
        for (f, a) in cal.formals.iter().zip(args) {
            if let SActual::Scalar(x) = a {
                let rng = match x {
                    SExpr::Int(v) => Some((SExpr::int(*v), SExpr::int(*v))),
                    SExpr::Var(s) => st.ranges.get(s).and_then(|(lo, hi)| {
                        Some((rewrite_to_callee(lo, &smap)?, rewrite_to_callee(hi, &smap)?))
                    }),
                    _ => None,
                };
                if let Some(r) = rng {
                    e.ranges.insert(f.name, r);
                }
            }
        }
        for f in &st.facts {
            if !f.shadows.is_empty() {
                continue;
            }
            let (Some(&fs), Some(&fb)) = (amap.get(&f.src), amap.get(&f.buf)) else {
                continue;
            };
            let Some(root) = rewrite_to_callee(&f.root, &smap) else {
                continue;
            };
            let Some(ss) = rewrite_rect_to_callee(&f.src_sec, &smap) else {
                continue;
            };
            let Some(ds) = rewrite_rect_to_callee(&f.dst_sec, &smap) else {
                continue;
            };
            e.facts.push(Fact {
                id: 0,
                src: fs,
                buf: fb,
                root,
                src_sec: ss,
                dst_sec: ds,
                row_dims: f.row_dims.clone(),
                shadows: vec![],
                is_entry: true,
            });
        }
        self.merge_entry(callee, e);
    }

    /// For every live fact touched by the given write/assign sets, tries to
    /// absorb the effect as a shadow (a mirror of `to_mirror` with
    /// `my$p ↦ fact.root`), else kills the fact. `guard_root`, when set,
    /// additionally requires the fact's root to equal the guarding rank.
    fn absorb(
        &mut self,
        st: &mut State,
        writes: &BTreeSet<Sym>,
        assigned: &BTreeSet<Sym>,
        to_mirror: Option<&[SStmt]>,
        guard_root: Option<&SExpr>,
    ) {
        let mut i = 0;
        while i < st.facts.len() {
            let (touched_w, touched_s, can_shadow, root, guard_ok) = {
                let f = &st.facts[i];
                let tw = writes.contains(&f.src) || writes.contains(&f.buf);
                let ts = f.mentions(assigned);
                let can = tw
                    && !ts
                    && !writes.contains(&f.buf)
                    && !f.is_entry
                    && !self.formal_arrays.contains(&f.buf);
                let gok = match guard_root {
                    None => true,
                    Some(r) => syn_eq(r, &f.root, self.dists),
                };
                (tw, ts, can, f.root.clone(), gok)
            };
            if !touched_w && !touched_s {
                i += 1;
                continue;
            }
            let mut survived = false;
            if can_shadow && guard_ok {
                if let Some(stmts) = to_mirror {
                    let fact = st.facts[i].clone();
                    let _ = root;
                    if let Some(sh) = self.mirror_entry(&fact, stmts, &st.repl, &st.ranges) {
                        st.facts[i].shadows.extend(sh);
                        survived = true;
                    }
                }
            }
            if survived {
                i += 1;
            } else {
                st.facts.remove(i);
            }
        }
    }

    fn scan_stmts(&mut self, stmts: Vec<SStmt>, st: &mut State) -> Vec<SStmt> {
        let mut out = Vec::with_capacity(stmts.len());
        for s in stmts {
            match s {
                SStmt::Comment(_) | SStmt::Return | SStmt::Stop => out.push(s),
                SStmt::Print { args } => {
                    for a in &args {
                        self.validate_expr(a, st);
                    }
                    out.push(SStmt::Print { args });
                }
                SStmt::Assign { lhs, rhs } => {
                    self.validate_expr(&rhs, st);
                    match lhs {
                        SLval::Scalar(sy) => {
                            let new_repl = expr_replicated(&rhs, &st.repl);
                            let srhs = simplify(&rhs, self.dists);
                            let range_ok = new_repl
                                && !expr_rank_dependent_value(&srhs)
                                && !mentions_sym(&srhs, sy);
                            let mut killed = BTreeSet::new();
                            killed.insert(sy);
                            st.repl.remove(&sy);
                            self.drop_ranges_mentioning(st, &killed);
                            self.kill_facts_mentioning(st, &killed);
                            if new_repl {
                                st.repl.insert(sy);
                            }
                            if range_ok {
                                st.ranges.insert(sy, (srhs.clone(), srhs));
                            }
                            out.push(SStmt::Assign {
                                lhs: SLval::Scalar(sy),
                                rhs,
                            });
                        }
                        SLval::Elem { array, subs } => {
                            for sub in &subs {
                                self.validate_expr(sub, st);
                            }
                            let stmt = SStmt::Assign {
                                lhs: SLval::Elem { array, subs },
                                rhs,
                            };
                            let mut writes = BTreeSet::new();
                            writes.insert(array);
                            let empty = BTreeSet::new();
                            self.absorb(
                                st,
                                &writes,
                                &empty,
                                Some(std::slice::from_ref(&stmt)),
                                None,
                            );
                            out.push(stmt);
                        }
                    }
                }
                SStmt::Bcast {
                    root,
                    src_array,
                    src_section,
                    dst_array,
                    dst_section,
                } => {
                    self.scan_bcast(
                        st,
                        &mut out,
                        root,
                        src_array,
                        src_section,
                        dst_array,
                        dst_section,
                    );
                }
                SStmt::BcastScalar { root, var } => {
                    self.validate_expr(&root, st);
                    let mut killed = BTreeSet::new();
                    killed.insert(var);
                    self.drop_ranges_mentioning(st, &killed);
                    self.kill_facts_mentioning(st, &killed);
                    st.repl.insert(var);
                    out.push(SStmt::BcastScalar { root, var });
                }
                SStmt::BcastPack { root, parts } => {
                    // Conservative: produced only by later passes, but keep
                    // the state sound if encountered.
                    let mut writes = BTreeSet::new();
                    let mut assigned = BTreeSet::new();
                    for p in &parts {
                        match p {
                            BcastPart::Section { dst_array, .. } => {
                                writes.insert(*dst_array);
                            }
                            BcastPart::Scalar(v) => {
                                assigned.insert(*v);
                            }
                        }
                    }
                    self.kill_facts_writing(st, &writes);
                    self.kill_facts_mentioning(st, &assigned);
                    self.drop_ranges_mentioning(st, &assigned);
                    for v in assigned {
                        st.repl.insert(v);
                    }
                    out.push(SStmt::BcastPack { root, parts });
                }
                SStmt::Send {
                    to,
                    tag,
                    array,
                    section,
                } => {
                    self.validate_expr(&to, st);
                    self.validate_section_read(array, &section, st);
                    out.push(SStmt::Send {
                        to,
                        tag,
                        array,
                        section,
                    });
                }
                SStmt::Recv {
                    from,
                    tag,
                    array,
                    section,
                } => {
                    self.validate_expr(&from, st);
                    let mut w = BTreeSet::new();
                    w.insert(array);
                    self.kill_facts_writing(st, &w);
                    out.push(SStmt::Recv {
                        from,
                        tag,
                        array,
                        section,
                    });
                }
                SStmt::SendElem { to, tag, value } => {
                    self.validate_expr(&to, st);
                    self.validate_expr(&value, st);
                    out.push(SStmt::SendElem { to, tag, value });
                }
                SStmt::RecvElem { from, tag, lhs } => {
                    self.validate_expr(&from, st);
                    match &lhs {
                        SLval::Scalar(v) => {
                            let mut killed = BTreeSet::new();
                            killed.insert(*v);
                            st.repl.remove(v);
                            self.drop_ranges_mentioning(st, &killed);
                            self.kill_facts_mentioning(st, &killed);
                        }
                        SLval::Elem { array, .. } => {
                            let mut w = BTreeSet::new();
                            w.insert(*array);
                            self.kill_facts_writing(st, &w);
                        }
                    }
                    out.push(SStmt::RecvElem { from, tag, lhs });
                }
                SStmt::Remap { array, to_dist }
                | SStmt::RemapGlobal { array, to_dist }
                | SStmt::MarkDist { array, to_dist } => {
                    let mut w = BTreeSet::new();
                    w.insert(array);
                    self.kill_facts_writing(st, &w);
                    // Re-box the exact variant unchanged.
                    out.push(match s {
                        SStmt::Remap { .. } => SStmt::Remap { array, to_dist },
                        SStmt::RemapGlobal { .. } => SStmt::RemapGlobal { array, to_dist },
                        _ => SStmt::MarkDist { array, to_dist },
                    });
                }
                s @ (SStmt::PostSend { .. }
                | SStmt::WaitSend { .. }
                | SStmt::PostRecv { .. }
                | SStmt::WaitRecv { .. }
                | SStmt::PostBcast { .. }
                | SStmt::WaitBcast { .. }
                | SStmt::PostBcastPack { .. }
                | SStmt::WaitBcastPack { .. }) => {
                    // Post/wait forms are produced only by the overlap pass,
                    // which runs after elimination; keep the state sound if
                    // ever encountered by killing everything they write.
                    let mut writes = BTreeSet::new();
                    let mut assigned = BTreeSet::new();
                    match &s {
                        SStmt::WaitRecv { array, .. } => {
                            writes.insert(*array);
                        }
                        SStmt::WaitBcast { dst_array, .. } => {
                            writes.insert(*dst_array);
                        }
                        SStmt::WaitBcastPack { parts, .. } => {
                            for p in parts {
                                match p {
                                    BcastPart::Section { dst_array, .. } => {
                                        writes.insert(*dst_array);
                                    }
                                    BcastPart::Scalar(v) => {
                                        assigned.insert(*v);
                                    }
                                }
                            }
                        }
                        _ => {}
                    }
                    self.kill_facts_writing(st, &writes);
                    self.kill_facts_mentioning(st, &assigned);
                    self.drop_ranges_mentioning(st, &assigned);
                    for v in assigned {
                        st.repl.insert(v);
                    }
                    out.push(s);
                }
                SStmt::Do {
                    var,
                    lo,
                    hi,
                    step,
                    body,
                } => {
                    let stmt = self.scan_do(st, var, lo, hi, step, body);
                    out.push(stmt);
                }
                SStmt::If {
                    cond,
                    then_body,
                    else_body,
                } => {
                    let stmt = self.scan_if(st, cond, then_body, else_body);
                    out.push(stmt);
                }
                SStmt::Call {
                    proc,
                    args,
                    copy_out,
                } => {
                    let stmt = self.scan_call(st, proc, args, copy_out);
                    out.push(stmt);
                }
            }
        }
        out
    }

    fn scan_do(
        &mut self,
        st: &mut State,
        var: Sym,
        lo: SExpr,
        hi: SExpr,
        step: i64,
        body: Vec<SStmt>,
    ) -> SStmt {
        self.validate_expr(&lo, st);
        self.validate_expr(&hi, st);
        let mut writes = BTreeSet::new();
        collect_written_arrays(&body, self.wf, &mut writes);
        let mut assigned = BTreeSet::new();
        assigned.insert(var);
        collect_assigned_scalars(&body, &mut assigned);

        // Partition facts: untouched shadow-free facts flow into the body
        // (valid at every iteration start); untouched facts with pending
        // shadows survive the loop but must not enter it (their shadows
        // would splice per-iteration); touched facts get a whole-loop
        // mirror or die.
        let mut passed: Vec<Fact> = vec![];
        let mut kept: Vec<Fact> = vec![];
        let mut touched: Vec<Fact> = vec![];
        for f in std::mem::take(&mut st.facts) {
            let t = writes.contains(&f.src) || writes.contains(&f.buf) || f.mentions(&assigned);
            if !t && f.shadows.is_empty() {
                passed.push(f);
            } else if !t {
                kept.push(f);
            } else {
                touched.push(f);
            }
        }
        let whole = SStmt::Do {
            var,
            lo: lo.clone(),
            hi: hi.clone(),
            step,
            body: body.clone(),
        };
        let mut touched_alive: Vec<Fact> = vec![];
        for mut f in touched {
            let can = !writes.contains(&f.buf)
                && !f.mentions(&assigned)
                && !f.is_entry
                && !self.formal_arrays.contains(&f.buf);
            if can {
                if let Some(sh) =
                    self.mirror_entry(&f, std::slice::from_ref(&whole), &st.repl, &st.ranges)
                {
                    f.shadows.extend(sh);
                    touched_alive.push(f);
                }
            }
        }

        let passed_ids: BTreeSet<usize> = passed.iter().map(|f| f.id).collect();
        let bounds_repl = expr_replicated(&lo, &st.repl) && expr_replicated(&hi, &st.repl);
        let mut inner = State {
            repl: st.repl.difference(&assigned).copied().collect(),
            ranges: st
                .ranges
                .iter()
                .filter(|(sy, (l, h))| {
                    !assigned.contains(sy)
                        && !mentions_any(l, &assigned)
                        && !mentions_any(h, &assigned)
                })
                .map(|(sy, r)| (*sy, r.clone()))
                .collect(),
            facts: passed,
        };
        if bounds_repl {
            inner.repl.insert(var);
        }
        let bounds_stable = !mentions_any(&lo, &assigned) && !mentions_any(&hi, &assigned);
        if bounds_stable {
            let slo = simplify(&lo, self.dists);
            let shi = simplify(&hi, self.dists);
            if step == 1 {
                inner.ranges.insert(var, (slo, shi));
            } else if step == -1 {
                inner.ranges.insert(var, (shi, slo));
            }
        }
        let new_body = self.scan_stmts(body, &mut inner);

        // Post-loop state.
        let mut candidate = st.repl.clone();
        if bounds_repl {
            candidate.insert(var);
        }
        st.repl = inner.repl.intersection(&candidate).copied().collect();
        let mut dropped = assigned.clone();
        dropped.insert(var);
        self.drop_ranges_mentioning(st, &dropped);
        st.facts = inner
            .facts
            .into_iter()
            .filter(|f| passed_ids.contains(&f.id))
            .chain(kept)
            .chain(touched_alive)
            .collect();
        SStmt::Do {
            var,
            lo,
            hi,
            step,
            body: new_body,
        }
    }

    fn scan_if(
        &mut self,
        st: &mut State,
        cond: SExpr,
        then_body: Vec<SStmt>,
        else_body: Vec<SStmt>,
    ) -> SStmt {
        self.validate_expr(&cond, st);
        self.record_bottom_calls(&then_body);
        self.record_bottom_calls(&else_body);
        let mut writes = BTreeSet::new();
        collect_written_arrays(&then_body, self.wf, &mut writes);
        collect_written_arrays(&else_body, self.wf, &mut writes);
        let mut assigned = BTreeSet::new();
        collect_assigned_scalars(&then_body, &mut assigned);
        collect_assigned_scalars(&else_body, &mut assigned);

        if expr_replicated(&cond, &st.repl) {
            let whole = SStmt::If {
                cond: cond.clone(),
                then_body: then_body.clone(),
                else_body: else_body.clone(),
            };
            self.absorb(
                st,
                &writes,
                &assigned,
                Some(std::slice::from_ref(&whole)),
                None,
            );
        } else {
            let root_guard = match &cond {
                SExpr::Bin {
                    op: SBinOp::Eq,
                    l,
                    r,
                } => {
                    if matches!(**l, SExpr::MyP) {
                        Some((**r).clone())
                    } else if matches!(**r, SExpr::MyP) {
                        Some((**l).clone())
                    } else {
                        None
                    }
                }
                _ => None,
            };
            match root_guard {
                Some(r) if else_body.is_empty() => {
                    self.absorb(st, &writes, &assigned, Some(&then_body), Some(&r));
                }
                _ => self.absorb(st, &writes, &assigned, None, None),
            }
        }
        for a in &assigned {
            st.repl.remove(a);
        }
        self.drop_ranges_mentioning(st, &assigned);
        SStmt::If {
            cond,
            then_body,
            else_body,
        }
    }

    fn scan_call(
        &mut self,
        st: &mut State,
        proc: usize,
        args: Vec<SActual>,
        copy_out: Vec<(Sym, Sym)>,
    ) -> SStmt {
        for a in &args {
            if let SActual::Scalar(e) = a {
                self.validate_expr(e, st);
            }
        }
        let mut writes = BTreeSet::new();
        for &pos in &self.wf[proc] {
            if let Some(SActual::Array(a)) = args.get(pos) {
                writes.insert(*a);
            }
        }
        let summary = self.analyze_call(proc, &args, st);
        // Account buffer actuals: a read-only pass of a live fact's buffer,
        // with all callee accesses provably inside the fact region, counts
        // as a validated mention.
        if let Some(sm) = &summary {
            for a in &args {
                if let SActual::Array(sy) = a {
                    if !writes.contains(sy)
                        && sm.validated_bufs.contains(sy)
                        && st.facts.iter().any(|f| f.buf == *sy)
                    {
                        *self.validated.entry(*sy).or_insert(0) += 1;
                    }
                }
            }
        }
        self.record_entry(proc, &args, st);
        self.kill_facts_writing(st, &writes);
        let mut outs = BTreeSet::new();
        for (_, c) in &copy_out {
            outs.insert(*c);
        }
        for c in &outs {
            st.repl.remove(c);
        }
        self.drop_ranges_mentioning(st, &outs);
        self.kill_facts_mentioning(st, &outs);
        if let Some(sm) = &summary {
            for (formal, caller) in &copy_out {
                if let Some((r, range)) = sm.outputs.get(formal) {
                    if *r {
                        st.repl.insert(*caller);
                    }
                    if let Some((lo, hi)) = range {
                        if !mentions_sym(lo, *caller) && !mentions_sym(hi, *caller) {
                            st.ranges.insert(*caller, (lo.clone(), hi.clone()));
                        }
                    }
                }
            }
        }
        SStmt::Call {
            proc,
            args,
            copy_out,
        }
    }
}

/// Runs the elimination pass over all procedures, callers first.
/// [`DataflowGraph`] view of the SPMD program's call graph: nodes are
/// procedure indices in callers-first order, edges are `(caller, callee)`
/// pairs, and procedures on call cycles are flagged so the solver pins
/// them to the boundary value (no entry facts).
struct SpmdCallGraph {
    order: Vec<usize>,
    cyclic: Vec<bool>,
    edges: Vec<(usize, usize)>,
    /// For each node, indices into `edges` of its in-edges, callers
    /// enumerated in solve order (the fold order of the pre-framework
    /// pass, which matters: `meet_entries` is applied pairwise).
    in_edges: Vec<Vec<usize>>,
}

impl SpmdCallGraph {
    fn build(procs: &[SProc]) -> Self {
        let (order, cyclic) = topo_callers_first(procs);
        let mut edges = Vec::new();
        let mut in_edges = vec![Vec::new(); procs.len()];
        for &i in &order {
            let mut cs = Vec::new();
            collect_callees(&procs[i].body, &mut cs);
            cs.sort_unstable();
            cs.dedup();
            for c in cs {
                in_edges[c].push(edges.len());
                edges.push((i, c));
            }
        }
        SpmdCallGraph {
            order,
            cyclic,
            edges,
            in_edges,
        }
    }
}

impl DataflowGraph for SpmdCallGraph {
    type Node = usize;
    type Edge = (usize, usize);

    fn order(&self, _dir: Direction) -> Vec<usize> {
        self.order.clone()
    }

    fn on_cycle(&self, n: usize) -> bool {
        self.cyclic[n]
    }

    fn deps(&self, n: usize, _dir: Direction) -> Vec<(usize, &(usize, usize))> {
        self.in_edges[n]
            .iter()
            .map(|&i| (self.edges[i].0, &self.edges[i]))
            .collect()
    }
}

/// The available-sections problem: a node's input fact is its callers'
/// met entry state (`None` = ⊤, no call site seen yet), and the transfer
/// function is the elimination scan itself, which rewrites the procedure
/// body and records entry contributions for its callees.
struct AvailProblem<'a> {
    prog: &'a mut SpmdProgram,
    report: &'a mut OptReport,
    snapshot: Vec<SProc>,
    wf: Vec<BTreeSet<usize>>,
    dists: Vec<ArrayDist>,
    cyclic: Vec<bool>,
    contribs: BTreeMap<(usize, usize), Vec<Entry>>,
}

impl DataflowProblem<SpmdCallGraph> for AvailProblem<'_> {
    type Fact = Option<Entry>;

    fn name(&self) -> &'static str {
        "Available sections"
    }

    fn direction(&self) -> Direction {
        Direction::TopDown
    }

    fn boundary(&mut self, _g: &SpmdCallGraph, _n: usize) -> Option<Entry> {
        None
    }

    fn translate(
        &mut self,
        _g: &SpmdCallGraph,
        edge: &(usize, usize),
        _src: usize,
        _src_fact: &Option<Entry>,
    ) -> Vec<Option<Entry>> {
        // Entries the caller's scan recorded for this edge, in arrival
        // order (one per call site, plus ⊥ for unscanned branch calls).
        self.contribs
            .remove(edge)
            .unwrap_or_default()
            .into_iter()
            .map(Some)
            .collect()
    }

    fn meet(&mut self, acc: &mut Option<Entry>, contrib: Option<Entry>) {
        let e = contrib.expect("translate only produces concrete entries");
        match acc {
            None => *acc = Some(e),
            Some(prev) => *prev = meet_entries(e, prev),
        }
    }

    fn transfer(&mut self, _g: &SpmdCallGraph, idx: usize, input: Option<Entry>) -> Option<Entry> {
        let entry = input.unwrap_or_default();
        let pname = self.prog.interner.name(self.snapshot[idx].name).to_string();
        let mut bounds = entry.bounds.clone();
        for d in &self.prog.procs[idx].decls {
            bounds.insert(d.name, d.bounds.clone());
        }
        let formal_arrays: BTreeSet<Sym> = self.snapshot[idx]
            .formals
            .iter()
            .filter(|f| f.is_array)
            .map(|f| f.name)
            .collect();
        let body = std::mem::take(&mut self.prog.procs[idx].body);
        let mut st = State {
            repl: entry.repl.clone(),
            ranges: entry.ranges.clone(),
            facts: vec![],
        };
        let (new_body, elim_here, notes, entry_fact_names) = {
            let mut scan = Scan {
                interner: &mut self.prog.interner,
                dists: &self.dists,
                snapshot: &self.snapshot,
                wf: &self.wf,
                caller: idx,
                contribs: &mut self.contribs,
                cyclic: &self.cyclic,
                bounds,
                formal_arrays,
                original: body.clone(),
                mention_memo: BTreeMap::new(),
                validated: BTreeMap::new(),
                next_fact_id: 0,
                eliminated: 0,
                notes: vec![],
            };
            let mut entry_fact_names = Vec::new();
            for mut f in entry.facts.clone() {
                f.id = scan.next_fact_id;
                scan.next_fact_id += 1;
                entry_fact_names.push(format!(
                    "{}<-{}",
                    scan.interner.name(f.buf),
                    scan.interner.name(f.src)
                ));
                st.facts.push(f);
            }
            let new_body = scan.scan_stmts(body, &mut st);
            (new_body, scan.eliminated, scan.notes, entry_fact_names)
        };
        self.prog.procs[idx].body = new_body;
        self.report.eliminated += elim_here;
        let repl_names: Vec<String> = entry
            .repl
            .iter()
            .map(|s| self.prog.interner.name(*s).to_string())
            .collect();
        self.report.per_proc.insert(
            pname,
            format!(
                "entry_repl=[{}] entry_facts=[{}] {}",
                repl_names.join(","),
                entry_fact_names.join(","),
                notes.join("; ")
            ),
        );
        Some(entry)
    }
}

pub(super) fn eliminate(prog: &mut SpmdProgram, report: &mut OptReport) -> SolveStats {
    let snapshot = prog.procs.clone();
    let wf = written_formals(&snapshot);
    let dists = prog.dists.clone();
    let g = SpmdCallGraph::build(&snapshot);
    let cyclic = g.cyclic.clone();
    let mut problem = AvailProblem {
        prog,
        report,
        snapshot,
        wf,
        dists,
        cyclic,
        contribs: BTreeMap::new(),
    };
    let (_, stats) = framework::solve(&g, &mut problem);
    stats
}

// ---------------------------------------------------------------------------
// Mirroring: replaying the root's guarded updates on every rank
// ---------------------------------------------------------------------------

/// Context for mirroring a statement region: rewrite the root's computation
/// so every rank can replay it against the fact's buffer.
struct MCtx {
    fact: Fact,
    /// Value substitution: original scalar → mirrored expression (fresh
    /// `$m` locals, or the pinned index in sweep mode).
    env: BTreeMap<Sym, SExpr>,
    /// Scalars whose mirrored value is unknown (divergent assignments).
    clobbered: BTreeSet<Sym>,
    /// Replicated scalars at the absorb point.
    repl: BTreeSet<Sym>,
    /// Ranges at the absorb point, extended with mirrored loop variables
    /// and degenerate ranges for pure `$m` locals.
    ranges: Ranges,
    /// Call-inlining depth guard.
    depth: usize,
    /// Sweep mode: the loop variable currently bound to the pinned index
    /// (writes to the source must subscript the pinned dim by exactly this
    /// variable so that exactly one iteration touches the tracked region).
    sweep_var: Option<Sym>,
}

impl<'a> Scan<'a> {
    /// Entry point: mirrors `stmts` for `fact`, returning the shadow
    /// statements (executable on every rank) or None if not provably
    /// replayable.
    fn mirror_entry(
        &mut self,
        fact: &Fact,
        stmts: &[SStmt],
        repl: &BTreeSet<Sym>,
        ranges: &Ranges,
    ) -> Option<Vec<SStmt>> {
        let mut m = MCtx {
            fact: fact.clone(),
            env: BTreeMap::new(),
            clobbered: BTreeSet::new(),
            repl: repl.clone(),
            ranges: ranges.clone(),
            depth: 0,
            sweep_var: None,
        };
        let out = self.mirror_stmts(stmts, &mut m)?;
        if !out.is_empty() {
            self.notes
                .push(format!("shadow buf={}", self.interner.name(fact.buf)));
        }
        Some(out)
    }

    fn mirror_expr(&self, e: &SExpr, m: &MCtx) -> Option<SExpr> {
        let out = match e {
            SExpr::Int(_) | SExpr::Real(_) | SExpr::NProcs => e.clone(),
            SExpr::MyP => m.fact.root.clone(),
            SExpr::Var(s) => {
                if let Some(v) = m.env.get(s) {
                    v.clone()
                } else if m.clobbered.contains(s) {
                    return None;
                } else if m.repl.contains(s) {
                    e.clone()
                } else {
                    return None;
                }
            }
            SExpr::Elem { array, subs } => {
                let ms: Vec<SExpr> = subs
                    .iter()
                    .map(|x| self.mirror_expr(x, m))
                    .collect::<Option<_>>()?;
                if *array == m.fact.src {
                    self.map_src_subs(&ms, m).and_then(|rs| {
                        rs.map(|row| SExpr::Elem {
                            array: m.fact.buf,
                            subs: row,
                        })
                    })?
                } else if *array == m.fact.buf {
                    if !self.subs_in_region(&ms, &m.fact, &m.ranges) {
                        return None;
                    }
                    SExpr::Elem {
                        array: *array,
                        subs: ms,
                    }
                } else {
                    return None;
                }
            }
            SExpr::CurOwner { .. } => return None,
            SExpr::Bin { op, l, r } => {
                SExpr::bin(*op, self.mirror_expr(l, m)?, self.mirror_expr(r, m)?)
            }
            SExpr::Neg(x) => SExpr::Neg(Box::new(self.mirror_expr(x, m)?)),
            SExpr::Not(x) => SExpr::Not(Box::new(self.mirror_expr(x, m)?)),
            SExpr::Intr { name, args } => SExpr::Intr {
                name: *name,
                args: args
                    .iter()
                    .map(|a| self.mirror_expr(a, m))
                    .collect::<Option<Vec<_>>>()?,
            },
            SExpr::Owner { dist, subs } => SExpr::Owner {
                dist: *dist,
                subs: subs
                    .iter()
                    .map(|a| self.mirror_expr(a, m))
                    .collect::<Option<Vec<_>>>()?,
            },
            SExpr::LocalIdx { dist, dim, sub } => SExpr::LocalIdx {
                dist: *dist,
                dim: *dim,
                sub: Box::new(self.mirror_expr(sub, m)?),
            },
        };
        Some(simplify(&out, self.dists))
    }

    /// Classifies mirrored subscripts of the fact's source array.
    /// `Some(Some(row))` — inside the tracked region, `row` are the buffer
    /// subscripts; `Some(None)` — provably outside; `None` — unknown.
    fn map_src_subs(&self, ms: &[SExpr], m: &MCtx) -> Option<Option<Vec<SExpr>>> {
        if ms.len() != m.fact.src_sec.dims.len() {
            return None;
        }
        let mut row = Vec::new();
        for (d, sub) in ms.iter().enumerate() {
            let (flo, fhi, _) = &m.fact.src_sec.dims[d];
            if m.fact.row_dims.contains(&d) {
                if prove_ge(sub, flo, &m.ranges, self.dists)
                    && prove_ge(fhi, sub, &m.ranges, self.dists)
                {
                    row.push(sub.clone());
                } else if self.provably_outside(sub, flo, fhi, &m.ranges) {
                    return Some(None);
                } else {
                    return None;
                }
            } else {
                // Pinned dim: must hit the tracked index or provably miss.
                if syn_eq(sub, flo, self.dists) {
                    continue;
                }
                if self.provably_ne(sub, flo, &m.ranges) {
                    return Some(None);
                }
                return None;
            }
        }
        Some(Some(row))
    }

    fn provably_ne(&self, a: &SExpr, b: &SExpr, ranges: &Ranges) -> bool {
        if let (Some(la), Some(lb)) = (
            linearize(&simplify(a, self.dists)),
            linearize(&simplify(b, self.dists)),
        ) {
            let mut d = la;
            d.add(lb, -1);
            d.prune();
            if d.terms.is_empty() && d.konst != 0 {
                return true;
            }
        }
        let one = SExpr::int(1);
        prove_ge(&SExpr::sub(a.clone(), b.clone()), &one, ranges, self.dists)
            || prove_ge(&SExpr::sub(b.clone(), a.clone()), &one, ranges, self.dists)
    }

    fn provably_outside(&self, s: &SExpr, lo: &SExpr, hi: &SExpr, ranges: &Ranges) -> bool {
        let one = SExpr::int(1);
        prove_ge(&SExpr::sub(lo.clone(), s.clone()), &one, ranges, self.dists)
            || prove_ge(&SExpr::sub(s.clone(), hi.clone()), &one, ranges, self.dists)
    }

    fn mirror_stmts(&mut self, stmts: &[SStmt], m: &mut MCtx) -> Option<Vec<SStmt>> {
        let mut out = Vec::new();
        for s in stmts {
            match s {
                SStmt::Comment(_) | SStmt::Print { .. } => {}
                SStmt::Return | SStmt::Stop => return None,
                SStmt::Assign { lhs, rhs } => match lhs {
                    SLval::Scalar(sy) => match self.mirror_expr(rhs, m) {
                        Some(v) => {
                            let base = self.interner.name(*sy).to_string();
                            let nm = self.interner.fresh(&format!("{base}$m"));
                            let pure = linearize(&v).is_some()
                                && !expr_rank_dependent_value(&v)
                                && !mentions_sym(&v, nm);
                            if pure {
                                m.ranges.insert(nm, (v.clone(), v.clone()));
                            }
                            out.push(SStmt::Assign {
                                lhs: SLval::Scalar(nm),
                                rhs: v,
                            });
                            m.env.insert(*sy, SExpr::Var(nm));
                            m.clobbered.remove(sy);
                        }
                        None => {
                            m.env.remove(sy);
                            m.clobbered.insert(*sy);
                        }
                    },
                    SLval::Elem { array, subs } => {
                        if *array == m.fact.buf {
                            return None;
                        }
                        if *array != m.fact.src {
                            continue; // other arrays: not replayed
                        }
                        let ms: Vec<SExpr> = subs
                            .iter()
                            .map(|x| self.mirror_expr(x, m))
                            .collect::<Option<_>>()?;
                        // Sweep soundness: the pinned subscript must be the
                        // swept variable itself, so exactly one iteration
                        // touches the tracked region.
                        if let Some(sv) = m.sweep_var {
                            for &d in &m.fact.pinned_dims() {
                                let hits = syn_eq(&ms[d], &m.fact.src_sec.dims[d].0, self.dists);
                                if hits && subs[d] != SExpr::Var(sv) {
                                    return None;
                                }
                            }
                        }
                        match self.map_src_subs(&ms, m)? {
                            None => {} // provably outside the region: skip
                            Some(row) => {
                                let rv = self.mirror_expr(rhs, m)?;
                                out.push(SStmt::Assign {
                                    lhs: SLval::Elem {
                                        array: m.fact.buf,
                                        subs: row,
                                    },
                                    rhs: rv,
                                });
                            }
                        }
                    }
                },
                SStmt::Do {
                    var,
                    lo,
                    hi,
                    step,
                    body,
                } => {
                    if let Some(stmt) = self.mirror_do_generic(*var, lo, hi, *step, body, m) {
                        out.push(stmt);
                    } else if let Some(mut sw) = self.mirror_do_sweep(*var, lo, hi, *step, body, m)
                    {
                        out.append(&mut sw);
                    } else {
                        return None;
                    }
                    // Post-loop: body-assigned scalars are control-dependent.
                    let mut assigned = BTreeSet::new();
                    assigned.insert(*var);
                    collect_assigned_scalars(body, &mut assigned);
                    for a in assigned {
                        m.env.remove(&a);
                        m.clobbered.insert(a);
                    }
                }
                SStmt::If {
                    cond,
                    then_body,
                    else_body,
                } => {
                    let mc = self.mirror_expr(cond, m);
                    let mut assigned = BTreeSet::new();
                    collect_assigned_scalars(then_body, &mut assigned);
                    collect_assigned_scalars(else_body, &mut assigned);
                    match mc {
                        Some(c) => {
                            let save_env = m.env.clone();
                            let save_clob = m.clobbered.clone();
                            let tb = self.mirror_stmts(then_body, m)?;
                            m.env = save_env.clone();
                            m.clobbered = save_clob.clone();
                            let eb = self.mirror_stmts(else_body, m)?;
                            m.env = save_env;
                            m.clobbered = save_clob;
                            for a in assigned {
                                m.env.remove(&a);
                                m.clobbered.insert(a);
                            }
                            if !tb.is_empty() || !eb.is_empty() {
                                out.push(SStmt::If {
                                    cond: c,
                                    then_body: tb,
                                    else_body: eb,
                                });
                            }
                        }
                        None => {
                            // Unmirrorable condition: admissible only if
                            // neither branch can touch the tracked arrays.
                            let mut w = BTreeSet::new();
                            collect_written_arrays(then_body, self.wf, &mut w);
                            collect_written_arrays(else_body, self.wf, &mut w);
                            if w.contains(&m.fact.src) || w.contains(&m.fact.buf) {
                                return None;
                            }
                            for a in assigned {
                                m.env.remove(&a);
                                m.clobbered.insert(a);
                            }
                        }
                    }
                }
                SStmt::Call {
                    proc,
                    args,
                    copy_out,
                } => {
                    let mut inl = self.inline_call(*proc, args, copy_out)?;
                    if m.depth >= 3 {
                        return None;
                    }
                    m.depth += 1;
                    let r = self.mirror_stmts(&std::mem::take(&mut inl), m);
                    m.depth -= 1;
                    out.append(&mut r?);
                }
                // Shadows must be communication-free.
                SStmt::Send { .. }
                | SStmt::Recv { .. }
                | SStmt::SendElem { .. }
                | SStmt::RecvElem { .. }
                | SStmt::Bcast { .. }
                | SStmt::BcastScalar { .. }
                | SStmt::BcastPack { .. }
                | SStmt::PostSend { .. }
                | SStmt::WaitSend { .. }
                | SStmt::PostRecv { .. }
                | SStmt::WaitRecv { .. }
                | SStmt::PostBcast { .. }
                | SStmt::WaitBcast { .. }
                | SStmt::PostBcastPack { .. }
                | SStmt::WaitBcastPack { .. }
                | SStmt::Remap { .. }
                | SStmt::RemapGlobal { .. }
                | SStmt::MarkDist { .. } => return None,
            }
        }
        Some(out)
    }

    /// Generic loop mirror: mirrored bounds, fresh index, recursed body.
    fn mirror_do_generic(
        &mut self,
        var: Sym,
        lo: &SExpr,
        hi: &SExpr,
        step: i64,
        body: &[SStmt],
        m: &mut MCtx,
    ) -> Option<SStmt> {
        let mlo = self.mirror_expr(lo, m)?;
        let mhi = self.mirror_expr(hi, m)?;
        let base = self.interner.name(var).to_string();
        let vm = self.interner.fresh(&format!("{base}$m"));
        let save_env = m.env.clone();
        let save_clob = m.clobbered.clone();
        let save_ranges = m.ranges.clone();
        m.env.insert(var, SExpr::Var(vm));
        if step == 1 {
            m.ranges.insert(vm, (mlo.clone(), mhi.clone()));
        } else if step == -1 {
            m.ranges.insert(vm, (mhi.clone(), mlo.clone()));
        }
        let body_m = self.mirror_stmts(body, m);
        m.env = save_env;
        m.clobbered = save_clob;
        m.ranges = save_ranges;
        Some(SStmt::Do {
            var: vm,
            lo: mlo,
            hi: mhi,
            step,
            body: body_m?,
        })
    }

    /// Sweep mirror: a step-1 loop whose bounds equal the declared bounds of
    /// the source's (single) pinned dimension, iterated by a variable used
    /// as that dimension's subscript. On the root only the iteration with
    /// `var == pinned index` touches the tracked region, so the body is
    /// replayed once with the variable bound to the pinned index.
    fn mirror_do_sweep(
        &mut self,
        var: Sym,
        lo: &SExpr,
        hi: &SExpr,
        step: i64,
        body: &[SStmt],
        m: &mut MCtx,
    ) -> Option<Vec<SStmt>> {
        if step != 1 || m.sweep_var.is_some() {
            return None;
        }
        let pinned = m.fact.pinned_dims();
        let [pd] = pinned.as_slice() else {
            return None;
        };
        let pe = m.fact.src_sec.dims[*pd].0.clone();
        // The pinned index must be a local index of the swept dimension so
        // it is guaranteed to lie within the declared bounds.
        let SExpr::LocalIdx { dim, .. } = &pe else {
            return None;
        };
        if dim != pd {
            return None;
        }
        let decl = self.bounds.get(&m.fact.src)?;
        let (dlo, dhi) = *decl.get(*pd)?;
        if const_of(lo, self.dists) != Some(dlo) || const_of(hi, self.dists) != Some(dhi) {
            return None;
        }
        let save_env = m.env.clone();
        let save_clob = m.clobbered.clone();
        m.env.insert(var, pe);
        m.sweep_var = Some(var);
        let body_m = self.mirror_stmts(body, m);
        m.sweep_var = None;
        m.env = save_env;
        m.clobbered = save_clob;
        body_m
    }

    /// Inlines a call for mirroring: substitutes actuals into the callee
    /// body. Refuses callees with local array storage, copy-outs, assigned
    /// scalar formals, or a non-trailing Return.
    fn inline_call(
        &self,
        proc: usize,
        args: &[SActual],
        copy_out: &[(Sym, Sym)],
    ) -> Option<Vec<SStmt>> {
        if !copy_out.is_empty() {
            return None;
        }
        let cal = &self.snapshot[proc];
        if !cal.decls.is_empty() || cal.formals.len() != args.len() {
            return None;
        }
        let mut body = cal.body.clone();
        while body.last() == Some(&SStmt::Return) {
            body.pop();
        }
        let mut assigned = BTreeSet::new();
        collect_assigned_scalars(&body, &mut assigned);
        let mut smap: BTreeMap<Sym, SExpr> = BTreeMap::new();
        let mut amap: BTreeMap<Sym, Sym> = BTreeMap::new();
        for (f, a) in cal.formals.iter().zip(args) {
            match a {
                SActual::Scalar(x) => {
                    if assigned.contains(&f.name) {
                        return None; // by-value formal mutated: no clean subst
                    }
                    smap.insert(f.name, x.clone());
                }
                SActual::Array(s) => {
                    amap.insert(f.name, *s);
                }
            }
        }
        Some(subst_stmts(&body, &smap, &amap))
    }
}

/// Substitutes scalar formals by actual expressions and renames arrays,
/// recursively. Loop variables and callee locals pass through unchanged
/// (the mirror gives them fresh names anyway).
fn subst_stmts(
    stmts: &[SStmt],
    smap: &BTreeMap<Sym, SExpr>,
    amap: &BTreeMap<Sym, Sym>,
) -> Vec<SStmt> {
    let se = |e: &SExpr| subst_expr(e, smap, amap);
    let sl = |l: &SLval| match l {
        SLval::Scalar(s) => SLval::Scalar(*s),
        SLval::Elem { array, subs } => SLval::Elem {
            array: *amap.get(array).unwrap_or(array),
            subs: subs.iter().map(se).collect(),
        },
    };
    let sr = |r: &SRect| SRect {
        dims: r
            .dims
            .iter()
            .map(|(lo, hi, st)| (se(lo), se(hi), *st))
            .collect(),
    };
    stmts
        .iter()
        .map(|s| match s {
            SStmt::Comment(c) => SStmt::Comment(c.clone()),
            SStmt::Assign { lhs, rhs } => SStmt::Assign {
                lhs: sl(lhs),
                rhs: se(rhs),
            },
            SStmt::Do {
                var,
                lo,
                hi,
                step,
                body,
            } => SStmt::Do {
                var: *var,
                lo: se(lo),
                hi: se(hi),
                step: *step,
                body: subst_stmts(body, smap, amap),
            },
            SStmt::If {
                cond,
                then_body,
                else_body,
            } => SStmt::If {
                cond: se(cond),
                then_body: subst_stmts(then_body, smap, amap),
                else_body: subst_stmts(else_body, smap, amap),
            },
            SStmt::Call {
                proc,
                args,
                copy_out,
            } => SStmt::Call {
                proc: *proc,
                args: args
                    .iter()
                    .map(|a| match a {
                        SActual::Array(s) => SActual::Array(*amap.get(s).unwrap_or(s)),
                        SActual::Scalar(x) => SActual::Scalar(se(x)),
                    })
                    .collect(),
                copy_out: copy_out.clone(),
            },
            SStmt::Return => SStmt::Return,
            SStmt::Stop => SStmt::Stop,
            SStmt::Send {
                to,
                tag,
                array,
                section,
            } => SStmt::Send {
                to: se(to),
                tag: *tag,
                array: *amap.get(array).unwrap_or(array),
                section: sr(section),
            },
            SStmt::Recv {
                from,
                tag,
                array,
                section,
            } => SStmt::Recv {
                from: se(from),
                tag: *tag,
                array: *amap.get(array).unwrap_or(array),
                section: sr(section),
            },
            SStmt::SendElem { to, tag, value } => SStmt::SendElem {
                to: se(to),
                tag: *tag,
                value: se(value),
            },
            SStmt::RecvElem { from, tag, lhs } => SStmt::RecvElem {
                from: se(from),
                tag: *tag,
                lhs: sl(lhs),
            },
            SStmt::Bcast {
                root,
                src_array,
                src_section,
                dst_array,
                dst_section,
            } => SStmt::Bcast {
                root: se(root),
                src_array: *amap.get(src_array).unwrap_or(src_array),
                src_section: sr(src_section),
                dst_array: *amap.get(dst_array).unwrap_or(dst_array),
                dst_section: sr(dst_section),
            },
            SStmt::BcastScalar { root, var } => SStmt::BcastScalar {
                root: se(root),
                var: *var,
            },
            SStmt::BcastPack { root, parts } => SStmt::BcastPack {
                root: se(root),
                parts: parts
                    .iter()
                    .map(|p| match p {
                        BcastPart::Scalar(v) => BcastPart::Scalar(*v),
                        BcastPart::Section {
                            src_array,
                            src_section,
                            dst_array,
                            dst_section,
                        } => BcastPart::Section {
                            src_array: *amap.get(src_array).unwrap_or(src_array),
                            src_section: sr(src_section),
                            dst_array: *amap.get(dst_array).unwrap_or(dst_array),
                            dst_section: sr(dst_section),
                        },
                    })
                    .collect(),
            },
            SStmt::PostSend {
                handle,
                to,
                tag,
                array,
                section,
            } => SStmt::PostSend {
                handle: *handle,
                to: se(to),
                tag: *tag,
                array: *amap.get(array).unwrap_or(array),
                section: sr(section),
            },
            SStmt::WaitSend { handle } => SStmt::WaitSend { handle: *handle },
            SStmt::PostRecv { handle, from, tag } => SStmt::PostRecv {
                handle: *handle,
                from: se(from),
                tag: *tag,
            },
            SStmt::WaitRecv {
                handle,
                array,
                section,
            } => SStmt::WaitRecv {
                handle: *handle,
                array: *amap.get(array).unwrap_or(array),
                section: sr(section),
            },
            SStmt::PostBcast {
                handle,
                root,
                src_array,
                src_section,
            } => SStmt::PostBcast {
                handle: *handle,
                root: se(root),
                src_array: *amap.get(src_array).unwrap_or(src_array),
                src_section: sr(src_section),
            },
            SStmt::WaitBcast {
                handle,
                dst_array,
                dst_section,
            } => SStmt::WaitBcast {
                handle: *handle,
                dst_array: *amap.get(dst_array).unwrap_or(dst_array),
                dst_section: sr(dst_section),
            },
            SStmt::PostBcastPack {
                handle,
                root,
                parts,
            } => SStmt::PostBcastPack {
                handle: *handle,
                root: se(root),
                parts: parts
                    .iter()
                    .map(|p| subst_part(p, smap, amap, &sr))
                    .collect(),
            },
            SStmt::WaitBcastPack { handle, parts } => SStmt::WaitBcastPack {
                handle: *handle,
                parts: parts
                    .iter()
                    .map(|p| subst_part(p, smap, amap, &sr))
                    .collect(),
            },
            SStmt::Remap { array, to_dist } => SStmt::Remap {
                array: *amap.get(array).unwrap_or(array),
                to_dist: *to_dist,
            },
            SStmt::RemapGlobal { array, to_dist } => SStmt::RemapGlobal {
                array: *amap.get(array).unwrap_or(array),
                to_dist: *to_dist,
            },
            SStmt::MarkDist { array, to_dist } => SStmt::MarkDist {
                array: *amap.get(array).unwrap_or(array),
                to_dist: *to_dist,
            },
            SStmt::Print { args } => SStmt::Print {
                args: args.iter().map(se).collect(),
            },
        })
        .collect()
}

fn subst_part(
    p: &BcastPart,
    _smap: &BTreeMap<Sym, SExpr>,
    amap: &BTreeMap<Sym, Sym>,
    sr: &dyn Fn(&SRect) -> SRect,
) -> BcastPart {
    match p {
        BcastPart::Scalar(v) => BcastPart::Scalar(*v),
        BcastPart::Section {
            src_array,
            src_section,
            dst_array,
            dst_section,
        } => BcastPart::Section {
            src_array: *amap.get(src_array).unwrap_or(src_array),
            src_section: sr(src_section),
            dst_array: *amap.get(dst_array).unwrap_or(dst_array),
            dst_section: sr(dst_section),
        },
    }
}

fn subst_expr(e: &SExpr, smap: &BTreeMap<Sym, SExpr>, amap: &BTreeMap<Sym, Sym>) -> SExpr {
    map_expr(e, &mut |x| match x {
        SExpr::Var(s) => smap.get(s).cloned(),
        SExpr::Elem { array, subs } => amap.get(array).map(|na| SExpr::Elem {
            array: *na,
            subs: subs.iter().map(|q| subst_expr(q, smap, amap)).collect(),
        }),
        SExpr::CurOwner { array, subs } => amap.get(array).map(|na| SExpr::CurOwner {
            array: *na,
            subs: subs.iter().map(|q| subst_expr(q, smap, amap)).collect(),
        }),
        _ => None,
    })
}

// ---------------------------------------------------------------------------
// Call summaries: a bounded abstract interpretation of the callee
// ---------------------------------------------------------------------------

/// Abstract value of a callee scalar, expressed in caller terms.
#[derive(Clone, Debug, PartialEq)]
struct AbsVal {
    repl: bool,
    range: Option<(SExpr, SExpr)>,
    val: Option<SExpr>,
}

impl AbsVal {
    fn bottom() -> AbsVal {
        AbsVal {
            repl: false,
            range: None,
            val: None,
        }
    }
}

/// What a call does, as seen by the caller's dataflow.
struct CallSummary {
    /// Caller arrays that are live fact buffers and whose every callee
    /// access is a read provably inside the fact region.
    validated_bufs: BTreeSet<Sym>,
    /// Scalar formal → (replicated at exit, exit range in caller terms).
    outputs: BTreeMap<Sym, (bool, Option<(SExpr, SExpr)>)>,
}

struct AbsWalk<'b> {
    dists: &'b [ArrayDist],
    /// Formal array sym → caller array sym.
    fmap: BTreeMap<Sym, Sym>,
    /// Formal array sym → caller fact (region in caller terms).
    mapped: BTreeMap<Sym, Fact>,
    /// Caller buffer sym → still fully validated.
    buf_ok: BTreeMap<Sym, bool>,
    /// Caller-side ranges for the containment prover.
    caller_ranges: Ranges,
}

impl<'b> AbsWalk<'b> {
    /// Caller-term value of a callee expression via `val` substitution.
    fn to_caller(&self, e: &SExpr, env: &BTreeMap<Sym, AbsVal>) -> Option<SExpr> {
        match e {
            SExpr::Int(_) | SExpr::Real(_) | SExpr::NProcs => Some(e.clone()),
            SExpr::Var(s) => env.get(s).and_then(|v| v.val.clone()),
            SExpr::MyP | SExpr::Elem { .. } | SExpr::CurOwner { .. } => None,
            SExpr::Bin { op, l, r } => Some(SExpr::bin(
                *op,
                self.to_caller(l, env)?,
                self.to_caller(r, env)?,
            )),
            SExpr::Neg(x) => Some(SExpr::Neg(Box::new(self.to_caller(x, env)?))),
            SExpr::Not(x) => Some(SExpr::Not(Box::new(self.to_caller(x, env)?))),
            SExpr::Intr { name, args } => Some(SExpr::Intr {
                name: *name,
                args: args
                    .iter()
                    .map(|a| self.to_caller(a, env))
                    .collect::<Option<Vec<_>>>()?,
            }),
            SExpr::Owner { dist, subs } => Some(SExpr::Owner {
                dist: *dist,
                subs: subs
                    .iter()
                    .map(|a| self.to_caller(a, env))
                    .collect::<Option<Vec<_>>>()?,
            }),
            SExpr::LocalIdx { dist, dim, sub } => Some(SExpr::LocalIdx {
                dist: *dist,
                dim: *dim,
                sub: Box::new(self.to_caller(sub, env)?),
            }),
        }
    }

    /// True if the callee subscript provably lies in `[lo, hi]` (caller
    /// terms): either its caller value substitutes cleanly, or its own range
    /// is contained.
    fn sub_in(&self, sub: &SExpr, lo: &SExpr, hi: &SExpr, env: &BTreeMap<Sym, AbsVal>) -> bool {
        if let Some(cv) = self.to_caller(sub, env) {
            if prove_ge(&cv, lo, &self.caller_ranges, self.dists)
                && prove_ge(hi, &cv, &self.caller_ranges, self.dists)
            {
                return true;
            }
        }
        if let SExpr::Var(s) = sub {
            if let Some(Some((slo, shi))) = env.get(s).map(|v| v.range.clone()) {
                return prove_ge(&slo, lo, &self.caller_ranges, self.dists)
                    && prove_ge(hi, &shi, &self.caller_ranges, self.dists);
            }
        }
        false
    }

    /// Checks every mapped-buffer element access in `e`; marks buffers with
    /// an unprovable access. Returns false if any array access blocks
    /// replication of the value.
    fn scan_reads(&mut self, e: &SExpr, env: &BTreeMap<Sym, AbsVal>) {
        let mut accesses: Vec<(Sym, Vec<SExpr>)> = Vec::new();
        visit_expr(e, &mut |x| match x {
            SExpr::Elem { array, subs } => accesses.push((*array, subs.clone())),
            SExpr::CurOwner { array, .. } => accesses.push((*array, vec![])),
            _ => {}
        });
        for (af, subs) in accesses {
            let Some(f) = self.mapped.get(&af) else {
                continue;
            };
            let caller = self.fmap[&af];
            let inside = subs.len() == f.dst_sec.dims.len()
                && subs
                    .iter()
                    .zip(f.dst_sec.dims.clone().iter())
                    .all(|(s, (lo, hi, _))| self.sub_in(s, lo, hi, env));
            if !inside {
                self.buf_ok.insert(caller, false);
            }
        }
    }

    /// Replication of a callee expression: reads of a mapped buffer inside
    /// the fact region yield replicated values.
    fn repl_of(&self, e: &SExpr, env: &BTreeMap<Sym, AbsVal>) -> bool {
        match e {
            SExpr::Int(_) | SExpr::Real(_) | SExpr::NProcs => true,
            SExpr::Var(s) => env.get(s).map(|v| v.repl).unwrap_or(false),
            SExpr::MyP | SExpr::CurOwner { .. } => false,
            SExpr::Elem { array, subs } => {
                let Some(f) = self.mapped.get(array) else {
                    return false;
                };
                subs.len() == f.dst_sec.dims.len()
                    && subs
                        .iter()
                        .zip(f.dst_sec.dims.clone().iter())
                        .all(|(s, (lo, hi, _))| self.repl_of(s, env) && self.sub_in(s, lo, hi, env))
            }
            SExpr::Bin { l, r, .. } => self.repl_of(l, env) && self.repl_of(r, env),
            SExpr::Neg(x) | SExpr::Not(x) => self.repl_of(x, env),
            SExpr::Intr { args, .. } | SExpr::Owner { subs: args, .. } => {
                args.iter().all(|a| self.repl_of(a, env))
            }
            SExpr::LocalIdx { sub, .. } => self.repl_of(sub, env),
        }
    }

    fn join_env(
        &self,
        a: &BTreeMap<Sym, AbsVal>,
        b: &BTreeMap<Sym, AbsVal>,
    ) -> BTreeMap<Sym, AbsVal> {
        let mut out = BTreeMap::new();
        for (s, va) in a {
            let Some(vb) = b.get(s) else { continue };
            let val = match (&va.val, &vb.val) {
                (Some(x), Some(y)) if syn_eq(x, y, self.dists) => Some(x.clone()),
                _ => None,
            };
            let range = match (&va.range, &vb.range) {
                (Some((alo, ahi)), Some((blo, bhi))) => {
                    let lo = if prove_ge(blo, alo, &self.caller_ranges, self.dists) {
                        Some(alo.clone())
                    } else if prove_ge(alo, blo, &self.caller_ranges, self.dists) {
                        Some(blo.clone())
                    } else {
                        None
                    };
                    let hi = if prove_ge(ahi, bhi, &self.caller_ranges, self.dists) {
                        Some(ahi.clone())
                    } else if prove_ge(bhi, ahi, &self.caller_ranges, self.dists) {
                        Some(bhi.clone())
                    } else {
                        None
                    };
                    match (lo, hi) {
                        (Some(l), Some(h)) => Some((l, h)),
                        _ => None,
                    }
                }
                _ => None,
            };
            out.insert(
                *s,
                AbsVal {
                    repl: va.repl && vb.repl,
                    range,
                    val,
                },
            );
        }
        out
    }

    fn walk(&mut self, stmts: &[SStmt], env: &mut BTreeMap<Sym, AbsVal>) -> Option<()> {
        for s in stmts {
            match s {
                SStmt::Comment(_) | SStmt::Return | SStmt::Stop => {}
                SStmt::Print { args } => {
                    for a in args {
                        self.scan_reads(a, env);
                    }
                }
                SStmt::Assign { lhs, rhs } => {
                    self.scan_reads(rhs, env);
                    match lhs {
                        SLval::Scalar(sy) => {
                            let repl = self.repl_of(rhs, env);
                            let val = self
                                .to_caller(rhs, env)
                                .map(|v| simplify(&v, self.dists))
                                .filter(|v| linearize(v).is_some());
                            let range = match (&val, rhs) {
                                (Some(v), _) => Some((v.clone(), v.clone())),
                                (None, SExpr::Var(t)) => env.get(t).and_then(|x| x.range.clone()),
                                _ => None,
                            };
                            env.insert(*sy, AbsVal { repl, range, val });
                        }
                        SLval::Elem { array, subs } => {
                            for sub in subs {
                                self.scan_reads(sub, env);
                            }
                            if self.mapped.contains_key(array) {
                                let caller = self.fmap[array];
                                self.buf_ok.insert(caller, false);
                            }
                        }
                    }
                }
                SStmt::Do {
                    var,
                    lo,
                    hi,
                    step,
                    body,
                } => {
                    self.scan_reads(lo, env);
                    self.scan_reads(hi, env);
                    let var_av = AbsVal {
                        repl: self.repl_of(lo, env) && self.repl_of(hi, env),
                        range: match (self.to_caller(lo, env), self.to_caller(hi, env), *step) {
                            (Some(a), Some(b), 1) => Some((a, b)),
                            (Some(a), Some(b), -1) => Some((b, a)),
                            _ => None,
                        },
                        val: None,
                    };
                    let entry = env.clone();
                    let mut head = entry.clone();
                    head.insert(*var, var_av.clone());
                    let mut stable = false;
                    for _ in 0..4 {
                        let mut exit = head.clone();
                        self.walk(body, &mut exit)?;
                        exit.insert(*var, var_av.clone());
                        let joined = self.join_env(&head, &exit);
                        if joined == head {
                            stable = true;
                            break;
                        }
                        head = joined;
                    }
                    if !stable {
                        // Demote body-assigned scalars to ⊥ and settle.
                        let mut assigned = BTreeSet::new();
                        collect_assigned_scalars(body, &mut assigned);
                        for a in &assigned {
                            head.insert(*a, AbsVal::bottom());
                        }
                        head.insert(*var, var_av.clone());
                    }
                    // One final pass from the settled head for buffer checks.
                    let mut exit = head.clone();
                    self.walk(body, &mut exit)?;
                    // Post-loop: join entry (zero trips) with exit.
                    *env = self.join_env(&entry, &exit);
                    env.insert(
                        *var,
                        AbsVal {
                            repl: var_av.repl,
                            range: None,
                            val: None,
                        },
                    );
                }
                SStmt::If {
                    cond,
                    then_body,
                    else_body,
                } => {
                    self.scan_reads(cond, env);
                    let cond_repl = self.repl_of(cond, env);
                    let mut te = env.clone();
                    self.walk(then_body, &mut te)?;
                    let mut ee = env.clone();
                    self.walk(else_body, &mut ee)?;
                    let mut joined = self.join_env(&te, &ee);
                    if !cond_repl {
                        // Rank-dependent branch: values that differ between
                        // branches are rank-dependent too.
                        for v in joined.values_mut() {
                            if v.val.is_none() {
                                v.repl = false;
                            }
                        }
                    }
                    *env = joined;
                }
                SStmt::Call { .. } => return None,
                SStmt::BcastScalar { root, var } => {
                    self.scan_reads(root, env);
                    env.insert(
                        *var,
                        AbsVal {
                            repl: true,
                            range: None,
                            val: None,
                        },
                    );
                }
                SStmt::RecvElem { from, lhs, .. } => {
                    self.scan_reads(from, env);
                    match lhs {
                        SLval::Scalar(v) => {
                            env.insert(*v, AbsVal::bottom());
                        }
                        SLval::Elem { array, .. } => {
                            if self.mapped.contains_key(array) {
                                let caller = self.fmap[array];
                                self.buf_ok.insert(caller, false);
                            }
                        }
                    }
                }
                SStmt::Send { .. }
                | SStmt::Recv { .. }
                | SStmt::SendElem { .. }
                | SStmt::Bcast { .. }
                | SStmt::BcastPack { .. }
                | SStmt::PostSend { .. }
                | SStmt::WaitSend { .. }
                | SStmt::PostRecv { .. }
                | SStmt::WaitRecv { .. }
                | SStmt::PostBcast { .. }
                | SStmt::WaitBcast { .. }
                | SStmt::PostBcastPack { .. }
                | SStmt::WaitBcastPack { .. }
                | SStmt::Remap { .. }
                | SStmt::RemapGlobal { .. }
                | SStmt::MarkDist { .. } => {
                    // Any mention of a mapped buffer inside communication is
                    // beyond the region prover: de-validate bluntly.
                    let one = std::slice::from_ref(s);
                    let bufs: Vec<Sym> = self.mapped.keys().copied().collect();
                    for af in bufs {
                        if count_mentions(one, af) > 0 {
                            let caller = self.fmap[&af];
                            self.buf_ok.insert(caller, false);
                        }
                    }
                    // Scalar effects of packs (blocking and posted forms).
                    if let SStmt::BcastPack { parts, .. } | SStmt::WaitBcastPack { parts, .. } = s {
                        for p in parts {
                            if let BcastPart::Scalar(v) = p {
                                env.insert(
                                    *v,
                                    AbsVal {
                                        repl: true,
                                        range: None,
                                        val: None,
                                    },
                                );
                            }
                        }
                    }
                }
            }
        }
        Some(())
    }
}

impl<'a> Scan<'a> {
    /// Analyzes one call site: maps actuals onto formals, abstractly walks
    /// the callee, and reports validated buffers plus scalar-formal exit
    /// states (for copy-out). None = unanalyzable, treat conservatively.
    fn analyze_call(&self, callee: usize, args: &[SActual], st: &State) -> Option<CallSummary> {
        if self.cyclic[callee] {
            return None;
        }
        let cal = &self.snapshot[callee];
        if cal.formals.len() != args.len() {
            return None;
        }
        // Aliased array actuals defeat per-buffer reasoning.
        let mut seen_arrays = BTreeSet::new();
        for a in args {
            if let SActual::Array(s) = a {
                if !seen_arrays.insert(*s) {
                    return None;
                }
            }
        }
        let mut env: BTreeMap<Sym, AbsVal> = BTreeMap::new();
        let mut fmap: BTreeMap<Sym, Sym> = BTreeMap::new();
        let mut mapped: BTreeMap<Sym, Fact> = BTreeMap::new();
        let mut buf_ok: BTreeMap<Sym, bool> = BTreeMap::new();
        for (f, a) in cal.formals.iter().zip(args) {
            match a {
                SActual::Scalar(x) => {
                    let val = Some(simplify(x, self.dists))
                        .filter(|v| linearize(v).is_some() && !expr_rank_dependent_value(v));
                    let range = match (&val, x) {
                        (Some(v), _) => Some((v.clone(), v.clone())),
                        (None, SExpr::Var(s)) => st.ranges.get(s).cloned(),
                        _ => None,
                    };
                    env.insert(
                        f.name,
                        AbsVal {
                            repl: expr_replicated(x, &st.repl),
                            range,
                            val,
                        },
                    );
                }
                SActual::Array(s) => {
                    fmap.insert(f.name, *s);
                    if let Some(fact) = st.facts.iter().find(|f2| f2.buf == *s) {
                        mapped.insert(f.name, fact.clone());
                        buf_ok.insert(*s, true);
                    }
                }
            }
        }
        let mut aw = AbsWalk {
            dists: self.dists,
            fmap,
            mapped,
            buf_ok,
            caller_ranges: st.ranges.clone(),
        };
        aw.walk(&cal.body, &mut env)?;
        let outputs = cal
            .formals
            .iter()
            .filter(|f| !f.is_array)
            .filter_map(|f| {
                env.get(&f.name)
                    .map(|v| (f.name, (v.repl, v.range.clone())))
            })
            .collect();
        let validated_bufs = aw
            .buf_ok
            .into_iter()
            .filter_map(|(s, ok)| ok.then_some(s))
            .collect();
        Some(CallSummary {
            validated_bufs,
            outputs,
        })
    }
}
