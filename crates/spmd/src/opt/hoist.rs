use crate::ir::{SExpr, SStmt, SpmdProgram};
use fortrand_ir::dist::ArrayDist;
use std::collections::BTreeSet;

use super::dataflow::{
    collect_assigned_scalars, collect_callees, collect_written_arrays, const_of, mentions_any,
    visit_expr, written_formals,
};
use super::OptReport;

// ---------------------------------------------------------------------------
// Loop-level aggregation: hoist invariant collectives out of counted loops
// ---------------------------------------------------------------------------

/// Lifts loop-invariant broadcasts out of `Do` loops: a leading prefix of
/// `Bcast`/`BcastScalar` statements whose operands are invariant and whose
/// data is not redefined later in the body executes identically on every
/// iteration, so one pre-loop transfer suffices. Only loops with a provably
/// positive constant trip count are touched (hoisting out of a zero-trip
/// loop would *introduce* communication).
pub(super) fn hoist(prog: &mut SpmdProgram, report: &mut OptReport) {
    let wf = written_formals(&prog.procs);
    let dists = prog.dists.clone();
    for p in prog.procs.iter_mut() {
        let body = std::mem::take(&mut p.body);
        p.body = hoist_stmts(body, &wf, &dists, &mut report.hoisted);
    }
}

fn hoist_stmts(
    stmts: Vec<SStmt>,
    wf: &[BTreeSet<usize>],
    dists: &[ArrayDist],
    hoisted: &mut usize,
) -> Vec<SStmt> {
    let mut out = Vec::with_capacity(stmts.len());
    for s in stmts {
        match s {
            SStmt::Do {
                var,
                lo,
                hi,
                step,
                body,
            } => {
                // Innermost loops first, so an invariant bcast bubbles up
                // through a whole nest.
                let body = hoist_stmts(body, wf, dists, hoisted);
                let trip_ok = match (const_of(&lo, dists), const_of(&hi, dists)) {
                    (Some(l), Some(h)) => (step == 1 && h >= l) || (step == -1 && l >= h),
                    _ => false,
                };
                let mut callees = Vec::new();
                collect_callees(&body, &mut callees);
                if !trip_ok || !callees.is_empty() {
                    out.push(SStmt::Do {
                        var,
                        lo,
                        hi,
                        step,
                        body,
                    });
                    continue;
                }
                let mut assigned = BTreeSet::new();
                assigned.insert(var);
                collect_assigned_scalars(&body, &mut assigned);
                let invariant = |e: &SExpr| -> bool {
                    if mentions_any(e, &assigned) {
                        return false;
                    }
                    let mut memory = false;
                    visit_expr(e, &mut |x| {
                        if matches!(x, SExpr::Elem { .. } | SExpr::CurOwner { .. }) {
                            memory = true;
                        }
                    });
                    !memory
                };
                let mut lifted = 0usize;
                while lifted < body.len() {
                    let rest = &body[lifted + 1..];
                    let mut rest_arrays = BTreeSet::new();
                    collect_written_arrays(rest, wf, &mut rest_arrays);
                    let mut rest_scalars = BTreeSet::new();
                    collect_assigned_scalars(rest, &mut rest_scalars);
                    let ok = match &body[lifted] {
                        SStmt::Bcast {
                            root,
                            src_array,
                            src_section,
                            dst_array,
                            dst_section,
                        } => {
                            src_array != dst_array
                                && invariant(root)
                                && src_section
                                    .dims
                                    .iter()
                                    .chain(dst_section.dims.iter())
                                    .all(|(a, b, _)| invariant(a) && invariant(b))
                                && !rest_arrays.contains(src_array)
                                && !rest_arrays.contains(dst_array)
                        }
                        SStmt::BcastScalar { root, var: v } => {
                            invariant(root) && !rest_scalars.contains(v)
                        }
                        _ => false,
                    };
                    if !ok {
                        break;
                    }
                    lifted += 1;
                }
                if lifted == 0 {
                    out.push(SStmt::Do {
                        var,
                        lo,
                        hi,
                        step,
                        body,
                    });
                } else {
                    *hoisted += lifted;
                    let mut body = body;
                    let rest = body.split_off(lifted);
                    out.extend(body);
                    out.push(SStmt::Do {
                        var,
                        lo,
                        hi,
                        step,
                        body: rest,
                    });
                }
            }
            SStmt::If {
                cond,
                then_body,
                else_body,
            } => out.push(SStmt::If {
                cond,
                then_body: hoist_stmts(then_body, wf, dists, hoisted),
                else_body: hoist_stmts(else_body, wf, dists, hoisted),
            }),
            other => out.push(other),
        }
    }
    out
}
