//! Communication optimization over SPMD node programs (the "between codegen
//! and emit" pass pipeline).
//!
//! Three cooperating optimizations, run in this order:
//!
//! 1. **Redundant-communication elimination** (level [`CommOpt::Full`] only):
//!    a forward "available data" dataflow over broadcast sections. A
//!    broadcast `buf ← A[sec] from root` makes `A[sec]`'s values *available*
//!    (replicated) in `buf` on every rank. A later broadcast of a contained
//!    section of the same array from the same root is redundant — every
//!    receiver already holds the data — *provided* the tracked region of `A`
//!    on the root has not changed since, or its changes can be **shadowed**:
//!    re-applied to `buf` locally by every rank (possible exactly when the
//!    updates are computable from replicated values, e.g. dgefa's pivot swap
//!    and scale steps). The facts propagate interprocedurally: at each call
//!    site the caller's facts are mapped through array/scalar actuals onto
//!    the callee's formals, met over all call sites in reverse-invocation
//!    (callers-first) order over the call graph.
//! 2. **Loop-level message aggregation**: leading loop-invariant collectives
//!    (and tag-paired send/recv couples) are lifted out of loops with
//!    provably positive constant trip counts.
//! 3. **Message coalescing**: adjacent broadcasts with the same root fuse
//!    into one packed message ([`SStmt::BcastPack`]); adjacent send/send and
//!    recv/recv pairs over adjacent sections of the same array merge via
//!    [`Rsd::merge_adjacent`] when the pairing is provably symmetric.
//!
//! Every transformation preserves bit-identical array results: shadows
//! perform the same IEEE operations on the same broadcast bytes every rank
//! already holds, and packing/aggregation only re-batches identical
//! payloads. See DESIGN.md §"Communication optimization" for the dataflow
//! equations and the soundness argument.

use crate::ir::SpmdProgram;
use std::collections::BTreeMap;

mod coalesce;
mod dataflow;
mod hoist;
mod overlap;
#[cfg(test)]
mod tests;

use coalesce::coalesce;
use dataflow::eliminate;
use hoist::hoist;
use overlap::overlap;

/// Communication optimization level (driver flag).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Hash)]
pub enum CommOpt {
    /// Pass disabled: emit exactly what codegen produced.
    Off,
    /// Message coalescing and loop-level aggregation only.
    Coalesce,
    /// Everything: redundant-communication elimination + aggregation +
    /// coalescing (the default).
    #[default]
    Full,
    /// [`CommOpt::Full`] plus communication/computation overlap: blocking
    /// sends, receives and broadcasts split into nonblocking post/wait
    /// pairs, posts hoisted backward (interprocedurally) and waits sunk
    /// forward, and eligible loops coarse-grain pipelined so the next
    /// iteration's broadcast is in flight during this iteration's update.
    Overlap,
}

impl CommOpt {
    /// Stable spelling for reports, hashing and CLI parsing.
    pub fn as_str(self) -> &'static str {
        match self {
            CommOpt::Off => "off",
            CommOpt::Coalesce => "coalesce",
            CommOpt::Full => "full",
            CommOpt::Overlap => "overlap",
        }
    }

    /// Parses the CLI spelling.
    pub fn parse(s: &str) -> Option<CommOpt> {
        match s {
            "off" => Some(CommOpt::Off),
            "coalesce" => Some(CommOpt::Coalesce),
            "full" => Some(CommOpt::Full),
            "overlap" => Some(CommOpt::Overlap),
            _ => None,
        }
    }
}

/// What the pass did — used for reporting and for incremental-compilation
/// fact hashing (the per-procedure strings participate in the recompilation
/// analysis: a change in optimization decisions must change the hash).
#[derive(Clone, Debug, Default)]
pub struct OptReport {
    /// Level the pass ran at.
    pub level: CommOpt,
    /// Broadcasts (or send/recv couples) eliminated as redundant.
    pub eliminated: usize,
    /// Messages removed by packing/merging (per merged pair).
    pub coalesced: usize,
    /// Communication statements lifted out of loops.
    pub hoisted: usize,
    /// Blocking operations split into post/wait pairs
    /// ([`CommOpt::Overlap`] only).
    pub overlapped: usize,
    /// Posts moved backward past at least one statement.
    pub posts_hoisted: usize,
    /// Receive waits moved forward past at least one statement.
    pub waits_sunk: usize,
    /// Loops coarse-grain pipelined (next iteration's broadcast posted
    /// before this iteration's trailing update).
    pub pipelined_loops: usize,
    /// Per-procedure summary of decisions, keyed by procedure name.
    /// Deterministic; hashed into the incremental engine's fact hashes.
    pub per_proc: BTreeMap<String, String>,
}

/// Runs the communication optimizer in place at the given level.
pub fn optimize(prog: &mut SpmdProgram, level: CommOpt) -> OptReport {
    optimize_with_stats(prog, level).0
}

/// Like [`optimize`], but also returns per-problem solver statistics for
/// the dataflow passes that ran (currently the available-sections problem
/// at [`CommOpt::Full`]).
pub fn optimize_with_stats(
    prog: &mut SpmdProgram,
    level: CommOpt,
) -> (OptReport, Vec<fortrand_analysis::framework::SolveStats>) {
    optimize_traced(prog, level, &fortrand_trace::Trace::off())
}

/// [`optimize_with_stats`] recording one compile-timeline span per
/// optimizer pass (eliminate / hoist / coalesce) plus the embedded
/// available-sections dataflow solve.
pub fn optimize_traced(
    prog: &mut SpmdProgram,
    level: CommOpt,
    trace: &fortrand_trace::Trace,
) -> (OptReport, Vec<fortrand_analysis::framework::SolveStats>) {
    use fortrand_trace::PID_COMPILE;
    let mut report = OptReport {
        level,
        ..Default::default()
    };
    let mut stats = Vec::new();
    if level == CommOpt::Off {
        return (report, stats);
    }
    if matches!(level, CommOpt::Full | CommOpt::Overlap) {
        let span = trace.span(PID_COMPILE, 0, "comm-opt", "eliminate");
        let solve = eliminate(prog, &mut report);
        fortrand_analysis::framework::record_solve(trace, &solve);
        stats.push(solve);
        drop(span);
    }
    {
        let _span = trace.span(PID_COMPILE, 0, "comm-opt", "hoist");
        hoist(prog, &mut report);
    }
    {
        let _span = trace.span(PID_COMPILE, 0, "comm-opt", "coalesce");
        coalesce(prog, &mut report);
    }
    if level == CommOpt::Overlap {
        let _span = trace.span(PID_COMPILE, 0, "comm-opt", "overlap");
        let t0 = std::time::Instant::now();
        let units = overlap(prog, &mut report);
        // The overlap pass is a code-motion transformation, not a lattice
        // solve, but it reports through the same per-pass channel so
        // `tables passes` shows its motion counts: contributions = ops
        // split + posts hoisted + waits sunk + loops pipelined.
        stats.push(fortrand_analysis::framework::SolveStats {
            problem: "comm overlap".into(),
            direction: "<>".into(),
            units,
            contributions: report.overlapped
                + report.posts_hoisted
                + report.waits_sunk
                + report.pipelined_loops,
            iterations: 1,
            wall_ns: t0.elapsed().as_nanos() as u64,
        });
    }
    if trace.on() {
        let ts = trace.now_us();
        trace.instant(
            PID_COMPILE,
            0,
            "comm-opt",
            "comm-opt done",
            ts,
            vec![
                ("level", report.level.as_str().into()),
                ("eliminated", report.eliminated.into()),
                ("hoisted", report.hoisted.into()),
                ("coalesced", report.coalesced.into()),
                ("overlapped", report.overlapped.into()),
                ("posts_hoisted", report.posts_hoisted.into()),
                ("waits_sunk", report.waits_sunk.into()),
                ("pipelined_loops", report.pipelined_loops.into()),
            ],
        );
    }
    (report, stats)
}
