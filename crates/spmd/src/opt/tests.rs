use super::coalesce::merge_rects;
use super::dataflow::{prove_ge, simplify, syn_eq, Ranges};
use super::*;
use crate::ir::{SBinOp, SExpr, SLval, SProc, SRect, SStmt};
use fortrand_ir::{Interner, Sym};

fn prog(body: Vec<SStmt>) -> (SpmdProgram, Interner) {
    let mut interner = Interner::new();
    let name = interner.intern("main");
    let p = SpmdProgram {
        interner: interner.clone(),
        nprocs: 2,
        procs: vec![SProc {
            name,
            formals: vec![],
            decls: vec![],
            body,
        }],
        main: 0,
        dists: vec![],
    };
    (p, interner)
}

fn rect(lo: i64, hi: i64) -> SRect {
    SRect::one(SExpr::Int(lo), SExpr::Int(hi))
}

#[test]
fn simplify_folds_linear_arithmetic() {
    let e = SExpr::add(SExpr::Int(1), SExpr::Int(2));
    assert_eq!(simplify(&e, &[]), SExpr::Int(3));
    let mut i = Interner::new();
    let x = i.intern("x");
    // (x + 1) + 2 and x + 3 normalize to the same linear form.
    let a = SExpr::add(SExpr::add(SExpr::Var(x), SExpr::Int(1)), SExpr::Int(2));
    let b = SExpr::add(SExpr::Var(x), SExpr::Int(3));
    assert!(syn_eq(&a, &b, &[]));
    assert!(!syn_eq(&a, &SExpr::Var(x), &[]));
}

#[test]
fn prove_ge_uses_constants_and_ranges() {
    let empty = Ranges::new();
    assert!(prove_ge(&SExpr::Int(5), &SExpr::Int(3), &empty, &[]));
    assert!(!prove_ge(&SExpr::Int(3), &SExpr::Int(5), &empty, &[]));
    let mut i = Interner::new();
    let x = i.intern("x");
    let mut ranges = Ranges::new();
    ranges.insert(x, (SExpr::Int(2), SExpr::Int(10)));
    assert!(prove_ge(&SExpr::Var(x), &SExpr::Int(1), &ranges, &[]));
    assert!(!prove_ge(&SExpr::Var(x), &SExpr::Int(11), &ranges, &[]));
}

#[test]
fn merge_rects_requires_exact_adjacency() {
    assert_eq!(merge_rects(&rect(1, 4), &rect(5, 8), &[]), Some(rect(1, 8)));
    // A gap or an overlap refuses.
    assert_eq!(merge_rects(&rect(1, 4), &rect(6, 9), &[]), None);
    assert_eq!(merge_rects(&rect(1, 4), &rect(4, 8), &[]), None);
}

#[test]
fn merge_rects_2d_needs_degenerate_outer_dims() {
    // Payload order iterates the last dimension fastest, so a seam in
    // the last dimension concatenates payloads only when every slower
    // dimension is a single point.
    let deg = |row: i64, lo: i64, hi: i64| SRect {
        dims: vec![
            (SExpr::Int(row), SExpr::Int(row), 1),
            (SExpr::Int(lo), SExpr::Int(hi), 1),
        ],
    };
    assert_eq!(
        merge_rects(&deg(2, 1, 4), &deg(2, 5, 8), &[]),
        Some(deg(2, 1, 8))
    );
    let wide = |lo: i64, hi: i64| SRect {
        dims: vec![
            (SExpr::Int(1), SExpr::Int(2), 1),
            (SExpr::Int(lo), SExpr::Int(hi), 1),
        ],
    };
    assert_eq!(merge_rects(&wide(1, 4), &wide(5, 8), &[]), None);
}

#[test]
fn hoist_lifts_invariant_scalar_broadcast() {
    let mut i = Interner::new();
    let s = i.intern("s");
    let x = i.intern("x");
    let iv = i.intern("i");
    let loop_body = vec![
        SStmt::BcastScalar {
            root: SExpr::Int(0),
            var: s,
        },
        SStmt::Assign {
            lhs: SLval::Elem {
                array: x,
                subs: vec![SExpr::Var(iv)],
            },
            rhs: SExpr::Var(s),
        },
    ];
    let (mut p, _) = prog(vec![SStmt::Do {
        var: iv,
        lo: SExpr::Int(1),
        hi: SExpr::Int(4),
        step: 1,
        body: loop_body.clone(),
    }]);
    let report = optimize(&mut p, CommOpt::Coalesce);
    assert_eq!(report.hoisted, 1);
    assert!(matches!(p.procs[0].body[0], SStmt::BcastScalar { .. }));
    match &p.procs[0].body[1] {
        SStmt::Do { body, .. } => assert_eq!(body.len(), 1),
        other => panic!("expected Do, got {other:?}"),
    }

    // Redefining the scalar later in the body pins the broadcast.
    let mut pinned = loop_body;
    pinned.push(SStmt::Assign {
        lhs: SLval::Scalar(s),
        rhs: SExpr::Int(0),
    });
    let (mut p2, _) = prog(vec![SStmt::Do {
        var: iv,
        lo: SExpr::Int(1),
        hi: SExpr::Int(4),
        step: 1,
        body: pinned,
    }]);
    let report2 = optimize(&mut p2, CommOpt::Coalesce);
    assert_eq!(report2.hoisted, 0);
    assert!(matches!(p2.procs[0].body[0], SStmt::Do { .. }));
}

#[test]
fn hoist_refuses_possibly_zero_trip_loops() {
    let mut i = Interner::new();
    let s = i.intern("s");
    let iv = i.intern("i");
    let n = i.intern("n");
    for (lo, hi) in [
        (SExpr::Int(5), SExpr::Int(4)), // zero trips
        (SExpr::Int(1), SExpr::Var(n)), // unknown trips
    ] {
        let (mut p, _) = prog(vec![SStmt::Do {
            var: iv,
            lo,
            hi,
            step: 1,
            body: vec![SStmt::BcastScalar {
                root: SExpr::Int(0),
                var: s,
            }],
        }]);
        let report = optimize(&mut p, CommOpt::Coalesce);
        assert_eq!(report.hoisted, 0);
        assert!(matches!(p.procs[0].body[0], SStmt::Do { .. }));
    }
}

#[test]
fn pack_fuses_same_root_broadcast_runs() {
    let mut i = Interner::new();
    let a = i.intern("a");
    let b = i.intern("b");
    let c = i.intern("c");
    let bcast = |src: Sym, dst: Sym, lo: i64, hi: i64| SStmt::Bcast {
        root: SExpr::Int(0),
        src_array: src,
        src_section: rect(lo, hi),
        dst_array: dst,
        dst_section: rect(1, hi - lo + 1),
    };
    let (mut p, _) = prog(vec![bcast(a, b, 1, 2), bcast(a, c, 3, 4)]);
    let report = optimize(&mut p, CommOpt::Coalesce);
    assert_eq!(report.coalesced, 1);
    assert_eq!(p.procs[0].body.len(), 1);
    match &p.procs[0].body[0] {
        SStmt::BcastPack { parts, .. } => assert_eq!(parts.len(), 2),
        other => panic!("expected BcastPack, got {other:?}"),
    }

    // The second broadcast reads what the first wrote: packing would
    // gather stale data, so the run must not fuse.
    let (mut p2, _) = prog(vec![bcast(a, b, 1, 2), bcast(b, c, 1, 2)]);
    let report2 = optimize(&mut p2, CommOpt::Coalesce);
    assert_eq!(report2.coalesced, 0);
    assert_eq!(p2.procs[0].body.len(), 2);
}

fn send(tag: u64, array: Sym, lo: i64, hi: i64) -> SStmt {
    SStmt::Send {
        to: SExpr::Int(1),
        tag,
        array,
        section: rect(lo, hi),
    }
}

fn recv(tag: u64, array: Sym, lo: i64, hi: i64) -> SStmt {
    SStmt::Recv {
        from: SExpr::Int(0),
        tag,
        array,
        section: rect(lo, hi),
    }
}

#[test]
fn pair_merge_commits_sender_and_receiver_in_lockstep() {
    let mut i = Interner::new();
    let a = i.intern("a");
    let (mut p, _) = prog(vec![SStmt::If {
        cond: SExpr::bin(SBinOp::Eq, SExpr::MyP, SExpr::Int(0)),
        then_body: vec![send(10, a, 1, 4), send(11, a, 5, 8)],
        else_body: vec![recv(10, a, 1, 4), recv(11, a, 5, 8)],
    }]);
    let report = optimize(&mut p, CommOpt::Coalesce);
    assert_eq!(report.coalesced, 2);
    match &p.procs[0].body[0] {
        SStmt::If {
            then_body,
            else_body,
            ..
        } => {
            assert_eq!(
                then_body.as_slice(),
                &[send(10, a, 1, 8)],
                "sender side must carry the merged section under tag 10"
            );
            assert_eq!(else_body.as_slice(), &[recv(10, a, 1, 8)]);
        }
        other => panic!("expected If, got {other:?}"),
    }
}

#[test]
fn pair_merge_aborts_when_a_tag_escapes_the_pairing() {
    let mut i = Interner::new();
    let a = i.intern("a");
    // A third, unpaired use of tag 11 means the endpoints can no longer
    // agree on the rewritten protocol — nothing may merge.
    let body = vec![
        SStmt::If {
            cond: SExpr::bin(SBinOp::Eq, SExpr::MyP, SExpr::Int(0)),
            then_body: vec![send(10, a, 1, 4), send(11, a, 5, 8)],
            else_body: vec![recv(10, a, 1, 4), recv(11, a, 5, 8)],
        },
        SStmt::SendElem {
            to: SExpr::Int(1),
            tag: 11,
            value: SExpr::Int(0),
        },
    ];
    let (mut p, _) = prog(body.clone());
    let report = optimize(&mut p, CommOpt::Coalesce);
    assert_eq!(report.coalesced, 0);
    assert_eq!(p.procs[0].body, body);
}

#[test]
fn off_level_is_identity() {
    let mut i = Interner::new();
    let a = i.intern("a");
    let body = vec![send(10, a, 1, 4), send(11, a, 5, 8)];
    let (mut p, _) = prog(body.clone());
    let report = optimize(&mut p, CommOpt::Off);
    assert_eq!(report.level, CommOpt::Off);
    assert_eq!(report.eliminated + report.coalesced + report.hoisted, 0);
    assert_eq!(p.procs[0].body, body);
}

/// `Overlap` splits a blocking broadcast into a post/wait pair and bubbles
/// the post backward past compute that touches neither the source array
/// nor the root expression — the in-flight window covers the compute.
#[test]
fn overlap_splits_bcast_and_hoists_post() {
    let mut i = Interner::new();
    let a = i.intern("a");
    let b = i.intern("b");
    let c = i.intern("c");
    let (mut p, _) = prog(vec![
        SStmt::Assign {
            lhs: SLval::Elem {
                array: c,
                subs: vec![SExpr::Int(1)],
            },
            rhs: SExpr::Real(1.0),
        },
        SStmt::Bcast {
            root: SExpr::Int(0),
            src_array: a,
            src_section: rect(1, 4),
            dst_array: b,
            dst_section: rect(1, 4),
        },
    ]);
    let report = optimize(&mut p, CommOpt::Overlap);
    assert_eq!(report.overlapped, 1, "{report:?}");
    assert_eq!(report.posts_hoisted, 1, "{report:?}");
    let body = &p.procs[0].body;
    assert!(matches!(body[0], SStmt::PostBcast { .. }), "{body:#?}");
    assert!(matches!(body[1], SStmt::Assign { .. }), "{body:#?}");
    assert!(matches!(body[2], SStmt::WaitBcast { .. }), "{body:#?}");
}

/// A receive's wait sinks forward past compute that does not mention the
/// received array, but pins itself before the first statement that does.
#[test]
fn overlap_sinks_recv_wait_only_past_independent_compute() {
    let mut i = Interner::new();
    let b = i.intern("b");
    let c = i.intern("c");
    let recv = SStmt::Recv {
        from: SExpr::Int(1),
        tag: 7,
        array: b,
        section: rect(1, 2),
    };
    let indep = SStmt::Assign {
        lhs: SLval::Elem {
            array: c,
            subs: vec![SExpr::Int(1)],
        },
        rhs: SExpr::Real(2.0),
    };
    let (mut p, _) = prog(vec![recv.clone(), indep.clone()]);
    let report = optimize(&mut p, CommOpt::Overlap);
    assert_eq!(report.waits_sunk, 1, "{report:?}");
    let body = &p.procs[0].body;
    assert!(matches!(body[0], SStmt::PostRecv { .. }), "{body:#?}");
    assert!(matches!(body[1], SStmt::Assign { .. }), "{body:#?}");
    assert!(matches!(body[2], SStmt::WaitRecv { .. }), "{body:#?}");

    // Reading the received array pins the wait in place.
    let dependent = SStmt::Assign {
        lhs: SLval::Elem {
            array: c,
            subs: vec![SExpr::Int(1)],
        },
        rhs: SExpr::Elem {
            array: b,
            subs: vec![SExpr::Int(1)],
        },
    };
    let (mut p2, _) = prog(vec![recv, dependent]);
    let report2 = optimize(&mut p2, CommOpt::Overlap);
    assert_eq!(report2.waits_sunk, 0, "{report2:?}");
    let body2 = &p2.procs[0].body;
    assert!(matches!(body2[0], SStmt::PostRecv { .. }), "{body2:#?}");
    assert!(matches!(body2[1], SStmt::WaitRecv { .. }), "{body2:#?}");
    assert!(matches!(body2[2], SStmt::Assign { .. }), "{body2:#?}");
}

/// Below `Overlap` the program keeps its blocking operations: no post or
/// wait forms may leak out of a `Full` compile.
#[test]
fn full_level_emits_no_posted_operations() {
    let mut i = Interner::new();
    let a = i.intern("a");
    let b = i.intern("b");
    let (mut p, _) = prog(vec![SStmt::Bcast {
        root: SExpr::Int(0),
        src_array: a,
        src_section: rect(1, 4),
        dst_array: b,
        dst_section: rect(1, 4),
    }]);
    let report = optimize(&mut p, CommOpt::Full);
    assert_eq!(report.overlapped, 0);
    assert_eq!(report.pipelined_loops, 0);
    fn no_posts(stmts: &[SStmt]) {
        for s in stmts {
            match s {
                SStmt::PostSend { .. }
                | SStmt::WaitSend { .. }
                | SStmt::PostRecv { .. }
                | SStmt::WaitRecv { .. }
                | SStmt::PostBcast { .. }
                | SStmt::WaitBcast { .. }
                | SStmt::PostBcastPack { .. }
                | SStmt::WaitBcastPack { .. } => panic!("posted op at Full: {s:?}"),
                SStmt::Do { body, .. } => no_posts(body),
                SStmt::If {
                    then_body,
                    else_body,
                    ..
                } => {
                    no_posts(then_body);
                    no_posts(else_body);
                }
                _ => {}
            }
        }
    }
    no_posts(&p.procs[0].body);
}
