//! Shared execution runtime for the SPMD engines.
//!
//! Both engines — the reference tree-walker ([`crate::interp`]) and the
//! bytecode VM ([`crate::vm`]) — run node programs against the same
//! [`Machine`] and must produce bit-identical simulated results
//! (`model_time_us`, message counts/volumes, final arrays, printed lines).
//! Everything observable lives here so the engines cannot drift: runtime
//! values, per-rank array storage, the initial scatter / final gather,
//! the remap library routines, and the run harness that assembles global
//! arrays from per-rank finals.

use crate::ir::*;
use fortrand_ir::dist::ArrayDist;
use fortrand_ir::Sym;
use fortrand_machine::{Machine, Node, RunStats};
pub use fortrand_machine::{MachineKind, RankFailure};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

/// Accounting tag under which plain broadcasts ([`SStmt::Bcast`],
/// [`SStmt::BcastScalar`]) are recorded in the machine's per-tag message
/// stats. High bits keep it clear of compiler-assigned send tags.
pub const TAG_BCAST: u64 = 1 << 32;
/// Accounting tag for coalesced broadcasts ([`SStmt::BcastPack`]).
pub const TAG_BCAST_PACK: u64 = (1 << 32) + 1;
/// Tag space reserved for remap traffic (compiler tags stay below this).
pub(crate) const REMAP_TAG_BASE: u64 = 1 << 40;

/// Legacy engine selector, kept so existing call sites (and the `legacy`
/// feature's wrappers) compile unchanged.
///
/// Deprecated in favor of [`ExecBackend`] values passed to
/// [`ExecOptions::backend`]; [`ExecOptions::engine`] maps each variant to
/// the equivalent backend ([`Tree`] / [`Bytecode`]). The native backend
/// (`crate::codegen::Native`) has no `ExecEngine` spelling — it predates
/// the trait and stays frozen at these two simulator engines.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ExecEngine {
    /// Reference tree-walking interpreter over the [`SStmt`]/[`SExpr`] IR.
    Tree,
    /// Lowered engine: programs are flattened to dense bytecode
    /// ([`crate::lower`]) and run by a dispatch loop ([`crate::vm`]).
    #[default]
    Bytecode,
}

/// Unified result of running a node program under any [`ExecBackend`].
#[derive(Debug)]
#[non_exhaustive]
pub struct RunOutcome {
    /// Run statistics. Simulator backends fill the full virtual-clock
    /// cost model; the native backend reports real message/byte tallies
    /// (parsed from the emitted program's stats protocol) with the
    /// simulated-time fields zeroed and `wall_us` set to the node
    /// program's host wall-clock.
    pub stats: RunStats,
    /// Final global contents of every array declared in the entry
    /// procedure, row-major over the array's global extents.
    pub arrays: BTreeMap<Sym, Vec<f64>>,
    /// Lines printed by rank 0 (`print *` statements).
    pub printed: Vec<String>,
    /// Build artifacts kept on disk, if the backend produced any and was
    /// asked to keep them (e.g. `Native { keep_artifacts: true }` leaves
    /// the emitted source, binary, and IO files in this directory).
    /// `None` for the simulator backends.
    pub artifact: Option<PathBuf>,
}

/// Former name of [`RunOutcome`]; kept as an alias for existing call
/// sites (the struct gained the `artifact` field in the rename).
pub type ExecOutput = RunOutcome;

/// Why a run failed.
#[derive(Debug)]
pub enum ExecError {
    /// A rank panicked (deadlock diagnostic, subscript out of local
    /// bounds, …) — in the simulators or inside the emitted native
    /// program.
    Rank(RankFailure),
    /// The backend itself could not run the program: `rustc` missing,
    /// the emitted program failed to compile, the stats protocol came
    /// back malformed, …
    Backend(String),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Rank(r) => write!(f, "{r}"),
            ExecError::Backend(m) => write!(f, "backend failure: {m}"),
        }
    }
}

impl std::error::Error for ExecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExecError::Rank(r) => Some(r),
            ExecError::Backend(_) => None,
        }
    }
}

impl From<RankFailure> for ExecError {
    fn from(f: RankFailure) -> ExecError {
        ExecError::Rank(f)
    }
}

/// A pluggable way to execute a compiled node program.
///
/// The two simulator engines ([`Tree`], [`Bytecode`]) and the native
/// codegen backend (`crate::codegen::Native`) all implement this; which
/// one runs is selected by [`ExecOptions::backend`]. Implementations must
/// agree on every program-defined observable (final arrays bit for bit,
/// printed lines, message/byte/remap counts, size histogram, per-tag
/// traffic) — `tests/native.rs` and `tests/engines.rs` enforce this
/// differentially. Host-side metrics (`wall_us`, instruction counters)
/// and the simulated clock are backend-specific.
pub trait ExecBackend: Send + Sync + std::fmt::Debug {
    /// Short stable name for reports and bench tables.
    fn name(&self) -> &'static str;

    /// Runs `prog` (already checked against `machine.nprocs`) with the
    /// given initial arrays.
    fn run(
        &self,
        prog: &SpmdProgram,
        machine: &Machine,
        init: &BTreeMap<Sym, Vec<f64>>,
        opts: &ExecOptions,
    ) -> Result<RunOutcome, ExecError>;
}

/// Reference tree-walking interpreter backend ([`crate::interp`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct Tree;

impl ExecBackend for Tree {
    fn name(&self) -> &'static str {
        "tree"
    }
    fn run(
        &self,
        prog: &SpmdProgram,
        machine: &Machine,
        init: &BTreeMap<Sym, Vec<f64>>,
        _opts: &ExecOptions,
    ) -> Result<RunOutcome, ExecError> {
        crate::interp::run_tree(prog, machine, init).map_err(ExecError::Rank)
    }
}

/// Bytecode-VM backend ([`crate::vm`]), the default.
#[derive(Clone, Copy, Debug, Default)]
pub struct Bytecode;

impl ExecBackend for Bytecode {
    fn name(&self) -> &'static str {
        "bytecode"
    }
    fn run(
        &self,
        prog: &SpmdProgram,
        machine: &Machine,
        init: &BTreeMap<Sym, Vec<f64>>,
        opts: &ExecOptions,
    ) -> Result<RunOutcome, ExecError> {
        crate::vm::run_bytecode(prog, machine, init, opts.kernels).map_err(ExecError::Rank)
    }
}

/// Execution knobs for running a compiled node program. Built with
/// chained setters so new knobs never grow a positional-argument list:
///
/// ```ignore
/// let opts = ExecOptions::new().backend(codegen::Native::default());
/// let opts = ExecOptions::new().engine(ExecEngine::Tree); // legacy spelling
/// ```
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct ExecOptions {
    /// The execution backend ([`Bytecode`] by default).
    pub backend: Arc<dyn ExecBackend>,
    /// Execution-substrate override for the simulator backends. `None`
    /// (the default) respects the [`Machine`]'s own kind; `Some(kind)`
    /// re-keys the run onto that substrate (event-driven scheduler or
    /// thread-per-rank). Observables are bit-identical either way — this
    /// selects host mechanics only. Ignored by the native backend.
    pub machine: Option<MachineKind>,
    /// Whether the bytecode engine's superinstruction fusion tier runs
    /// (`true` by default). Off, the VM dispatches the unfused lowering
    /// one instruction at a time — observables are bit-identical either
    /// way; this selects host mechanics only. Ignored by other backends.
    pub kernels: bool,
}

impl Default for ExecOptions {
    fn default() -> ExecOptions {
        ExecOptions {
            backend: Arc::new(Bytecode),
            machine: None,
            kernels: true,
        }
    }
}

impl ExecOptions {
    /// Default options (bytecode backend, fusion on).
    pub fn new() -> ExecOptions {
        ExecOptions::default()
    }

    /// Selects the execution backend.
    pub fn backend(mut self, backend: impl ExecBackend + 'static) -> ExecOptions {
        self.backend = Arc::new(backend);
        self
    }

    /// Selects a simulator engine by its legacy [`ExecEngine`] name.
    /// Compatibility shim for pre-`ExecBackend` call sites; equivalent to
    /// `backend(Tree)` / `backend(Bytecode)`.
    pub fn engine(self, engine: ExecEngine) -> ExecOptions {
        match engine {
            ExecEngine::Tree => self.backend(Tree),
            ExecEngine::Bytecode => self.backend(Bytecode),
        }
    }

    /// Forces the run onto the given execution substrate, overriding the
    /// kind of whatever [`Machine`] is passed in.
    pub fn machine(mut self, kind: MachineKind) -> ExecOptions {
        self.machine = Some(kind);
        self
    }

    /// Enables or disables the bytecode engine's superinstruction
    /// fusion tier.
    pub fn kernels(mut self, on: bool) -> ExecOptions {
        self.kernels = on;
        self
    }
}

/// Runs `prog` on `machine` under the backend selected by `opts`,
/// surfacing a rank panic (e.g. a deadlock diagnostic) as an
/// [`ExecError::Rank`] value instead of unwinding. This is the primary
/// entry point; `fortrand::Session::run` builds on it.
pub fn try_run_spmd(
    prog: &SpmdProgram,
    machine: &Machine,
    init: &BTreeMap<Sym, Vec<f64>>,
    opts: &ExecOptions,
) -> Result<RunOutcome, ExecError> {
    assert_eq!(
        machine.nprocs, prog.nprocs,
        "program compiled for {} procs, machine has {}",
        prog.nprocs, machine.nprocs
    );
    let rekeyed;
    let machine = match opts.machine {
        Some(kind) if kind != machine.kind => {
            rekeyed = machine.clone().with_kind(kind);
            &rekeyed
        }
        _ => machine,
    };
    opts.backend.run(prog, machine, init, opts)
}

/// Runs `prog` on `machine` under the default engine ([`ExecEngine::Bytecode`]).
/// `init` supplies initial global values for arrays declared in the entry
/// procedure (missing arrays start at zero).
///
/// Retired wrapper, available only with the `legacy` cargo feature —
/// prefer [`try_run_spmd`] (panic-safe) or the `fortrand::Session`
/// facade. Panics if a rank panics.
#[cfg(feature = "legacy")]
pub fn run_spmd(
    prog: &SpmdProgram,
    machine: &Machine,
    init: &BTreeMap<Sym, Vec<f64>>,
) -> ExecOutput {
    run_spmd_engine(prog, machine, init, ExecEngine::default())
}

/// [`run_spmd`] with an explicit engine choice.
///
/// Retired wrapper, available only with the `legacy` cargo feature —
/// prefer [`try_run_spmd`] with [`ExecOptions`], or the
/// `fortrand::Session` facade. Panics if a rank panics.
#[cfg(feature = "legacy")]
pub fn run_spmd_engine(
    prog: &SpmdProgram,
    machine: &Machine,
    init: &BTreeMap<Sym, Vec<f64>>,
    engine: ExecEngine,
) -> ExecOutput {
    match try_run_spmd(prog, machine, init, &ExecOptions::new().engine(engine)) {
        Ok(out) => out,
        Err(f) => panic!("{f}"),
    }
}

/// Engine-independent run harness: executes `body` once per rank, collects
/// each rank's final arrays (and rank 0's printed lines), then assembles
/// the global arrays. A rank panic comes back as a [`RankFailure`] with
/// the failing rank id; shared state uses poison-proof lock access so one
/// rank's death cannot cascade into mutex-poison unwraps.
pub(crate) fn run_harness(
    prog: &SpmdProgram,
    machine: &Machine,
    body: impl Fn(&mut Node) -> (Vec<FinalArray>, Vec<String>) + Sync,
) -> Result<ExecOutput, RankFailure> {
    let finals: Mutex<Vec<Option<Vec<FinalArray>>>> =
        Mutex::new((0..machine.nprocs).map(|_| None).collect());
    let printed: Mutex<Vec<String>> = Mutex::new(Vec::new());

    let stats = machine.try_run(|node| {
        let rank = node.rank();
        let (fin, pr) = body(node);
        if rank == 0 {
            printed.lock().unwrap_or_else(|p| p.into_inner()).extend(pr);
        }
        finals.lock().unwrap_or_else(|p| p.into_inner())[rank] = Some(fin);
    })?;

    let finals = finals.into_inner().unwrap_or_else(|p| p.into_inner());
    let per_rank: Vec<Vec<FinalArray>> = finals
        .into_iter()
        .map(|f| f.expect("rank finished without recording finals"))
        .collect();
    Ok(RunOutcome {
        stats,
        arrays: assemble_arrays(prog, &per_rank),
        printed: printed.into_inner().unwrap_or_else(|p| p.into_inner()),
        artifact: None,
    })
}

/// Assembles global arrays from per-rank finals, reading each element from
/// its owner under the array's final distribution.
fn assemble_arrays(prog: &SpmdProgram, per_rank: &[Vec<FinalArray>]) -> BTreeMap<Sym, Vec<f64>> {
    let mut arrays = BTreeMap::new();
    if let Some(rank0) = per_rank.first() {
        for fa in rank0 {
            let dist = &prog.dists[fa.owner_dist.unwrap_or(fa.dist).0 as usize];
            let shape = RowMajor::new(global_extents(dist));
            let mut global = vec![0.0f64; shape.total as usize];
            let mut pt = vec![1i64; shape.extents.len()];
            for flat in 0..shape.total {
                shape.decode_into(flat, &mut pt);
                let owner = dist.owner_of(&pt);
                let fa_owner = per_rank[owner]
                    .iter()
                    .find(|x| x.name == fa.name)
                    .expect("array missing on owner rank");
                // Run-time resolution storage is global-indexed.
                let local = if fa.owner_dist.is_some() {
                    pt.clone()
                } else {
                    dist.local_of_global(&pt)
                };
                if let Some(v) = fa_owner.read(&local) {
                    global[flat as usize] = v;
                }
            }
            arrays.insert(fa.name, global);
        }
    }
    arrays
}

/// Global (pre-partitioning) extents implied by a distribution, in array
/// index space.
pub fn global_extents(dist: &ArrayDist) -> Vec<i64> {
    dist.dims
        .iter()
        .enumerate()
        .map(|(d, p)| p.extent - dist.offsets[d])
        .collect()
}

/// Row-major index space over `extents` with strides precomputed once, so
/// decoding a flat index is O(d) multiplies instead of O(d²) products.
pub(crate) struct RowMajor {
    pub extents: Vec<i64>,
    strides: Vec<i64>,
    pub total: i64,
}

impl RowMajor {
    pub fn new(extents: Vec<i64>) -> Self {
        let n = extents.len();
        let mut strides = vec![1i64; n];
        for d in (0..n.saturating_sub(1)).rev() {
            strides[d] = strides[d + 1] * extents[d + 1];
        }
        let total = extents.iter().product();
        RowMajor {
            extents,
            strides,
            total,
        }
    }

    /// Decodes `flat` into 1-based point coordinates.
    pub fn decode_into(&self, flat: i64, pt: &mut [i64]) {
        let mut rem = flat;
        for (p, stride) in pt.iter_mut().zip(&self.strides) {
            *p = rem / stride + 1;
            rem %= stride;
        }
    }

    /// Encodes 1-based point coordinates into a flat index.
    pub fn encode(&self, pt: &[i64]) -> i64 {
        pt.iter()
            .zip(&self.strides)
            .map(|(&x, &s)| (x - 1) * s)
            .sum()
    }
}

/// One array's final state on one rank.
pub(crate) struct FinalArray {
    pub name: Sym,
    pub bounds: Vec<(i64, i64)>,
    pub data: Vec<f64>,
    pub dist: DistId,
    pub owner_dist: Option<DistId>,
}

impl FinalArray {
    fn read(&self, local: &[i64]) -> Option<f64> {
        let mut flat = 0usize;
        for (d, &x) in local.iter().enumerate() {
            let (lo, hi) = self.bounds[d];
            if x < lo || x > hi {
                return None;
            }
            let width = (hi - lo + 1) as usize;
            flat = flat * width + (x - lo) as usize;
        }
        self.data.get(flat).copied()
    }
}

/// Runtime value. The distinction between `I` and `R` is semantic, not just
/// representational: binary operations charge a flop when either operand is
/// `R` and an integer op otherwise, so both engines must carry it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub(crate) enum Value {
    I(i64),
    R(f64),
}

impl Value {
    pub fn as_i(self) -> i64 {
        match self {
            Value::I(v) => v,
            Value::R(v) => v as i64,
        }
    }
    pub fn as_r(self) -> f64 {
        match self {
            Value::I(v) => v as f64,
            Value::R(v) => v,
        }
    }
    pub fn truthy(self) -> bool {
        self.as_i() != 0
    }
}

/// Converts a scalar that traveled over the wire as `f64` back to a
/// [`Value`]: integrality is preserved when exact (broadcast scalars are
/// pivot indices in practice).
pub(crate) fn scalar_from_wire(v: f64) -> Value {
    if v == v.trunc() {
        Value::I(v as i64)
    } else {
        Value::R(v)
    }
}

/// Array storage on one rank.
pub(crate) struct ArrayStore {
    pub name: Sym,
    pub bounds: Vec<(i64, i64)>,
    pub data: Vec<f64>,
    pub dist: DistId,
    pub owner_dist: Option<DistId>,
}

impl ArrayStore {
    pub fn alloc(name: Sym, bounds: Vec<(i64, i64)>, dist: DistId) -> Self {
        let len: i64 = bounds
            .iter()
            .map(|&(lo, hi)| (hi - lo + 1).max(0))
            .product();
        ArrayStore {
            name,
            bounds,
            data: vec![0.0; len as usize],
            dist,
            owner_dist: None,
        }
    }
    pub fn flat(&self, subs: &[i64]) -> usize {
        debug_assert_eq!(subs.len(), self.bounds.len());
        let mut flat = 0usize;
        for (d, &x) in subs.iter().enumerate() {
            let (lo, hi) = self.bounds[d];
            assert!(
                x >= lo && x <= hi,
                "subscript {} out of local bounds {}:{} (dim {}) of array",
                x,
                lo,
                hi,
                d
            );
            let width = (hi - lo + 1) as usize;
            flat = flat * width + (x - lo) as usize;
        }
        flat
    }
    pub fn get(&self, subs: &[i64]) -> f64 {
        self.data[self.flat(subs)]
    }
    pub fn set(&mut self, subs: &[i64], v: f64) {
        let f = self.flat(subs);
        self.data[f] = v;
    }
}

/// Applies a binary operator. Integer op when both operands are `I`;
/// otherwise both promote to `f64`. Comparisons and logicals yield `I(0|1)`.
pub(crate) fn apply_bin(op: SBinOp, a: Value, b: Value) -> Value {
    use SBinOp::*;
    let bool_v = |c: bool| Value::I(c as i64);
    match (a, b) {
        (Value::I(x), Value::I(y)) => match op {
            Add => Value::I(x + y),
            Sub => Value::I(x - y),
            Mul => Value::I(x * y),
            Div => Value::I(x / y),
            Pow => Value::I(x.pow(y.clamp(0, 62) as u32)),
            Lt => bool_v(x < y),
            Le => bool_v(x <= y),
            Gt => bool_v(x > y),
            Ge => bool_v(x >= y),
            Eq => bool_v(x == y),
            Ne => bool_v(x != y),
            And => bool_v(x != 0 && y != 0),
            Or => bool_v(x != 0 || y != 0),
        },
        _ => {
            let x = a.as_r();
            let y = b.as_r();
            match op {
                Add => Value::R(x + y),
                Sub => Value::R(x - y),
                Mul => Value::R(x * y),
                Div => Value::R(x / y),
                Pow => Value::R(x.powf(y)),
                Lt => bool_v(x < y),
                Le => bool_v(x <= y),
                Gt => bool_v(x > y),
                Ge => bool_v(x >= y),
                Eq => bool_v(x == y),
                Ne => bool_v(x != y),
                And => bool_v(x != 0.0 && y != 0.0),
                Or => bool_v(x != 0.0 || y != 0.0),
            }
        }
    }
}

/// Applies an intrinsic to already-evaluated arguments.
pub(crate) fn apply_intr(name: SIntr, vals: &[Value]) -> Value {
    match name {
        SIntr::Abs => match vals[0] {
            Value::I(v) => Value::I(v.abs()),
            Value::R(v) => Value::R(v.abs()),
        },
        SIntr::Min => {
            if vals.iter().all(|v| matches!(v, Value::I(_))) {
                Value::I(vals.iter().map(|v| v.as_i()).min().unwrap())
            } else {
                Value::R(vals.iter().map(|v| v.as_r()).fold(f64::INFINITY, f64::min))
            }
        }
        SIntr::Max => {
            if vals.iter().all(|v| matches!(v, Value::I(_))) {
                Value::I(vals.iter().map(|v| v.as_i()).max().unwrap())
            } else {
                Value::R(
                    vals.iter()
                        .map(|v| v.as_r())
                        .fold(f64::NEG_INFINITY, f64::max),
                )
            }
        }
        SIntr::Mod => match (vals[0], vals[1]) {
            (Value::I(a), Value::I(b)) => Value::I(a % b),
            (a, b) => Value::R(a.as_r() % b.as_r()),
        },
        SIntr::Sqrt => Value::R(vals[0].as_r().sqrt()),
        SIntr::Sign => {
            let (a, b) = (vals[0].as_r(), vals[1].as_r());
            Value::R(if b >= 0.0 { a.abs() } else { -a.abs() })
        }
    }
}

/// Fills the local part of `store` from a row-major global buffer.
/// Replicated (serial) dims store on every rank; distributed dims only on
/// the owner. Run-time resolution storage is handled by the caller (full
/// copy).
pub(crate) fn scatter_init_store(
    store: &mut ArrayStore,
    dist: &ArrayDist,
    global: &[f64],
    my: usize,
) {
    let shape = RowMajor::new(global_extents(dist));
    assert_eq!(
        shape.total as usize,
        global.len(),
        "initial data size mismatch"
    );
    let replicated = dist.is_replicated();
    if !replicated && scatter_owned_fast(store, dist, global, &shape, my) {
        return;
    }
    let mut pt = vec![1i64; shape.extents.len()];
    for flat in 0..shape.total {
        shape.decode_into(flat, &mut pt);
        let owner = dist.owner_of(&pt);
        if replicated || owner == my {
            let local = dist.local_of_global(&pt);
            // Guard against overlap bounds excluding the point (cannot
            // happen for owned points, but stay defensive).
            let ok = local
                .iter()
                .zip(&store.bounds)
                .all(|(&x, &(lo, hi))| x >= lo && x <= hi);
            if ok {
                store.set(&local, global[flat as usize]);
            }
        }
    }
}

/// O(local) scatter: iterates only this rank's owned index set, via the
/// distribution's owned-region triplets, instead of scanning the whole
/// global array and ownership-testing every point (which costs
/// O(p · global) aggregate — prohibitive at p ≥ 1024). Returns `false`
/// when the owned set is not expressible as exact constant triplets
/// (multi-processor `BLOCK_CYCLIC`), leaving the caller on the full scan.
fn scatter_owned_fast(
    store: &mut ArrayStore,
    dist: &ArrayDist,
    global: &[f64],
    shape: &RowMajor,
    my: usize,
) -> bool {
    if dist.dims.iter().any(|dp| !dp.owned_triplet_exact()) {
        return false;
    }
    let rsd = dist.owned_rsd(my);
    let mut ranges = Vec::with_capacity(rsd.dims.len());
    for (t, &extent) in rsd.dims.iter().zip(&shape.extents) {
        let (Some(lo), Some(hi)) = (t.lo.as_const(), t.hi.as_const()) else {
            return false;
        };
        // Alignment offsets can push the owned triplet past the array
        // bounds; clamp to [1, extent] staying on the stride lattice.
        let mut lo = lo;
        if lo < 1 {
            lo += (1 - lo + t.step - 1) / t.step * t.step;
        }
        ranges.push((lo, hi.min(extent), t.step));
    }
    if ranges.iter().any(|&(lo, hi, _)| hi < lo) {
        return true; // owns nothing
    }
    let mut pt: Vec<i64> = ranges.iter().map(|&(lo, _, _)| lo).collect();
    loop {
        let local = dist.local_of_global(&pt);
        let ok = local
            .iter()
            .zip(&store.bounds)
            .all(|(&x, &(lo, hi))| x >= lo && x <= hi);
        if ok {
            store.set(&local, global[shape.encode(&pt) as usize]);
        }
        // Odometer step, rightmost dimension fastest.
        let mut d = ranges.len();
        loop {
            if d == 0 {
                return true;
            }
            d -= 1;
            pt[d] += ranges[d].2;
            if pt[d] <= ranges[d].1 {
                break;
            }
            pt[d] = ranges[d].0;
        }
    }
}

/// Full dynamic remap with data motion (library routine of §6): moves the
/// contents of `old` (distributed as `d0`) into a fresh store distributed
/// as `d1`. The caller has already flushed charges and charged the remap
/// call; this routine only moves data (charged as messages).
pub(crate) fn remap_store(
    node: &mut Node,
    old: &ArrayStore,
    d0: &ArrayDist,
    d1: &ArrayDist,
    to_dist: DistId,
) -> ArrayStore {
    let shape = RowMajor::new(global_extents(d0));
    assert_eq!(
        shape.extents,
        global_extents(d1),
        "remap changes array shape"
    );
    let my = node.rank();
    let p = node.nprocs();

    let bounds: Vec<(i64, i64)> = d1.local_extents().iter().map(|&e| (1, e)).collect();
    let mut new_store = ArrayStore::alloc(old.name, bounds, to_dist);

    // Outgoing: group my old elements by new owner, row-major order.
    let mut outgoing: Vec<Vec<f64>> = vec![Vec::new(); p];
    let mut pt = vec![1i64; shape.extents.len()];
    for flat in 0..shape.total {
        shape.decode_into(flat, &mut pt);
        if d0.owner_of(&pt) != my {
            continue;
        }
        let v = old.get(&d0.local_of_global(&pt));
        let dst = d1.owner_of(&pt);
        if dst == my {
            new_store.set(&d1.local_of_global(&pt), v);
        } else {
            outgoing[dst].push(v);
        }
    }
    for (dst, buf) in outgoing.iter().enumerate() {
        if dst != my && !buf.is_empty() {
            node.send(dst, REMAP_TAG_BASE + dst as u64, buf);
        }
    }
    // Incoming: my new elements whose old owner differs, in the sender's
    // row-major order (same global order, so a simple fill works).
    let mut incoming_pts: Vec<Vec<Vec<i64>>> = vec![Vec::new(); p];
    for flat in 0..shape.total {
        shape.decode_into(flat, &mut pt);
        if d1.owner_of(&pt) != my {
            continue;
        }
        let src = d0.owner_of(&pt);
        if src != my {
            incoming_pts[src].push(pt.clone());
        }
    }
    for (src, pts) in incoming_pts.iter().enumerate() {
        if src == my || pts.is_empty() {
            continue;
        }
        let data = node.recv(src, REMAP_TAG_BASE + my as u64);
        assert_eq!(data.len(), pts.len(), "remap message size mismatch");
        for (pt, &v) in pts.iter().zip(&data) {
            new_store.set(&d1.local_of_global(pt), v);
        }
    }
    new_store
}

/// Run-time resolution remap: storage stays global-shaped; the
/// authoritative values move from old owners (`d0`) to new owners (`d1`)
/// in place. The caller updates `owner_dist` afterwards.
pub(crate) fn remap_global_store(
    node: &mut Node,
    store: &mut ArrayStore,
    d0: &ArrayDist,
    d1: &ArrayDist,
) {
    let shape = RowMajor::new(global_extents(d0));
    let my = node.rank();
    let p = node.nprocs();
    let mut outgoing: Vec<Vec<f64>> = vec![Vec::new(); p];
    let mut pt = vec![1i64; shape.extents.len()];
    for flat in 0..shape.total {
        shape.decode_into(flat, &mut pt);
        if d0.owner_of(&pt) != my {
            continue;
        }
        let dst = d1.owner_of(&pt);
        if dst != my {
            let v = store.get(&pt);
            outgoing[dst].push(v);
        }
    }
    for (dst, buf) in outgoing.iter().enumerate() {
        if dst != my && !buf.is_empty() {
            node.send(dst, REMAP_TAG_BASE + dst as u64, buf);
        }
    }
    let mut incoming_pts: Vec<Vec<Vec<i64>>> = vec![Vec::new(); p];
    for flat in 0..shape.total {
        shape.decode_into(flat, &mut pt);
        if d1.owner_of(&pt) != my {
            continue;
        }
        let src = d0.owner_of(&pt);
        if src != my {
            incoming_pts[src].push(pt.clone());
        }
    }
    for (src, pts) in incoming_pts.iter().enumerate() {
        if src == my || pts.is_empty() {
            continue;
        }
        let data = node.recv(src, REMAP_TAG_BASE + my as u64);
        assert_eq!(data.len(), pts.len(), "remap_global size mismatch");
        for (pt, &v) in pts.iter().zip(&data) {
            store.set(pt, v);
        }
    }
}

/// Array-kill optimized remap (§6.3): values are dead — swap descriptors,
/// no data motion. Contents become undefined (zeroed).
pub(crate) fn mark_dist_store(store: &mut ArrayStore, new_dist: &ArrayDist, to_dist: DistId) {
    let bounds: Vec<(i64, i64)> = new_dist.local_extents().iter().map(|&e| (1, e)).collect();
    *store = ArrayStore::alloc(store.name, bounds, to_dist);
}
