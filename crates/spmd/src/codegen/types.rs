//! Static scalar typing for the native backend.
//!
//! The simulators carry every scalar as a dynamic `Value::{I, R}` because
//! the I/R distinction is *semantic* (integer division, `Pow` clamping,
//! wire re-integerization). The emitted Rust program wants typed locals
//! (`i64`/`f64`) on the hot paths, so this pass infers, per procedure and
//! scalar, a three-point lattice
//!
//! ```text
//!        V            (dynamically I or R — emitted as shim::Val)
//!       / \
//!      I   R          (always integer / always real)
//!       \ /
//!        ⊥            (never assigned — reads as I(0), emitted as i64)
//! ```
//!
//! by a monotone interprocedural fixpoint over assignments, loop
//! variables, call bindings (actual → formal), Fortran copy-out
//! (formal → caller variable), and the wire sinks that re-integerize
//! (`BcastScalar` and packed-broadcast scalars force `V`; `RecvElem`
//! forces at least `R`). The lattice has height 2, so the fixpoint is
//! cheap and trivially terminating.

use crate::ir::*;
use fortrand_ir::Sym;
use std::collections::BTreeMap;

/// Inferred type of one scalar within one procedure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Ty {
    /// Always `Value::I` at run time.
    I,
    /// Always `Value::R` at run time.
    R,
    /// Either, decided dynamically — carried as `shim::Val`.
    V,
}

fn join(a: Option<Ty>, b: Ty) -> Ty {
    match a {
        None => b,
        Some(x) if x == b => x,
        Some(_) => Ty::V,
    }
}

/// Per-procedure scalar type environments (same indexing as
/// `SpmdProgram::procs`). Unassigned scalars default to [`Ty::I`]
/// (uninitialized reads are `I(0)` in the simulators).
pub(crate) struct ScalarTypes {
    pub envs: Vec<BTreeMap<Sym, Ty>>,
}

impl ScalarTypes {
    pub fn ty_of(&self, proc: usize, sym: Sym) -> Ty {
        self.envs[proc].get(&sym).copied().unwrap_or(Ty::I)
    }

    /// Infers scalar types for every procedure of `prog`.
    pub fn infer(prog: &SpmdProgram) -> ScalarTypes {
        let mut st = ScalarTypes {
            envs: vec![BTreeMap::new(); prog.procs.len()],
        };
        loop {
            let before = st.envs.clone();
            for (idx, proc) in prog.procs.iter().enumerate() {
                st.walk_body(prog, idx, &proc.body);
            }
            if st.envs == before {
                return st;
            }
        }
    }

    fn set(&mut self, proc: usize, sym: Sym, ty: Ty) {
        let cur = self.envs[proc].get(&sym).copied();
        self.envs[proc].insert(sym, join(cur, ty));
    }

    /// Natural type of an expression under the current environment.
    pub fn ty(&self, proc: usize, e: &SExpr) -> Ty {
        match e {
            SExpr::Int(_) | SExpr::MyP | SExpr::NProcs => Ty::I,
            SExpr::Real(_) => Ty::R,
            SExpr::Var(s) => self.ty_of(proc, *s),
            SExpr::Elem { .. } => Ty::R,
            SExpr::Bin { op, l, r } => match op {
                SBinOp::Lt
                | SBinOp::Le
                | SBinOp::Gt
                | SBinOp::Ge
                | SBinOp::Eq
                | SBinOp::Ne
                | SBinOp::And
                | SBinOp::Or => Ty::I,
                _ => promote(self.ty(proc, l), self.ty(proc, r)),
            },
            SExpr::Neg(x) => self.ty(proc, x),
            SExpr::Not(_) => Ty::I,
            SExpr::Intr { name, args } => match name {
                SIntr::Sqrt | SIntr::Sign => Ty::R,
                SIntr::Abs => self.ty(proc, &args[0]),
                SIntr::Min | SIntr::Max | SIntr::Mod => {
                    let tys: Vec<Ty> = args.iter().map(|a| self.ty(proc, a)).collect();
                    if tys.iter().all(|&t| t == Ty::I) {
                        Ty::I
                    } else if tys.contains(&Ty::R) {
                        // The runtime all-I test definitely fails.
                        Ty::R
                    } else {
                        Ty::V
                    }
                }
            },
            SExpr::Owner { .. } | SExpr::CurOwner { .. } | SExpr::LocalIdx { .. } => Ty::I,
        }
    }

    fn walk_body(&mut self, prog: &SpmdProgram, proc: usize, body: &[SStmt]) {
        for s in body {
            self.walk_stmt(prog, proc, s);
        }
    }

    fn walk_stmt(&mut self, prog: &SpmdProgram, proc: usize, s: &SStmt) {
        match s {
            SStmt::Assign {
                lhs: SLval::Scalar(v),
                rhs,
            } => {
                let t = self.ty(proc, rhs);
                self.set(proc, *v, t);
            }
            SStmt::Assign { .. } => {}
            SStmt::Do { var, body, .. } => {
                self.set(proc, *var, Ty::I);
                self.walk_body(prog, proc, body);
            }
            SStmt::If {
                then_body,
                else_body,
                ..
            } => {
                self.walk_body(prog, proc, then_body);
                self.walk_body(prog, proc, else_body);
            }
            SStmt::Call {
                proc: callee,
                args,
                copy_out,
            } => {
                let formals = prog.procs[*callee].formals.clone();
                for (f, a) in formals.iter().zip(args) {
                    if let (false, SActual::Scalar(e)) = (f.is_array, a) {
                        let t = self.ty(proc, e);
                        self.set(*callee, f.name, t);
                    }
                }
                for (f, caller_var) in copy_out {
                    let t = self.ty_of(*callee, *f);
                    self.set(proc, *caller_var, t);
                }
            }
            SStmt::RecvElem {
                lhs: SLval::Scalar(v),
                ..
            } => {
                self.set(proc, *v, Ty::R);
            }
            SStmt::RecvElem { .. } => {}
            SStmt::BcastScalar { var, .. } => {
                // `scalar_from_wire` re-integerizes dynamically.
                self.set(proc, *var, Ty::V);
            }
            SStmt::BcastPack { parts, .. }
            | SStmt::PostBcastPack { parts, .. }
            | SStmt::WaitBcastPack { parts, .. } => {
                for p in parts {
                    if let BcastPart::Scalar(v) = p {
                        self.set(proc, *v, Ty::V);
                    }
                }
            }
            _ => {}
        }
    }
}

/// Result type of an arithmetic binop on operands of the given types.
fn promote(a: Ty, b: Ty) -> Ty {
    match (a, b) {
        (Ty::I, Ty::I) => Ty::I,
        // Any statically-real operand forces the float path at run time.
        (Ty::R, _) | (_, Ty::R) => Ty::R,
        _ => Ty::V,
    }
}
