//! Native codegen backend: compiles a [`SpmdProgram`] to a real
//! executable and runs it.
//!
//! The pipeline is
//!
//! 1. **emit** ([`emit`]): pretty-print the program as standalone Rust —
//!    one `fn` per procedure, typed scalar locals (see
//!    [`types`]), RSD loops as counted `while` loops, and every
//!    communication statement as a call into the `fortrand-shim` runtime
//!    crate (thread-per-rank typed channels, rank-ordered collectives
//!    matching the simulator's `CollCore`, the remap library, and the
//!    message-statistics accounting);
//! 2. **build**: drive `rustc` directly (no cargo) — the shim is built
//!    once per (source, rustc) pair into a content-addressed rlib cache
//!    under the system temp dir, then the node program is compiled
//!    against it at the backend's `opt_level`;
//! 3. **run**: execute the binary with the initial arrays serialized to
//!    an init file; the program writes the assembled global arrays to an
//!    out file and prints the stats protocol below on stdout, which is
//!    parsed back into [`fortrand_machine::RunStats`].
//!
//! ### Stats protocol (v1)
//!
//! ```text
//! FORTRAND-NATIVE-STATS v1
//! nprocs <p>
//! print <line>                            (0+ lines, rank 0's output)
//! node <rank> <msgs> <bytes> <remaps> <posts> <waits>
//! hist <rank> <b0> <b1> <b2> <b3> <b4>
//! tag <rank> <tag> <msgs> <bytes>         (0+ lines per rank)
//! END
//! ```
//!
//! A rank failure instead prints `FAIL rank=<r> msg=<one line>` and exits
//! nonzero; the driver surfaces it as [`ExecError::Rank`], exactly like
//! the simulators surface a panicking rank.
//!
//! Because the shim replicates the simulator's distribution arithmetic,
//! collective ordering, and FP evaluation order, a native run is
//! **bit-identical** to a simulated one in every program-defined
//! observable: final arrays, printed lines, message/byte/remap counts,
//! the size histogram, and per-tag traffic (`tests/native.rs` enforces
//! this differentially). Virtual-clock metrics have no native analog and
//! are reported as zero; `RunStats::wall_us` is the node program's real
//! wall-clock (build time excluded).

mod emit;
mod types;

use crate::ir::SpmdProgram;
use crate::runtime::{ExecBackend, ExecError, ExecOptions, RunOutcome};
use fortrand_ir::Sym;
use fortrand_machine::{Machine, NodeStats, RankFailure, RunStats, HIST_BUCKETS};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// The shim runtime's source, baked into this crate so the backend can
/// build node programs on machines that only have the `fortrand` binary
/// and a `rustc` (no checkout, no cargo, no registry).
const SHIM_SRC: &str = include_str!(concat!(env!("CARGO_MANIFEST_DIR"), "/../shim/src/lib.rs"));

/// Pretty-prints `prog` as the complete source of a native node program
/// (what the [`Native`] backend feeds to `rustc`). Deterministic: equal
/// programs emit byte-identical source.
pub fn emit(prog: &SpmdProgram) -> String {
    emit::emit_program(prog)
}

/// Native codegen execution backend.
///
/// ```ignore
/// let opts = ExecOptions::new().backend(Native::default());
/// let out = try_run_spmd(&prog, &machine, &init, &opts)?;
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Native {
    /// `rustc -C opt-level` for the node program (the shim rlib is always
    /// built at opt-level 2 and cached). Use 0 in tests for build speed.
    pub opt_level: u8,
    /// Keep the build directory (emitted source, binary, IO files) and
    /// return it in [`RunOutcome::artifact`] instead of deleting it.
    pub keep_artifacts: bool,
}

impl Default for Native {
    fn default() -> Native {
        Native {
            opt_level: 2,
            keep_artifacts: false,
        }
    }
}

impl ExecBackend for Native {
    fn name(&self) -> &'static str {
        "native"
    }

    fn run(
        &self,
        prog: &SpmdProgram,
        _machine: &Machine,
        init: &BTreeMap<Sym, Vec<f64>>,
        _opts: &ExecOptions,
    ) -> Result<RunOutcome, ExecError> {
        run_native(self, prog, init)
    }
}

/// Overridable `rustc` path (`FORTRAND_RUSTC` env var).
fn rustc_bin() -> String {
    std::env::var("FORTRAND_RUSTC").unwrap_or_else(|_| "rustc".to_string())
}

/// `rustc -V` output, probed once per process. `None` when no toolchain
/// is reachable — callers (tests, the bench gate) skip gracefully.
pub fn rustc_version() -> Option<&'static str> {
    static V: OnceLock<Option<String>> = OnceLock::new();
    V.get_or_init(|| {
        let out = Command::new(rustc_bin()).arg("-V").output().ok()?;
        if out.status.success() {
            Some(String::from_utf8_lossy(&out.stdout).trim().to_string())
        } else {
            None
        }
    })
    .as_deref()
}

/// Whether the native backend can run at all on this host.
pub fn rustc_available() -> bool {
    rustc_version().is_some()
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn run_rustc(args: &[&str]) -> Result<(), String> {
    let out = Command::new(rustc_bin())
        .args(args)
        .output()
        .map_err(|e| format!("spawning {}: {e}", rustc_bin()))?;
    if out.status.success() {
        Ok(())
    } else {
        Err(format!(
            "rustc {} failed:\n{}",
            args.join(" "),
            String::from_utf8_lossy(&out.stderr)
        ))
    }
}

/// Builds (or reuses) the shim rlib in a content-addressed cache keyed by
/// the shim source and the rustc version, so stale toolchain or source
/// changes never link. A process-wide mutex plus write-to-temp-then-rename
/// keeps concurrent builds (parallel tests, the serve daemon) safe.
fn shim_rlib() -> Result<PathBuf, String> {
    static LOCK: Mutex<()> = Mutex::new(());
    let version = rustc_version().ok_or_else(|| "no rustc toolchain available".to_string())?;
    let mut keyed = SHIM_SRC.as_bytes().to_vec();
    keyed.extend_from_slice(version.as_bytes());
    let key = fnv1a(&keyed);
    let cache = std::env::temp_dir().join("fortrand-shim-cache");
    let rlib = cache.join(format!("libfortrand_shim-{key:016x}.rlib"));
    if rlib.exists() {
        return Ok(rlib);
    }
    let _g = LOCK.lock().unwrap_or_else(|p| p.into_inner());
    if rlib.exists() {
        return Ok(rlib);
    }
    std::fs::create_dir_all(&cache).map_err(|e| format!("creating {}: {e}", cache.display()))?;
    let src = cache.join(format!("shim-{key:016x}.rs"));
    std::fs::write(&src, SHIM_SRC).map_err(|e| format!("writing {}: {e}", src.display()))?;
    let tmp = cache.join(format!(
        "libfortrand_shim-{key:016x}.rlib.tmp{}",
        std::process::id()
    ));
    run_rustc(&[
        "--edition",
        "2021",
        "--crate-name",
        "fortrand_shim",
        "--crate-type",
        "rlib",
        "-C",
        "opt-level=2",
        "-o",
        tmp.to_str().unwrap(),
        src.to_str().unwrap(),
    ])?;
    std::fs::rename(&tmp, &rlib).map_err(|e| format!("installing shim rlib: {e}"))?;
    Ok(rlib)
}

/// Init-file format: one record per entry-procedure array declaration, in
/// declaration order — `present: u8`, then (if present) `len: u64 LE` and
/// `len` little-endian `f64`s of row-major global contents.
fn write_init(
    path: &Path,
    prog: &SpmdProgram,
    init: &BTreeMap<Sym, Vec<f64>>,
) -> Result<(), String> {
    let mut bytes = Vec::new();
    for decl in &prog.procs[prog.main].decls {
        match init.get(&decl.name) {
            Some(data) => {
                bytes.push(1u8);
                bytes.extend_from_slice(&(data.len() as u64).to_le_bytes());
                for v in data {
                    bytes.extend_from_slice(&v.to_le_bytes());
                }
            }
            None => bytes.push(0u8),
        }
    }
    std::fs::write(path, bytes).map_err(|e| format!("writing {}: {e}", path.display()))
}

/// Out-file format: one record per entry-procedure array declaration, in
/// declaration order — `len: u64 LE`, then `len` little-endian `f64`s.
fn read_out(path: &Path, prog: &SpmdProgram) -> Result<BTreeMap<Sym, Vec<f64>>, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    let mut out = BTreeMap::new();
    let mut at = 0usize;
    for decl in &prog.procs[prog.main].decls {
        let len_bytes: [u8; 8] = bytes
            .get(at..at + 8)
            .ok_or("truncated out file")?
            .try_into()
            .unwrap();
        let len = u64::from_le_bytes(len_bytes) as usize;
        at += 8;
        let mut data = Vec::with_capacity(len);
        for _ in 0..len {
            let vb: [u8; 8] = bytes
                .get(at..at + 8)
                .ok_or("truncated out file")?
                .try_into()
                .unwrap();
            data.push(f64::from_le_bytes(vb));
            at += 8;
        }
        out.insert(decl.name, data);
    }
    Ok(out)
}

/// Parses the stats protocol (see module docs) into per-rank stats and
/// rank 0's printed lines.
fn parse_stats(stdout: &str, p: usize) -> Result<(Vec<NodeStats>, Vec<String>), String> {
    let mut lines = stdout.lines();
    match lines.next() {
        Some("FORTRAND-NATIVE-STATS v1") => {}
        other => return Err(format!("bad stats header: {other:?}")),
    }
    match lines.next() {
        Some(l) if l == format!("nprocs {p}") => {}
        other => return Err(format!("bad nprocs line: {other:?}")),
    }
    let mut printed = Vec::new();
    let mut nodes = vec![NodeStats::default(); p];
    let mut saw_end = false;
    for line in lines {
        if line == "END" {
            saw_end = true;
            break;
        }
        if let Some(text) = line.strip_prefix("print ") {
            printed.push(text.to_string());
            continue;
        }
        let fields: Vec<&str> = line.split_ascii_whitespace().collect();
        let num = |s: &str| {
            s.parse::<u64>()
                .map_err(|e| format!("bad field {s:?}: {e}"))
        };
        match fields.as_slice() {
            ["node", rank, msgs, bytes, remaps, posts, waits] => {
                let r = num(rank)? as usize;
                let n = nodes.get_mut(r).ok_or("rank out of range")?;
                n.msgs_sent = num(msgs)?;
                n.bytes_sent = num(bytes)?;
                n.remaps = num(remaps)?;
                n.overlap_posts = num(posts)?;
                n.overlap_waits = num(waits)?;
            }
            ["hist", rank, rest @ ..] if rest.len() == HIST_BUCKETS => {
                let r = num(rank)? as usize;
                let n = nodes.get_mut(r).ok_or("rank out of range")?;
                for (slot, s) in n.msg_hist.iter_mut().zip(rest) {
                    *slot = num(s)?;
                }
            }
            ["tag", rank, tag, msgs, bytes] => {
                let r = num(rank)? as usize;
                let n = nodes.get_mut(r).ok_or("rank out of range")?;
                n.msgs_by_tag.insert(num(tag)?, (num(msgs)?, num(bytes)?));
            }
            _ => return Err(format!("unrecognized stats line: {line:?}")),
        }
    }
    if !saw_end {
        return Err("stats protocol not terminated with END".to_string());
    }
    Ok((nodes, printed))
}

fn backend_err(m: String) -> ExecError {
    ExecError::Backend(m)
}

fn run_native(
    cfg: &Native,
    prog: &SpmdProgram,
    init: &BTreeMap<Sym, Vec<f64>>,
) -> Result<RunOutcome, ExecError> {
    if !rustc_available() {
        return Err(backend_err(format!(
            "no rustc toolchain found (checked {:?}; set FORTRAND_RUSTC to override)",
            rustc_bin()
        )));
    }
    let entry = &prog.procs[prog.main];
    if !entry.formals.is_empty() {
        return Err(backend_err(
            "entry procedure with formals cannot be compiled natively".to_string(),
        ));
    }

    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "fortrand-native-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir)
        .map_err(|e| backend_err(format!("creating {}: {e}", dir.display())))?;
    let cleanup = |dir: &Path| {
        if !cfg.keep_artifacts {
            let _ = std::fs::remove_dir_all(dir);
        }
    };

    let result = (|| -> Result<RunOutcome, ExecError> {
        let src_path = dir.join("prog.rs");
        std::fs::write(&src_path, emit::emit_program(prog))
            .map_err(|e| backend_err(format!("writing {}: {e}", src_path.display())))?;

        let rlib = shim_rlib().map_err(backend_err)?;
        let bin_path = dir.join("prog");
        run_rustc(&[
            "--edition",
            "2021",
            "--crate-name",
            "node_prog",
            "-C",
            &format!("opt-level={}", cfg.opt_level),
            "-C",
            "debug-assertions=off",
            "--extern",
            &format!("fortrand_shim={}", rlib.display()),
            "-o",
            bin_path.to_str().unwrap(),
            src_path.to_str().unwrap(),
        ])
        .map_err(backend_err)?;

        let init_path = dir.join("init.bin");
        let out_path = dir.join("out.bin");
        write_init(&init_path, prog, init).map_err(backend_err)?;

        let started = Instant::now();
        let run = Command::new(&bin_path)
            .arg(&init_path)
            .arg(&out_path)
            .output()
            .map_err(|e| backend_err(format!("running node program: {e}")))?;
        let wall_us = started.elapsed().as_secs_f64() * 1e6;
        let stdout = String::from_utf8_lossy(&run.stdout);

        if !run.status.success() {
            // A rank panic is a program-defined failure, same as in the
            // simulators; anything else is the backend's problem.
            for line in stdout.lines() {
                if let Some(rest) = line.strip_prefix("FAIL rank=") {
                    if let Some((rank, msg)) = rest.split_once(" msg=") {
                        if let Ok(rank) = rank.parse::<usize>() {
                            return Err(ExecError::Rank(RankFailure {
                                rank,
                                message: msg.to_string(),
                            }));
                        }
                    }
                }
            }
            return Err(backend_err(format!(
                "node program exited with {}: {}",
                run.status,
                String::from_utf8_lossy(&run.stderr)
            )));
        }

        let (nodes, printed) = parse_stats(&stdout, prog.nprocs).map_err(backend_err)?;
        let arrays = read_out(&out_path, prog).map_err(backend_err)?;
        let mut stats = RunStats::aggregate(nodes);
        stats.wall_us = wall_us;
        Ok(RunOutcome {
            stats,
            arrays,
            printed,
            artifact: if cfg.keep_artifacts {
                Some(dir.clone())
            } else {
                None
            },
        })
    })();

    match &result {
        Ok(_) => {
            if !cfg.keep_artifacts {
                cleanup(&dir);
            }
        }
        Err(_) => cleanup(&dir),
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::*;
    use crate::runtime::{try_run_spmd, ExecOptions};
    use fortrand_ir::dist::{Alignment, ArrayDist, DistKind, Distribution};
    use fortrand_ir::Interner;
    use fortrand_machine::Machine;

    /// A small two-procedure program exercising scalars of every static
    /// type, section sends, a broadcast, copy-out, and print: rank 0
    /// fills its block of `a`, sends one element to rank 1's halo, and
    /// everyone broadcasts and prints a mixed-type scalar.
    fn sample(p: usize) -> SpmdProgram {
        fn add(l: SExpr, r: SExpr) -> SExpr {
            SExpr::Bin {
                op: SBinOp::Add,
                l: Box::new(l),
                r: Box::new(r),
            }
        }
        let n = 8i64;
        let mut interner = Interner::new();
        let a = interner.intern("a");
        let i = interner.intern("i");
        let t = interner.intern("t");
        let z = interner.intern("z");
        let v = interner.intern("v");
        let sub = interner.intern("addone");
        let main = interner.intern("main");
        let dist = ArrayDist::new(
            &[n],
            &Alignment::identity(1),
            &[n],
            &Distribution {
                kinds: vec![DistKind::Block],
                nprocs: p,
            },
        );
        let lb = n / p as i64;
        let callee = SProc {
            name: sub,
            formals: vec![
                SFormal {
                    name: z,
                    is_array: true,
                },
                SFormal {
                    name: v,
                    is_array: false,
                },
            ],
            decls: vec![],
            body: vec![
                SStmt::Assign {
                    lhs: SLval::Elem {
                        array: z,
                        subs: vec![SExpr::Int(1)],
                    },
                    rhs: SExpr::Bin {
                        op: SBinOp::Add,
                        l: Box::new(SExpr::Elem {
                            array: z,
                            subs: vec![SExpr::Int(1)],
                        }),
                        r: Box::new(SExpr::Var(v)),
                    },
                },
                SStmt::Assign {
                    lhs: SLval::Scalar(v),
                    rhs: add(SExpr::Var(v), SExpr::Real(0.5)),
                },
            ],
        };
        let body = vec![
            SStmt::Do {
                var: i,
                lo: SExpr::Int(1),
                hi: SExpr::Int(lb),
                step: 1,
                body: vec![SStmt::Assign {
                    lhs: SLval::Elem {
                        array: a,
                        subs: vec![SExpr::Var(i)],
                    },
                    rhs: add(
                        SExpr::Elem {
                            array: a,
                            subs: vec![SExpr::Var(i)],
                        },
                        SExpr::Bin {
                            op: SBinOp::Mul,
                            l: Box::new(SExpr::MyP),
                            r: Box::new(SExpr::Real(0.25)),
                        },
                    ),
                }],
            },
            SStmt::If {
                cond: SExpr::Bin {
                    op: SBinOp::Eq,
                    l: Box::new(SExpr::MyP),
                    r: Box::new(SExpr::Int(0)),
                },
                then_body: vec![SStmt::Send {
                    to: SExpr::Int(1),
                    tag: 7,
                    array: a,
                    section: SRect {
                        dims: vec![(SExpr::Int(lb), SExpr::Int(lb), 1)],
                    },
                }],
                else_body: vec![],
            },
            SStmt::If {
                cond: SExpr::Bin {
                    op: SBinOp::Eq,
                    l: Box::new(SExpr::MyP),
                    r: Box::new(SExpr::Int(1)),
                },
                then_body: vec![SStmt::Recv {
                    from: SExpr::Int(0),
                    tag: 7,
                    array: a,
                    section: SRect {
                        dims: vec![(SExpr::Int(1), SExpr::Int(1), 1)],
                    },
                }],
                else_body: vec![],
            },
            SStmt::Assign {
                lhs: SLval::Scalar(t),
                rhs: SExpr::Int(3),
            },
            SStmt::BcastScalar {
                root: SExpr::Int(0),
                var: t,
            },
            SStmt::Call {
                proc: 1,
                args: vec![SActual::Array(a), SActual::Scalar(SExpr::Real(2.5))],
                copy_out: vec![(v, t)],
            },
            SStmt::Print {
                args: vec![
                    SExpr::Var(t),
                    SExpr::Elem {
                        array: a,
                        subs: vec![SExpr::Int(1)],
                    },
                ],
            },
        ];
        SpmdProgram {
            interner,
            nprocs: p,
            procs: vec![
                SProc {
                    name: main,
                    formals: vec![],
                    decls: vec![SDecl {
                        name: a,
                        bounds: vec![(1, lb)],
                        dist: DistId(0),
                        owner_dist: None,
                    }],
                    body,
                },
                callee,
            ],
            main: 0,
            dists: vec![dist],
        }
    }

    #[test]
    fn emission_is_deterministic() {
        let prog = sample(2);
        let first = emit(&prog);
        let second = emit(&prog);
        assert_eq!(first, second, "re-emission must be byte-identical");
        assert!(first.contains("fn main()"));
        assert!(first.contains("shim::drive(2usize"));
    }

    #[test]
    fn emitted_source_names_are_stable_across_clones() {
        let prog = sample(4);
        assert_eq!(emit(&prog), emit(&prog.clone()));
    }

    #[test]
    fn native_matches_bytecode_on_sample() {
        if !rustc_available() {
            eprintln!("skipping: no rustc toolchain");
            return;
        }
        let p = 2;
        let prog = sample(p);
        let a = prog.interner.get("a").unwrap();
        let mut init = BTreeMap::new();
        init.insert(a, (0..8).map(|i| i as f64 * 0.5).collect::<Vec<f64>>());
        let machine = Machine::new(p);
        let sim = try_run_spmd(&prog, &machine, &init, &ExecOptions::new()).unwrap();
        let nat = try_run_spmd(
            &prog,
            &machine,
            &init,
            &ExecOptions::new().backend(Native {
                opt_level: 0,
                keep_artifacts: false,
            }),
        )
        .unwrap();
        assert_eq!(sim.printed, nat.printed);
        assert_eq!(sim.stats.total_msgs, nat.stats.total_msgs);
        assert_eq!(sim.stats.total_bytes, nat.stats.total_bytes);
        assert_eq!(sim.stats.msg_hist, nat.stats.msg_hist);
        assert_eq!(sim.stats.msgs_by_tag, nat.stats.msgs_by_tag);
        let (sa, na) = (&sim.arrays[&a], &nat.arrays[&a]);
        assert_eq!(sa.len(), na.len());
        for (x, y) in sa.iter().zip(na) {
            assert_eq!(x.to_bits(), y.to_bits(), "arrays must match bit for bit");
        }
        assert!(nat.artifact.is_none());
    }

    #[test]
    fn keep_artifacts_returns_build_dir() {
        if !rustc_available() {
            eprintln!("skipping: no rustc toolchain");
            return;
        }
        let prog = sample(2);
        let machine = Machine::new(2);
        let out = try_run_spmd(
            &prog,
            &machine,
            &BTreeMap::new(),
            &ExecOptions::new().backend(Native {
                opt_level: 0,
                keep_artifacts: true,
            }),
        )
        .unwrap();
        let dir = out.artifact.expect("artifact dir");
        assert!(dir.join("prog.rs").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
