//! Pretty-prints a compiled [`SpmdProgram`] as a standalone Rust node
//! program linked against the `fortrand-shim` runtime crate.
//!
//! The emitted program is the *same* SPMD computation the simulators run:
//! one `fn p{i}_{name}` per procedure (parameterized by the per-rank
//! execution context), RSD loops as plain counted `while` loops, and
//! every communication statement as a call into the shim's channel /
//! collective fabric. Semantics deliberately mirror the tree-walker
//! statement for statement (evaluation order, uninitialized-scalar
//! defaults, root-only section gathers, rank-0-only print evaluation) so
//! the native run is bit-identical to the simulated one.
//!
//! Emission is **deterministic**: it iterates only over `Vec`s and
//! `BTree` collections, so the same program always prints to the same
//! bytes (asserted by a unit test in [`super`]). Names embed the interned
//! symbol id (`s_x_3`, `a_a_0`) so distinct symbols never collide after
//! sanitization.

use super::types::{ScalarTypes, Ty};
use crate::ir::*;
use fortrand_ir::Sym;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// Renders `prog` as the complete source of a node program.
pub(crate) fn emit_program(prog: &SpmdProgram) -> String {
    let mut e = Emitter {
        prog,
        types: ScalarTypes::infer(prog),
        copy_outs: collect_copy_outs(prog),
        out: String::new(),
        indent: 0,
        tmp: 0,
        cur: 0,
        rebound: BTreeMap::new(),
    };
    e.emit();
    e.out
}

/// Per-procedure sorted union of copy-out source symbols over all call
/// sites in the program: the callee returns exactly these scalars (as a
/// tuple) so any caller can pick the ones its own `copy_out` list names.
fn collect_copy_outs(prog: &SpmdProgram) -> Vec<Vec<Sym>> {
    let mut sets: Vec<BTreeSet<Sym>> = vec![BTreeSet::new(); prog.procs.len()];
    fn walk(body: &[SStmt], sets: &mut [BTreeSet<Sym>]) {
        for s in body {
            match s {
                SStmt::Call { proc, copy_out, .. } => {
                    for (f, _) in copy_out {
                        sets[*proc].insert(*f);
                    }
                }
                SStmt::Do { body, .. } => walk(body, sets),
                SStmt::If {
                    then_body,
                    else_body,
                    ..
                } => {
                    walk(then_body, sets);
                    walk(else_body, sets);
                }
                _ => {}
            }
        }
    }
    for p in &prog.procs {
        walk(&p.body, &mut sets);
    }
    sets.into_iter().map(|s| s.into_iter().collect()).collect()
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// `f64` literal that reparses to the exact same bits.
fn flit(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}_f64")
    } else {
        format!("f64::from_bits(0x{:016x}u64)", v.to_bits())
    }
}

struct Emitter<'a> {
    prog: &'a SpmdProgram,
    types: ScalarTypes,
    copy_outs: Vec<Vec<Sym>>,
    out: String,
    indent: usize,
    tmp: u32,
    /// Index of the procedure currently being emitted.
    cur: usize,
    /// Arrays localized out of the heap by the enclosing DO loop (see
    /// [`localizable`]): element access goes through these named `Arr`
    /// locals instead of `h`, so the optimizer sees non-aliasing bases
    /// and can hoist bounds and data pointers out of the hot loop.
    rebound: BTreeMap<Sym, String>,
}

/// Whether a DO-loop nest is pure rank-local compute — only assignments,
/// nested loops and conditionals, no calls, no communication, and no
/// `CurOwner` queries (those read heap metadata, which a localized array
/// has left behind). Such nests are safe to run with their arrays taken
/// out of the heap into locals.
fn localizable(body: &[SStmt]) -> bool {
    body.iter().all(|s| match s {
        SStmt::Comment(_) => true,
        SStmt::Assign { lhs, rhs } => {
            let lv = match lhs {
                SLval::Scalar(_) => false,
                SLval::Elem { subs, .. } => subs.iter().any(expr_has_curowner),
            };
            !lv && !expr_has_curowner(rhs)
        }
        SStmt::Do { lo, hi, body, .. } => {
            !expr_has_curowner(lo) && !expr_has_curowner(hi) && localizable(body)
        }
        SStmt::If {
            cond,
            then_body,
            else_body,
        } => !expr_has_curowner(cond) && localizable(then_body) && localizable(else_body),
        _ => false,
    })
}

fn expr_has_curowner(e: &SExpr) -> bool {
    match e {
        SExpr::CurOwner { .. } => true,
        SExpr::Bin { l, r, .. } => expr_has_curowner(l) || expr_has_curowner(r),
        SExpr::Neg(x) | SExpr::Not(x) => expr_has_curowner(x),
        SExpr::Intr { args, .. } => args.iter().any(expr_has_curowner),
        SExpr::Elem { subs, .. } | SExpr::Owner { subs, .. } => subs.iter().any(expr_has_curowner),
        SExpr::LocalIdx { sub, .. } => expr_has_curowner(sub),
        _ => false,
    }
}

/// Every array referenced (read or written) anywhere in a loop nest.
fn nest_arrays(body: &[SStmt], out: &mut BTreeSet<Sym>) {
    fn in_expr(e: &SExpr, out: &mut BTreeSet<Sym>) {
        match e {
            SExpr::Elem { array, subs } => {
                out.insert(*array);
                subs.iter().for_each(|s| in_expr(s, out));
            }
            SExpr::Bin { l, r, .. } => {
                in_expr(l, out);
                in_expr(r, out);
            }
            SExpr::Neg(x) | SExpr::Not(x) => in_expr(x, out),
            SExpr::Intr { args, .. } => args.iter().for_each(|a| in_expr(a, out)),
            SExpr::Owner { subs, .. } | SExpr::CurOwner { subs, .. } => {
                subs.iter().for_each(|s| in_expr(s, out));
            }
            SExpr::LocalIdx { sub, .. } => in_expr(sub, out),
            _ => {}
        }
    }
    for s in body {
        match s {
            SStmt::Assign { lhs, rhs } => {
                if let SLval::Elem { array, subs } = lhs {
                    out.insert(*array);
                    subs.iter().for_each(|x| in_expr(x, out));
                }
                in_expr(rhs, out);
            }
            SStmt::Do { lo, hi, body, .. } => {
                in_expr(lo, out);
                in_expr(hi, out);
                nest_arrays(body, out);
            }
            SStmt::If {
                cond,
                then_body,
                else_body,
            } => {
                in_expr(cond, out);
                nest_arrays(then_body, out);
                nest_arrays(else_body, out);
            }
            _ => {}
        }
    }
}

impl<'a> Emitter<'a> {
    // -- output plumbing ----------------------------------------------------

    fn w(&mut self, line: &str) {
        for _ in 0..self.indent {
            self.out.push_str("    ");
        }
        self.out.push_str(line);
        self.out.push('\n');
    }

    fn fresh(&mut self) -> u32 {
        self.tmp += 1;
        self.tmp
    }

    // -- names --------------------------------------------------------------

    fn sname(&self, s: Sym) -> String {
        format!("s_{}_{}", sanitize(self.prog.interner.name(s)), s.0)
    }

    fn aname(&self, s: Sym) -> String {
        format!("a_{}_{}", sanitize(self.prog.interner.name(s)), s.0)
    }

    fn pname(&self, idx: usize) -> String {
        let p = &self.prog.procs[idx];
        format!("p{}_{}", idx, sanitize(self.prog.interner.name(p.name)))
    }

    fn ty_of(&self, s: Sym) -> Ty {
        self.types.ty_of(self.cur, s)
    }

    fn rust_ty(t: Ty) -> &'static str {
        match t {
            Ty::I => "i64",
            Ty::R => "f64",
            Ty::V => "shim::Val",
        }
    }

    fn zero(t: Ty) -> &'static str {
        match t {
            Ty::I => "0i64",
            Ty::R => "0.0f64",
            Ty::V => "shim::Val::I(0i64)",
        }
    }

    /// Copy-out tuple expression of procedure `idx` (its current scalar
    /// values), and the matching tuple type.
    fn ret_expr(&self, idx: usize) -> String {
        if self.copy_outs[idx].is_empty() {
            "()".to_string()
        } else {
            let mut s = String::from("(");
            for sym in &self.copy_outs[idx] {
                let _ = write!(s, "{}, ", self.sname(*sym));
            }
            s.push(')');
            s
        }
    }

    fn ret_ty(&self, idx: usize) -> String {
        if self.copy_outs[idx].is_empty() {
            "()".to_string()
        } else {
            let mut s = String::from("(");
            for sym in &self.copy_outs[idx] {
                let _ = write!(s, "{}, ", Self::rust_ty(self.types.ty_of(idx, *sym)));
            }
            s.push(')');
            s
        }
    }

    // -- expressions --------------------------------------------------------

    fn coerce(s: String, from: Ty, to: Ty) -> String {
        match (from, to) {
            (a, b) if a == b => s,
            (Ty::I, Ty::R) => format!("(({s}) as f64)"),
            (Ty::R, Ty::I) => format!("(({s}) as i64)"),
            (Ty::I, Ty::V) => format!("shim::Val::I({s})"),
            (Ty::R, Ty::V) => format!("shim::Val::R({s})"),
            (Ty::V, Ty::I) => format!("({s}).as_i()"),
            (Ty::V, Ty::R) => format!("({s}).as_r()"),
            _ => unreachable!(),
        }
    }

    /// Emits `e` coerced to `i64`.
    fn ei(&self, e: &SExpr) -> String {
        let (s, t) = self.expr(e);
        Self::coerce(s, t, Ty::I)
    }

    /// Emits `e` coerced to `f64`.
    fn er(&self, e: &SExpr) -> String {
        let (s, t) = self.expr(e);
        Self::coerce(s, t, Ty::R)
    }

    /// `&[i64]` subscript list (left-to-right evaluation, like the
    /// interpreter's per-subscript `eval`).
    fn subs(&self, subs: &[SExpr]) -> String {
        let items: Vec<String> = subs.iter().map(|s| self.ei(s)).collect();
        format!("&[{}]", items.join(", "))
    }

    /// `Vec<(i64, i64, i64)>` section triplets; each dimension's lo/hi
    /// evaluated in order, like `rect_points`.
    fn rect(&self, r: &SRect) -> String {
        let items: Vec<String> = r
            .dims
            .iter()
            .map(|(lo, hi, step)| format!("({}, {}, {step}i64)", self.ei(lo), self.ei(hi)))
            .collect();
        format!("vec![{}]", items.join(", "))
    }

    fn truthy(&self, e: &SExpr) -> String {
        let (s, t) = self.expr(e);
        match t {
            Ty::I => format!("(({s}) != 0i64)"),
            Ty::R => format!("((({s}) as i64) != 0i64)"),
            Ty::V => format!("({s}).truthy()"),
        }
    }

    fn expr(&self, e: &SExpr) -> (String, Ty) {
        match e {
            SExpr::Int(v) => (format!("({v}i64)"), Ty::I),
            SExpr::Real(v) => (format!("({})", flit(*v)), Ty::R),
            SExpr::Var(s) => (self.sname(*s), self.ty_of(*s)),
            SExpr::MyP => ("(cx.rank() as i64)".to_string(), Ty::I),
            SExpr::NProcs => ("(cx.nprocs() as i64)".to_string(), Ty::I),
            SExpr::Elem { array, subs } => {
                let ss = self.subs(subs);
                let s = match self.rebound.get(array) {
                    Some(local) => format!("{local}.get({ss})"),
                    None => format!("h.get({}, {ss})", self.aname(*array)),
                };
                (s, Ty::R)
            }
            SExpr::Bin { op, l, r } => self.bin(*op, l, r),
            SExpr::Neg(x) => {
                let (s, t) = self.expr(x);
                match t {
                    Ty::I | Ty::R => (format!("(-({s}))"), t),
                    Ty::V => (format!("shim::neg({s})"), Ty::V),
                }
            }
            SExpr::Not(x) => (format!("((({}) == 0i64) as i64)", self.ei(x)), Ty::I),
            SExpr::Intr { name, args } => self.intr(*name, args),
            SExpr::Owner { dist, subs } => (
                format!("(d[{}usize].owner_of({}) as i64)", dist.0, self.subs(subs)),
                Ty::I,
            ),
            SExpr::CurOwner { array, subs } => (
                format!(
                    "(d[h.cur_dist({}) as usize].owner_of({}) as i64)",
                    self.aname(*array),
                    self.subs(subs)
                ),
                Ty::I,
            ),
            SExpr::LocalIdx { dist, dim, sub } => (
                format!(
                    "d[{}usize].local_idx({}usize, {})",
                    dist.0,
                    dim,
                    self.ei(sub)
                ),
                Ty::I,
            ),
        }
    }

    fn bin(&self, op: SBinOp, l: &SExpr, r: &SExpr) -> (String, Ty) {
        let (ls, lt) = self.expr(l);
        let (rs, rt) = self.expr(r);
        // A dynamically typed operand forces the runtime's dispatch so the
        // I/R promotion decision happens exactly where the simulator makes
        // it.
        if lt == Ty::V || rt == Ty::V {
            let lv = Self::coerce(ls, lt, Ty::V);
            let rv = Self::coerce(rs, rt, Ty::V);
            return (format!("shim::bin(shim::BinOp::{op:?}, {lv}, {rv})"), Ty::V);
        }
        let both_i = lt == Ty::I && rt == Ty::I;
        match op {
            SBinOp::Add | SBinOp::Sub | SBinOp::Mul | SBinOp::Div => {
                let sym = match op {
                    SBinOp::Add => "+",
                    SBinOp::Sub => "-",
                    SBinOp::Mul => "*",
                    _ => "/",
                };
                if both_i {
                    (format!("(({ls}) {sym} ({rs}))"), Ty::I)
                } else {
                    let lf = Self::coerce(ls, lt, Ty::R);
                    let rf = Self::coerce(rs, rt, Ty::R);
                    (format!("(({lf}) {sym} ({rf}))"), Ty::R)
                }
            }
            SBinOp::Pow => {
                if both_i {
                    (format!("shim::ipow({ls}, {rs})"), Ty::I)
                } else {
                    let lf = Self::coerce(ls, lt, Ty::R);
                    let rf = Self::coerce(rs, rt, Ty::R);
                    (format!("(({lf}).powf({rf}))"), Ty::R)
                }
            }
            SBinOp::Lt | SBinOp::Le | SBinOp::Gt | SBinOp::Ge | SBinOp::Eq | SBinOp::Ne => {
                let sym = match op {
                    SBinOp::Lt => "<",
                    SBinOp::Le => "<=",
                    SBinOp::Gt => ">",
                    SBinOp::Ge => ">=",
                    SBinOp::Eq => "==",
                    _ => "!=",
                };
                if both_i {
                    (format!("(((({ls}) {sym} ({rs}))) as i64)"), Ty::I)
                } else {
                    let lf = Self::coerce(ls, lt, Ty::R);
                    let rf = Self::coerce(rs, rt, Ty::R);
                    (format!("(((({lf}) {sym} ({rf}))) as i64)"), Ty::I)
                }
            }
            SBinOp::And | SBinOp::Or => {
                // Both operands are (already) evaluated — `&`/`|`, not the
                // short-circuit forms, to match the simulator.
                let li = Self::coerce(ls, lt, Ty::I);
                let ri = Self::coerce(rs, rt, Ty::I);
                let sym = if op == SBinOp::And { "&" } else { "|" };
                (
                    format!("(((({li}) != 0i64) {sym} (({ri}) != 0i64)) as i64)"),
                    Ty::I,
                )
            }
        }
    }

    fn intr(&self, name: SIntr, args: &[SExpr]) -> (String, Ty) {
        let typed: Vec<(String, Ty)> = args.iter().map(|a| self.expr(a)).collect();
        let any_v = typed.iter().any(|(_, t)| *t == Ty::V);
        let all_i = typed.iter().all(|(_, t)| *t == Ty::I);
        match name {
            SIntr::Abs => {
                let (s, t) = typed.into_iter().next().unwrap();
                match t {
                    Ty::I | Ty::R => (format!("({s}).abs()"), t),
                    Ty::V => (format!("shim::intr(shim::Intr::Abs, &[{s}])"), Ty::V),
                }
            }
            SIntr::Min | SIntr::Max if any_v => {
                let vals: Vec<String> = typed
                    .into_iter()
                    .map(|(s, t)| Self::coerce(s, t, Ty::V))
                    .collect();
                (
                    format!("shim::intr(shim::Intr::{name:?}, &[{}])", vals.join(", ")),
                    Ty::V,
                )
            }
            SIntr::Min | SIntr::Max if all_i => {
                let f = if name == SIntr::Min {
                    "std::cmp::min"
                } else {
                    "std::cmp::max"
                };
                let mut it = typed.into_iter();
                let mut acc = it.next().unwrap().0;
                for (s, _) in it {
                    acc = format!("{f}({acc}, {s})");
                }
                (acc, Ty::I)
            }
            SIntr::Min | SIntr::Max => {
                let f = if name == SIntr::Min {
                    "shim::fmin"
                } else {
                    "shim::fmax"
                };
                let vals: Vec<String> = typed
                    .into_iter()
                    .map(|(s, t)| Self::coerce(s, t, Ty::R))
                    .collect();
                (format!("{f}(&[{}])", vals.join(", ")), Ty::R)
            }
            SIntr::Mod if any_v => {
                let vals: Vec<String> = typed
                    .into_iter()
                    .map(|(s, t)| Self::coerce(s, t, Ty::V))
                    .collect();
                (
                    format!("shim::intr(shim::Intr::Mod, &[{}])", vals.join(", ")),
                    Ty::V,
                )
            }
            SIntr::Mod if all_i => {
                let (a, b) = (&typed[0].0, &typed[1].0);
                (format!("(({a}) % ({b}))"), Ty::I)
            }
            SIntr::Mod => {
                let a = Self::coerce(typed[0].0.clone(), typed[0].1, Ty::R);
                let b = Self::coerce(typed[1].0.clone(), typed[1].1, Ty::R);
                (format!("(({a}) % ({b}))"), Ty::R)
            }
            SIntr::Sqrt => {
                let a = Self::coerce(typed[0].0.clone(), typed[0].1, Ty::R);
                (format!("({a}).sqrt()"), Ty::R)
            }
            SIntr::Sign => {
                let a = Self::coerce(typed[0].0.clone(), typed[0].1, Ty::R);
                let b = Self::coerce(typed[1].0.clone(), typed[1].1, Ty::R);
                (format!("shim::fsign({a}, {b})"), Ty::R)
            }
        }
    }

    // -- statements ---------------------------------------------------------

    fn emit_body(&mut self, body: &[SStmt]) {
        for s in body {
            self.emit_stmt(s);
        }
    }

    /// The counted `while` of a DO loop over the already-emitted
    /// `lo_t{n}`/`hi_t{n}`/`i_t{n}` bindings. Factored out because a
    /// localized loop emits it twice (fast path and aliased fallback).
    fn counted_loop(&mut self, n: u32, var: Sym, step: i64, body: &[SStmt]) {
        let cmp = if step > 0 { "<=" } else { ">=" };
        self.w(&format!("while i_t{n} {cmp} hi_t{n} {{"));
        self.indent += 1;
        let t = self.ty_of(var);
        let name = self.sname(var);
        self.w(&format!(
            "{name} = {};",
            Self::coerce(format!("i_t{n}"), Ty::I, t)
        ));
        self.emit_body(body);
        self.w(&format!("i_t{n} += {step}i64;"));
        self.indent -= 1;
        self.w("}");
    }

    fn emit_stmt(&mut self, s: &SStmt) {
        match s {
            SStmt::Comment(text) => {
                let one = text.replace(['\n', '\r'], " ");
                self.w(&format!("// {one}"));
            }
            SStmt::Assign { lhs, rhs } => match lhs {
                SLval::Scalar(v) => {
                    let t = self.ty_of(*v);
                    let (rs, rt) = self.expr(rhs);
                    let name = self.sname(*v);
                    self.w(&format!("{name} = {};", Self::coerce(rs, rt, t)));
                }
                SLval::Elem { array, subs } => {
                    // rhs first, then lhs subscripts (interpreter order).
                    let n = self.fresh();
                    let rs = self.er(rhs);
                    let ss = self.subs(subs);
                    let set = match self.rebound.get(array) {
                        Some(local) => format!("{local}.set({ss}, v_t{n});"),
                        None => format!("h.set({}, {ss}, v_t{n});", self.aname(*array)),
                    };
                    self.w("{");
                    self.indent += 1;
                    self.w(&format!("let v_t{n}: f64 = {rs};"));
                    self.w(&set);
                    self.indent -= 1;
                    self.w("}");
                }
            },
            SStmt::Do {
                var,
                lo,
                hi,
                step,
                body,
            } => {
                let n = self.fresh();
                let (lo_s, hi_s) = (self.ei(lo), self.ei(hi));
                self.w(&format!("assert!({step}i64 != 0i64, \"zero DO step\");"));
                self.w(&format!("let lo_t{n}: i64 = {lo_s};"));
                self.w(&format!("let hi_t{n}: i64 = {hi_s};"));
                if *step == 0 {
                    return;
                }
                self.w(&format!("let mut i_t{n}: i64 = lo_t{n};"));
                // Localize the nest's arrays into `Arr` locals when the
                // body is pure compute: through-the-heap access defeats
                // alias analysis, so without this every element access
                // reloads the array base and bounds.
                let arrays: Vec<Sym> = if self.rebound.is_empty() && localizable(body) {
                    let mut set = BTreeSet::new();
                    nest_arrays(body, &mut set);
                    set.into_iter().collect()
                } else {
                    Vec::new()
                };
                if arrays.is_empty() {
                    self.counted_loop(n, *var, *step, body);
                    return;
                }
                let ids: Vec<String> = arrays.iter().map(|a| self.aname(*a)).collect();
                // Distinct formals can still name the same heap slot at
                // run time; taking one slot twice would hand the loop an
                // empty placeholder, so such calls use the generic path.
                let guarded = arrays.len() > 1;
                if guarded {
                    self.w(&format!("if shim::all_distinct(&[{}]) {{", ids.join(", ")));
                    self.indent += 1;
                }
                for (k, (a, id)) in arrays.iter().zip(&ids).enumerate() {
                    let local = format!("la_t{n}_{k}");
                    self.w(&format!(
                        "let mut {local} = std::mem::take(&mut h.arrs[{id}]);"
                    ));
                    self.rebound.insert(*a, local);
                }
                self.counted_loop(n, *var, *step, body);
                for (k, (a, id)) in arrays.iter().zip(&ids).enumerate() {
                    self.w(&format!("h.arrs[{id}] = la_t{n}_{k};"));
                    self.rebound.remove(a);
                }
                if guarded {
                    self.indent -= 1;
                    self.w("} else {");
                    self.indent += 1;
                    self.counted_loop(n, *var, *step, body);
                    self.indent -= 1;
                    self.w("}");
                }
            }
            SStmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let c = self.truthy(cond);
                self.w(&format!("if {c} {{"));
                self.indent += 1;
                self.emit_body(then_body);
                self.indent -= 1;
                if else_body.is_empty() {
                    self.w("}");
                } else {
                    self.w("} else {");
                    self.indent += 1;
                    self.emit_body(else_body);
                    self.indent -= 1;
                    self.w("}");
                }
            }
            SStmt::Call {
                proc,
                args,
                copy_out,
            } => {
                let n = self.fresh();
                let callee = &self.prog.procs[*proc];
                let mut actuals: Vec<String> = Vec::new();
                for (f, a) in callee.formals.iter().zip(args) {
                    match (f.is_array, a) {
                        (true, SActual::Array(name)) => actuals.push(self.aname(*name)),
                        (false, SActual::Scalar(e)) => {
                            let formal_ty = self.types.ty_of(*proc, f.name);
                            let (es, et) = self.expr(e);
                            actuals.push(Self::coerce(es, et, formal_ty));
                        }
                        _ => panic!("actual/formal kind mismatch"),
                    }
                }
                let call = format!(
                    "let (fl_t{n}, co_t{n}) = {}(cx, h, d{}{});",
                    self.pname(*proc),
                    if actuals.is_empty() { "" } else { ", " },
                    actuals.join(", ")
                );
                self.w(&format!("let mark_t{n} = h.arrs.len();"));
                self.w(&call);
                self.w(&format!("h.arrs.truncate(mark_t{n});"));
                // Copy-out happens regardless of flow (interpreter order:
                // the frame pops and copies before Stop propagates).
                for (f, caller_var) in copy_out {
                    let pos = self.copy_outs[*proc]
                        .iter()
                        .position(|s| s == f)
                        .expect("copy-out source not in callee tuple");
                    let callee_ty = self.types.ty_of(*proc, *f);
                    let caller_ty = self.ty_of(*caller_var);
                    let name = self.sname(*caller_var);
                    self.w(&format!(
                        "{name} = {};",
                        Self::coerce(format!("co_t{n}.{pos}"), callee_ty, caller_ty)
                    ));
                }
                let ret = self.ret_expr(self.cur);
                self.w(&format!(
                    "if let shim::Flow::Stop = fl_t{n} {{ return (shim::Flow::Stop, {ret}); }}"
                ));
            }
            SStmt::Return => {
                let ret = self.ret_expr(self.cur);
                self.w(&format!("return (shim::Flow::Normal, {ret});"));
            }
            SStmt::Stop => {
                let ret = self.ret_expr(self.cur);
                self.w(&format!("return (shim::Flow::Stop, {ret});"));
            }
            SStmt::Send {
                to,
                tag,
                array,
                section,
            } => {
                let n = self.fresh();
                let to_s = self.ei(to);
                let dims = self.rect(section);
                let arr = self.aname(*array);
                self.w("{");
                self.indent += 1;
                self.w(&format!("let dst_t{n}: i64 = {to_s};"));
                self.w(&format!(
                    "assert!(dst_t{n} >= 0, \"negative send destination\");"
                ));
                self.w(&format!("let dims_t{n}: Vec<(i64, i64, i64)> = {dims};"));
                self.w(&format!("let buf_t{n} = h.gather({arr}, &dims_t{n});"));
                self.w(&format!("cx.send(dst_t{n} as usize, {tag}u64, buf_t{n});"));
                self.indent -= 1;
                self.w("}");
            }
            SStmt::Recv {
                from,
                tag,
                array,
                section,
            } => {
                let n = self.fresh();
                let from_s = self.ei(from);
                let dims = self.rect(section);
                let arr = self.aname(*array);
                self.w("{");
                self.indent += 1;
                self.w(&format!("let src_t{n}: i64 = {from_s};"));
                self.w(&format!(
                    "assert!(src_t{n} >= 0, \"negative recv source\");"
                ));
                self.w(&format!(
                    "let buf_t{n} = cx.recv(src_t{n} as usize, {tag}u64);"
                ));
                // Section dimensions evaluate *after* the receive.
                self.w(&format!("let dims_t{n}: Vec<(i64, i64, i64)> = {dims};"));
                self.w(&format!("h.scatter({arr}, &dims_t{n}, &buf_t{n});"));
                self.indent -= 1;
                self.w("}");
            }
            SStmt::SendElem { to, tag, value } => {
                let n = self.fresh();
                let to_s = self.ei(to);
                let v = self.er(value);
                self.w("{");
                self.indent += 1;
                self.w(&format!("let dst_t{n}: i64 = {to_s};"));
                self.w(&format!("let v_t{n}: f64 = {v};"));
                self.w(&format!(
                    "cx.send(dst_t{n} as usize, {tag}u64, vec![v_t{n}]);"
                ));
                self.indent -= 1;
                self.w("}");
            }
            SStmt::RecvElem { from, tag, lhs } => {
                let n = self.fresh();
                let from_s = self.ei(from);
                self.w("{");
                self.indent += 1;
                self.w(&format!("let src_t{n}: i64 = {from_s};"));
                self.w(&format!(
                    "let buf_t{n} = cx.recv(src_t{n} as usize, {tag}u64);"
                ));
                match lhs {
                    SLval::Scalar(v) => {
                        let t = self.ty_of(*v);
                        let name = self.sname(*v);
                        self.w(&format!(
                            "{name} = {};",
                            Self::coerce(format!("buf_t{n}[0]"), Ty::R, t)
                        ));
                    }
                    SLval::Elem { array, subs } => {
                        let set = format!(
                            "h.set({}, {}, buf_t{n}[0]);",
                            self.aname(*array),
                            self.subs(subs)
                        );
                        self.w(&set);
                    }
                }
                self.indent -= 1;
                self.w("}");
            }
            SStmt::Bcast {
                root,
                src_array,
                src_section,
                dst_array,
                dst_section,
            } => {
                let n = self.fresh();
                let root_s = self.ei(root);
                let gather = format!(
                    "Some(h.gather({}, &{}))",
                    self.aname(*src_array),
                    self.rect(src_section)
                );
                let ddims = self.rect(dst_section);
                let darr = self.aname(*dst_array);
                self.w("{");
                self.indent += 1;
                self.w(&format!("let root_t{n}: usize = ({root_s}) as usize;"));
                // Source section dimensions evaluate on the root only.
                self.w(&format!(
                    "let data_t{n} = if cx.rank() == root_t{n} {{ {gather} }} else {{ None }};"
                ));
                self.w(&format!(
                    "let buf_t{n} = cx.bcast(root_t{n}, data_t{n}, shim::TAG_BCAST);"
                ));
                self.w(&format!("let dims_t{n}: Vec<(i64, i64, i64)> = {ddims};"));
                self.w(&format!("h.scatter({darr}, &dims_t{n}, &buf_t{n});"));
                self.indent -= 1;
                self.w("}");
            }
            SStmt::BcastScalar { root, var } => {
                let n = self.fresh();
                let root_s = self.ei(root);
                let t = self.ty_of(*var);
                let name = self.sname(*var);
                let payload = Self::coerce(name.clone(), t, Ty::R);
                self.w("{");
                self.indent += 1;
                self.w(&format!("let root_t{n}: usize = ({root_s}) as usize;"));
                self.w(&format!(
                    "let data_t{n} = if cx.rank() == root_t{n} {{ Some(vec![{payload}]) }} else {{ None }};"
                ));
                self.w(&format!(
                    "let buf_t{n} = cx.bcast(root_t{n}, data_t{n}, shim::TAG_BCAST);"
                ));
                // The wire re-integerizes exact values (pivot indices).
                self.w(&format!(
                    "{name} = {};",
                    Self::coerce(format!("shim::scalar_from_wire(buf_t{n}[0])"), Ty::V, t)
                ));
                self.indent -= 1;
                self.w("}");
            }
            SStmt::BcastPack { root, parts } => {
                let n = self.fresh();
                let root_s = self.ei(root);
                self.w("{");
                self.indent += 1;
                self.w(&format!("let root_t{n}: usize = ({root_s}) as usize;"));
                self.emit_pack(n, parts);
                self.w(&format!(
                    "let buf_t{n} = cx.bcast(root_t{n}, data_t{n}, shim::TAG_BCAST_PACK);"
                ));
                self.emit_unpack(n, parts);
                self.indent -= 1;
                self.w("}");
            }
            SStmt::PostSend {
                handle: _,
                to,
                tag,
                array,
                section,
            } => {
                let n = self.fresh();
                let to_s = self.ei(to);
                let dims = self.rect(section);
                let arr = self.aname(*array);
                self.w("{");
                self.indent += 1;
                self.w(&format!("let dst_t{n}: i64 = {to_s};"));
                self.w(&format!(
                    "assert!(dst_t{n} >= 0, \"negative send destination\");"
                ));
                self.w(&format!("let dims_t{n}: Vec<(i64, i64, i64)> = {dims};"));
                self.w(&format!("let buf_t{n} = h.gather({arr}, &dims_t{n});"));
                self.w(&format!(
                    "cx.post_send(dst_t{n} as usize, {tag}u64, buf_t{n});"
                ));
                self.indent -= 1;
                self.w("}");
            }
            SStmt::WaitSend { handle: _ } => {
                self.w("cx.wait_send();");
            }
            SStmt::PostRecv { handle, from, tag } => {
                let n = self.fresh();
                let from_s = self.ei(from);
                self.w("{");
                self.indent += 1;
                self.w(&format!("let src_t{n}: i64 = {from_s};"));
                self.w(&format!(
                    "assert!(src_t{n} >= 0, \"negative recv source\");"
                ));
                self.w(&format!(
                    "cx.post_recv({handle}u32, src_t{n} as usize, {tag}u64);"
                ));
                self.indent -= 1;
                self.w("}");
            }
            SStmt::WaitRecv {
                handle,
                array,
                section,
            } => {
                let n = self.fresh();
                let dims = self.rect(section);
                let arr = self.aname(*array);
                self.w("{");
                self.indent += 1;
                self.w(&format!("let buf_t{n} = cx.wait_recv({handle}u32);"));
                self.w(&format!("let dims_t{n}: Vec<(i64, i64, i64)> = {dims};"));
                self.w(&format!("h.scatter({arr}, &dims_t{n}, &buf_t{n});"));
                self.indent -= 1;
                self.w("}");
            }
            SStmt::PostBcast {
                handle,
                root,
                src_array,
                src_section,
            } => {
                let n = self.fresh();
                let root_s = self.ei(root);
                let gather = format!(
                    "Some(h.gather({}, &{}))",
                    self.aname(*src_array),
                    self.rect(src_section)
                );
                self.w("{");
                self.indent += 1;
                self.w(&format!("let root_t{n}: usize = ({root_s}) as usize;"));
                self.w(&format!(
                    "let data_t{n} = if cx.rank() == root_t{n} {{ {gather} }} else {{ None }};"
                ));
                self.w(&format!(
                    "cx.post_bcast({handle}u32, root_t{n}, data_t{n}, shim::TAG_BCAST);"
                ));
                self.indent -= 1;
                self.w("}");
            }
            SStmt::WaitBcast {
                handle,
                dst_array,
                dst_section,
            } => {
                let n = self.fresh();
                let ddims = self.rect(dst_section);
                let darr = self.aname(*dst_array);
                self.w("{");
                self.indent += 1;
                self.w(&format!("let buf_t{n} = cx.wait_bcast({handle}u32);"));
                self.w(&format!("let dims_t{n}: Vec<(i64, i64, i64)> = {ddims};"));
                self.w(&format!("h.scatter({darr}, &dims_t{n}, &buf_t{n});"));
                self.indent -= 1;
                self.w("}");
            }
            SStmt::PostBcastPack {
                handle,
                root,
                parts,
            } => {
                let n = self.fresh();
                let root_s = self.ei(root);
                self.w("{");
                self.indent += 1;
                self.w(&format!("let root_t{n}: usize = ({root_s}) as usize;"));
                self.emit_pack(n, parts);
                self.w(&format!(
                    "cx.post_bcast({handle}u32, root_t{n}, data_t{n}, shim::TAG_BCAST_PACK);"
                ));
                self.indent -= 1;
                self.w("}");
            }
            SStmt::WaitBcastPack { handle, parts } => {
                let n = self.fresh();
                self.w("{");
                self.indent += 1;
                self.w(&format!("let buf_t{n} = cx.wait_bcast({handle}u32);"));
                self.emit_unpack(n, parts);
                self.indent -= 1;
                self.w("}");
            }
            SStmt::Remap { array, to_dist } => {
                self.w(&format!(
                    "shim::remap(cx, h, {}, d, {}u32);",
                    self.aname(*array),
                    to_dist.0
                ));
            }
            SStmt::RemapGlobal { array, to_dist } => {
                self.w(&format!(
                    "shim::remap_global(cx, h, {}, d, {}u32);",
                    self.aname(*array),
                    to_dist.0
                ));
            }
            SStmt::MarkDist { array, to_dist } => {
                self.w(&format!(
                    "shim::mark_dist(h, {}, d, {}u32);",
                    self.aname(*array),
                    to_dist.0
                ));
            }
            SStmt::Print { args } => {
                let n = self.fresh();
                // Arguments evaluate on rank 0 only (interpreter order).
                self.w("if cx.rank() == 0 {");
                self.indent += 1;
                self.w(&format!("let mut parts_t{n}: Vec<String> = Vec::new();"));
                for a in args {
                    let (s, _) = self.expr(a);
                    self.w(&format!("parts_t{n}.push(format!(\"{{}}\", {s}));"));
                }
                self.w(&format!("cx.print(parts_t{n}.join(\" \"));"));
                self.indent -= 1;
                self.w("}");
            }
        }
    }

    /// Root-side packing of a coalesced broadcast: `data_t{n}` is
    /// `Some(buffer)` on the root (sections gathered, scalars pushed, in
    /// part order) and `None` elsewhere.
    fn emit_pack(&mut self, n: u32, parts: &[BcastPart]) {
        self.w(&format!("let data_t{n} = if cx.rank() == root_t{n} {{"));
        self.indent += 1;
        self.w(&format!("let mut pk_t{n}: Vec<f64> = Vec::new();"));
        for p in parts {
            match p {
                BcastPart::Section {
                    src_array,
                    src_section,
                    ..
                } => {
                    let g = format!(
                        "pk_t{n}.extend_from_slice(&h.gather({}, &{}));",
                        self.aname(*src_array),
                        self.rect(src_section)
                    );
                    self.w(&g);
                }
                BcastPart::Scalar(v) => {
                    let t = self.ty_of(*v);
                    let name = self.sname(*v);
                    self.w(&format!("pk_t{n}.push({});", Self::coerce(name, t, Ty::R)));
                }
            }
        }
        self.w(&format!("Some(pk_t{n})"));
        self.indent -= 1;
        self.w("} else { None };");
    }

    /// All-ranks unpacking of a coalesced broadcast from `buf_t{n}`, with
    /// a running offset cursor (sections first compute their rect length).
    fn emit_unpack(&mut self, n: u32, parts: &[BcastPart]) {
        self.w(&format!("let mut off_t{n}: usize = 0;"));
        for p in parts {
            match p {
                BcastPart::Section {
                    dst_array,
                    dst_section,
                    ..
                } => {
                    let dims = self.rect(dst_section);
                    let arr = self.aname(*dst_array);
                    self.w("{");
                    self.indent += 1;
                    self.w(&format!("let dims_t{n}: Vec<(i64, i64, i64)> = {dims};"));
                    self.w(&format!("let len_t{n} = shim::rect_len(&dims_t{n});"));
                    self.w(&format!(
                        "h.scatter({arr}, &dims_t{n}, &buf_t{n}[off_t{n}..off_t{n} + len_t{n}]);"
                    ));
                    self.w(&format!("off_t{n} += len_t{n};"));
                    self.indent -= 1;
                    self.w("}");
                }
                BcastPart::Scalar(v) => {
                    let t = self.ty_of(*v);
                    let name = self.sname(*v);
                    self.w(&format!(
                        "{name} = {};",
                        Self::coerce(
                            format!("shim::scalar_from_wire(buf_t{n}[off_t{n}])"),
                            Ty::V,
                            t
                        )
                    ));
                    self.w(&format!("off_t{n} += 1;"));
                }
            }
        }
    }

    // -- procedures ---------------------------------------------------------

    /// Every scalar symbol the procedure touches (reads included —
    /// uninitialized scalars still need a declaration, defaulting to the
    /// interpreter's `I(0)`).
    fn collect_scalars(&self, idx: usize) -> BTreeSet<Sym> {
        let mut out: BTreeSet<Sym> = BTreeSet::new();
        for s in &self.copy_outs[idx] {
            out.insert(*s);
        }
        fn expr_syms(e: &SExpr, out: &mut BTreeSet<Sym>) {
            match e {
                SExpr::Var(s) => {
                    out.insert(*s);
                }
                SExpr::Elem { subs, .. } | SExpr::Owner { subs, .. } => {
                    for s in subs {
                        expr_syms(s, out);
                    }
                }
                SExpr::CurOwner { subs, .. } => {
                    for s in subs {
                        expr_syms(s, out);
                    }
                }
                SExpr::Bin { l, r, .. } => {
                    expr_syms(l, out);
                    expr_syms(r, out);
                }
                SExpr::Neg(x) | SExpr::Not(x) => expr_syms(x, out),
                SExpr::Intr { args, .. } => {
                    for a in args {
                        expr_syms(a, out);
                    }
                }
                SExpr::LocalIdx { sub, .. } => expr_syms(sub, out),
                _ => {}
            }
        }
        fn rect_syms(r: &SRect, out: &mut BTreeSet<Sym>) {
            for (lo, hi, _) in &r.dims {
                expr_syms(lo, out);
                expr_syms(hi, out);
            }
        }
        fn lval_syms(l: &SLval, out: &mut BTreeSet<Sym>) {
            match l {
                SLval::Scalar(v) => {
                    out.insert(*v);
                }
                SLval::Elem { subs, .. } => {
                    for s in subs {
                        expr_syms(s, out);
                    }
                }
            }
        }
        fn part_syms(parts: &[BcastPart], out: &mut BTreeSet<Sym>) {
            for p in parts {
                match p {
                    BcastPart::Section {
                        src_section,
                        dst_section,
                        ..
                    } => {
                        rect_syms(src_section, out);
                        rect_syms(dst_section, out);
                    }
                    BcastPart::Scalar(v) => {
                        out.insert(*v);
                    }
                }
            }
        }
        fn walk(body: &[SStmt], out: &mut BTreeSet<Sym>) {
            for s in body {
                match s {
                    SStmt::Comment(_)
                    | SStmt::Return
                    | SStmt::Stop
                    | SStmt::WaitSend { .. }
                    | SStmt::Remap { .. }
                    | SStmt::RemapGlobal { .. }
                    | SStmt::MarkDist { .. } => {}
                    SStmt::Assign { lhs, rhs } => {
                        expr_syms(rhs, out);
                        lval_syms(lhs, out);
                    }
                    SStmt::Do {
                        var, lo, hi, body, ..
                    } => {
                        out.insert(*var);
                        expr_syms(lo, out);
                        expr_syms(hi, out);
                        walk(body, out);
                    }
                    SStmt::If {
                        cond,
                        then_body,
                        else_body,
                    } => {
                        expr_syms(cond, out);
                        walk(then_body, out);
                        walk(else_body, out);
                    }
                    SStmt::Call { args, copy_out, .. } => {
                        for a in args {
                            if let SActual::Scalar(e) = a {
                                expr_syms(e, out);
                            }
                        }
                        for (_, caller_var) in copy_out {
                            out.insert(*caller_var);
                        }
                    }
                    SStmt::Send { to, section, .. } | SStmt::PostSend { to, section, .. } => {
                        expr_syms(to, out);
                        rect_syms(section, out);
                    }
                    SStmt::Recv { from, section, .. } => {
                        expr_syms(from, out);
                        rect_syms(section, out);
                    }
                    SStmt::SendElem { to, value, .. } => {
                        expr_syms(to, out);
                        expr_syms(value, out);
                    }
                    SStmt::RecvElem { from, lhs, .. } => {
                        expr_syms(from, out);
                        lval_syms(lhs, out);
                    }
                    SStmt::Bcast {
                        root,
                        src_section,
                        dst_section,
                        ..
                    } => {
                        expr_syms(root, out);
                        rect_syms(src_section, out);
                        rect_syms(dst_section, out);
                    }
                    SStmt::BcastScalar { root, var } => {
                        expr_syms(root, out);
                        out.insert(*var);
                    }
                    SStmt::BcastPack { root, parts } | SStmt::PostBcastPack { root, parts, .. } => {
                        expr_syms(root, out);
                        part_syms(parts, out);
                    }
                    SStmt::PostRecv { from, .. } => expr_syms(from, out),
                    SStmt::WaitRecv { section, .. } => rect_syms(section, out),
                    SStmt::PostBcast {
                        root, src_section, ..
                    } => {
                        expr_syms(root, out);
                        rect_syms(src_section, out);
                    }
                    SStmt::WaitBcast { dst_section, .. } => rect_syms(dst_section, out),
                    SStmt::WaitBcastPack { parts, .. } => part_syms(parts, out),
                    SStmt::Print { args } => {
                        for a in args {
                            expr_syms(a, out);
                        }
                    }
                }
            }
        }
        walk(&self.prog.procs[idx].body, &mut out);
        out
    }

    fn emit_proc(&mut self, idx: usize) {
        self.cur = idx;
        self.tmp = 0;
        let proc = self.prog.procs[idx].clone();
        let is_main = idx == self.prog.main;

        let mut params = String::from("cx: &mut shim::Ctx, h: &mut shim::Heap, d: &[shim::RtDist]");
        if is_main {
            params.push_str(", init: &[Option<Vec<f64>>]");
        }
        let mut formal_syms: BTreeSet<Sym> = BTreeSet::new();
        for f in &proc.formals {
            formal_syms.insert(f.name);
            if f.is_array {
                let _ = write!(params, ", {}: usize", self.aname(f.name));
            } else {
                let _ = write!(
                    params,
                    ", mut {}: {}",
                    self.sname(f.name),
                    Self::rust_ty(self.types.ty_of(idx, f.name))
                );
            }
        }

        if !is_main {
            // Leaf procedures are called per loop iteration in the hot
            // paths; let the optimizer inline them into their call sites.
            self.w("#[inline]");
        }
        self.w(&format!(
            "fn {}({params}) -> (shim::Flow, {}) {{",
            self.pname(idx),
            self.ret_ty(idx)
        ));
        self.indent += 1;

        // Local arrays: declared bounds with the decl's (possibly
        // ownership-split) distribution; main's are seeded from the init
        // file slot matching their declaration position.
        for (k, decl) in proc.decls.iter().enumerate() {
            let bounds: Vec<String> = decl
                .bounds
                .iter()
                .map(|(lo, hi)| format!("({lo}i64, {hi}i64)"))
                .collect();
            let owner = match decl.owner_dist {
                Some(did) => format!("Some({}u32)", did.0),
                None => "None".to_string(),
            };
            self.w(&format!(
                "let {}: usize = h.alloc(&[{}], {}u32, {owner});",
                self.aname(decl.name),
                bounds.join(", "),
                decl.dist.0
            ));
            if is_main {
                let arr = self.aname(decl.name);
                self.w(&format!("if let Some(g) = &init[{k}usize] {{"));
                self.indent += 1;
                self.w(&format!("shim::scatter_init(h, {arr}, d, g, cx.rank());"));
                self.indent -= 1;
                self.w("}");
            }
        }

        // Scalar locals (everything touched that isn't a formal),
        // defaulting to the interpreter's uninitialized I(0).
        for sym in self.collect_scalars(idx) {
            if formal_syms.contains(&sym) {
                continue;
            }
            let t = self.types.ty_of(idx, sym);
            self.w(&format!(
                "let mut {}: {} = {};",
                self.sname(sym),
                Self::rust_ty(t),
                Self::zero(t)
            ));
        }

        self.emit_body(&proc.body);

        let ret = self.ret_expr(idx);
        self.w(&format!("(shim::Flow::Normal, {ret})"));
        self.indent -= 1;
        self.w("}");
        self.w("");
    }

    // -- program ------------------------------------------------------------

    fn emit(&mut self) {
        self.w("// Generated by fortrand-spmd's native codegen backend. Do not edit:");
        self.w("// the emitter re-prints this file deterministically from the SPMD IR.");
        self.w("#![allow(warnings)]");
        self.w("");
        self.w("use fortrand_shim as shim;");
        self.w("");

        // Distribution table (same indexing as SpmdProgram::dists).
        self.w("fn dists() -> Vec<shim::RtDist> {");
        self.indent += 1;
        self.w("vec![");
        self.indent += 1;
        for ad in &self.prog.dists {
            let dims: Vec<String> = ad
                .dims
                .iter()
                .map(|dp| {
                    let kind = match dp.kind {
                        fortrand_ir::dist::DistKind::Block => "shim::RtKind::Block".to_string(),
                        fortrand_ir::dist::DistKind::Cyclic => "shim::RtKind::Cyclic".to_string(),
                        fortrand_ir::dist::DistKind::BlockCyclic(b) => {
                            format!("shim::RtKind::BlockCyclic({b}i64)")
                        }
                        fortrand_ir::dist::DistKind::Serial => "shim::RtKind::Serial".to_string(),
                    };
                    format!(
                        "shim::RtDim {{ kind: {kind}, extent: {}i64, nprocs: {}usize }}",
                        dp.extent, dp.nprocs
                    )
                })
                .collect();
            let offsets: Vec<String> = ad.offsets.iter().map(|o| format!("{o}i64")).collect();
            let shape: Vec<String> = ad.grid.shape.iter().map(|s| format!("{s}usize")).collect();
            let axis: Vec<String> = ad
                .grid_axis
                .iter()
                .map(|a| match a {
                    Some(i) => format!("Some({i}usize)"),
                    None => "None".to_string(),
                })
                .collect();
            self.w(&format!(
                "shim::RtDist {{ dims: vec![{}], offsets: vec![{}], grid_shape: vec![{}], grid_axis: vec![{}] }},",
                dims.join(", "),
                offsets.join(", "),
                shape.join(", "),
                axis.join(", ")
            ));
        }
        self.indent -= 1;
        self.w("]");
        self.indent -= 1;
        self.w("}");
        self.w("");

        for idx in 0..self.prog.procs.len() {
            self.emit_proc(idx);
        }

        let main_decls = self.prog.procs[self.prog.main].decls.len();
        let entry = self.pname(self.prog.main);
        self.w("fn main() {");
        self.indent += 1;
        self.w("let ds: Vec<shim::RtDist> = dists();");
        self.w(&format!(
            "shim::drive({}usize, &ds, |cx, init| {{",
            self.prog.nprocs
        ));
        self.indent += 1;
        self.w("let mut h = shim::Heap::new();");
        self.w(&format!("let _ = {entry}(cx, &mut h, &ds, init);"));
        self.w(&format!("h.arrs[..{main_decls}usize].to_vec()"));
        self.indent -= 1;
        self.w("})");
        self.indent -= 1;
        self.w("}");
    }
}
