//! Bytecode VM: the default SPMD execution engine.
//!
//! Executes programs lowered by [`crate::lower`] with a tight dispatch
//! loop over dense instructions. All state lives in contiguous stacks
//! shared across frames (scalar slots, array table, registers) indexed by
//! per-frame bases, so there is no per-statement hashing or allocation on
//! the hot path. Section enumerations are cached per lowering site
//! ([`SecEntry`]) keyed by the evaluated bounds and the target array's
//! current local bounds (remaps invalidate naturally).
//!
//! The VM charges the exact same flop/op inventory as the tree engine
//! ([`crate::interp`]) and flushes it at the same communication points, so
//! every simulated observable — virtual clocks, message counts, bytes,
//! final arrays, printed lines — is bit-identical between engines.

use crate::interp::slot;
use crate::ir::{SBinOp, SpmdProgram};
use crate::lower::{
    lower_with, op_idx, CallArgs, Instr, KAcc, KBody, KLoop, KSrc, Lowered, SecInstr, Slot,
    NO_SLOT, N_OPCODES, OPCODE_NAMES,
};
use crate::runtime::{
    apply_bin, apply_intr, mark_dist_store, remap_global_store, remap_store, run_harness,
    scalar_from_wire, scatter_init_store, ArrayStore, ExecOutput, FinalArray, Value,
};
use fortrand_ir::Sym;
use fortrand_machine::{Machine, Node, Payload};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Runs `prog` under the bytecode engine. Lowering happens once; the
/// resulting program is shared read-only by every rank's VM. `kernels`
/// enables the superinstruction fusion tier (identical observables
/// either way; only dispatch count and wall time differ).
pub(crate) fn run_bytecode(
    prog: &SpmdProgram,
    machine: &Machine,
    init: &BTreeMap<Sym, Vec<f64>>,
    kernels: bool,
) -> Result<ExecOutput, crate::runtime::RankFailure> {
    let lowered = lower_with(prog, kernels);
    let instr_total = AtomicU64::new(0);
    let fused_total = AtomicU64::new(0);
    let mix_total: Vec<AtomicU64> = (0..N_OPCODES).map(|_| AtomicU64::new(0)).collect();
    // Resolved once per run, only when tracing: per-call spans need
    // procedure names and the hot path must not touch the interner.
    let proc_names: Vec<String> = if machine.trace().on() {
        prog.procs
            .iter()
            .map(|p| prog.interner.name(p.name).to_string())
            .collect()
    } else {
        Vec::new()
    };
    let mut out = run_harness(prog, machine, |node| {
        let mut vm = Vm::new(prog, &lowered, node, &proc_names);
        vm.enter_main(init);
        exec(&mut vm);
        vm.close_open_spans();
        instr_total.fetch_add(vm.instrs, Ordering::Relaxed);
        fused_total.fetch_add(vm.fused, Ordering::Relaxed);
        for (k, v) in vm.mix.iter().enumerate() {
            if *v > 0 {
                mix_total[k].fetch_add(*v, Ordering::Relaxed);
            }
        }
        (vm.finish(), std::mem::take(&mut vm.printed))
    })?;
    out.stats.engine_instrs = instr_total.load(Ordering::Relaxed);
    out.stats.fused_instrs = fused_total.load(Ordering::Relaxed);
    out.stats.instr_mix = mix_total
        .iter()
        .enumerate()
        .filter_map(|(k, v)| {
            let n = v.load(Ordering::Relaxed);
            (n > 0).then(|| (OPCODE_NAMES[k].to_string(), n))
        })
        .collect();
    Ok(out)
}

/// Cached enumeration of one section site: the evaluated bounds it was
/// built for and the flattened storage offsets of its points in row-major
/// (last dimension fastest) order.
struct SecEntry {
    dims: Vec<(i64, i64, i64)>,
    bounds: Vec<(i64, i64)>,
    flats: Vec<u32>,
}

/// Activation record. `ret_pc` resumes the caller after the `Call` at
/// `call_pc` (whose operand also carries the copy-out plan read on return).
struct FrameMark {
    proc: usize,
    ret_pc: usize,
    call_pc: usize,
    s_base: usize,
    a_base: usize,
    r_base: usize,
    heap_mark: usize,
}

struct Vm<'a, 'n> {
    prog: &'a SpmdProgram,
    lowered: &'a Lowered,
    node: &'n mut Node,
    /// Scalar slots of every live frame, contiguous.
    scalars: Vec<Value>,
    /// Array table: heap id per frame-local array index.
    atab: Vec<usize>,
    /// Expression registers of every live frame, contiguous.
    regs: Vec<Value>,
    frames: Vec<FrameMark>,
    heap: Vec<ArrayStore>,
    /// Outgoing message under construction (pooled buffer).
    msg: Option<Vec<f64>>,
    /// Last received/broadcast payload, consumed via `in_off`.
    incoming: Option<Payload>,
    in_off: usize,
    /// `(src, tag)` latched by `PostRecvMsg`, keyed by handle.
    posted_recv: Vec<Option<(usize, u64)>>,
    /// `(seq, posted_at)` latched by `PostBcastMsg`, keyed by handle.
    posted_bcast: Vec<Option<(u64, f64)>>,
    sec_cache: Vec<Option<SecEntry>>,
    /// Scratch for subscript evaluation (avoids per-access allocation).
    subs_buf: Vec<i64>,
    /// Scratch for section bound evaluation.
    dims_buf: Vec<(i64, i64, i64)>,
    printed: Vec<String>,
    pending_flops: u64,
    pending_ops: u64,
    /// Instructions dispatched (diagnostic; summed into
    /// `RunStats::engine_instrs`).
    instrs: u64,
    /// Dispatches retired *inside* superinstructions (the instructions
    /// the unfused program would have dispatched); summed into
    /// `RunStats::fused_instrs`.
    fused: u64,
    /// Dynamic opcode histogram, indexed by [`op_idx`].
    mix: Vec<u64>,
    main_arrays: Vec<usize>,
    /// Cached `node.trace().on()` so the dispatch loop pays one bool test.
    trace_on: bool,
    /// Procedure names for per-call spans (empty unless tracing).
    proc_names: &'a [String],
}

impl<'a, 'n> Vm<'a, 'n> {
    fn new(
        prog: &'a SpmdProgram,
        lowered: &'a Lowered,
        node: &'n mut Node,
        proc_names: &'a [String],
    ) -> Self {
        let trace_on = node.trace().on();
        Vm {
            prog,
            lowered,
            node,
            scalars: Vec::new(),
            atab: Vec::new(),
            regs: Vec::new(),
            frames: Vec::new(),
            heap: Vec::new(),
            msg: None,
            incoming: None,
            in_off: 0,
            posted_recv: Vec::new(),
            posted_bcast: Vec::new(),
            sec_cache: (0..lowered.n_sites).map(|_| None).collect(),
            subs_buf: Vec::new(),
            dims_buf: Vec::new(),
            printed: Vec::new(),
            pending_flops: 0,
            pending_ops: 0,
            instrs: 0,
            fused: 0,
            mix: vec![0; N_OPCODES],
            main_arrays: Vec::new(),
            trace_on,
            proc_names,
        }
    }

    /// Opens an execution-slice span for `proc` on this rank's track at
    /// the current simulated clock.
    fn trace_enter(&mut self, proc: usize) {
        if self.trace_on {
            let rank = self.node.rank() as u32;
            let ts = self.node.clock();
            self.node.trace().begin_at(
                fortrand_trace::PID_MACHINE,
                rank,
                "vm",
                &self.proc_names[proc],
                ts,
                Vec::new(),
            );
        }
    }

    /// Closes the innermost execution-slice span at the current clock.
    fn trace_exit(&mut self, proc: usize) {
        if self.trace_on {
            let rank = self.node.rank() as u32;
            let ts = self.node.clock();
            self.node.trace().end_at(
                fortrand_trace::PID_MACHINE,
                rank,
                "vm",
                &self.proc_names[proc],
                ts,
            );
        }
    }

    /// Closes spans for frames still live after execution stops (a `STOP`
    /// inside a callee leaves the stack deep), keeping B/E balanced.
    fn close_open_spans(&mut self) {
        if self.trace_on {
            for i in (0..self.frames.len()).rev() {
                let proc = self.frames[i].proc;
                self.trace_exit(proc);
            }
        }
    }

    fn flush(&mut self) {
        // Every communication instruction flushes before installing a new
        // incoming payload, and the scatters that consume one never
        // flush, so the previous message is fully consumed here. Dropping
        // our clone now (instead of when the *next* receive overwrites
        // it) returns the shared buffer to the pool one pipeline stage
        // earlier — under posted/pipelined schedules each rank would
        // otherwise pin the last broadcast's buffer across the whole
        // in-flight window, forcing the root's gathers to allocate.
        self.incoming = None;
        if self.pending_flops > 0 {
            self.node.charge_flops(self.pending_flops);
            self.pending_flops = 0;
        }
        if self.pending_ops > 0 {
            self.node.charge_ops(self.pending_ops);
            self.pending_ops = 0;
        }
    }

    fn enter_main(&mut self, init: &BTreeMap<Sym, Vec<f64>>) {
        let lowered = self.lowered;
        let main = self.prog.main;
        let lp = &lowered.procs[main];
        assert_eq!(lp.array_formals, 0, "main procedure takes array formals");
        self.scalars.resize(lp.n_slots as usize, Value::I(0));
        self.regs.resize(lp.n_regs as usize, Value::I(0));
        for d in &lp.decls {
            let id = self.heap.len();
            let mut store = ArrayStore::alloc(d.name, d.bounds.clone(), d.dist);
            store.owner_dist = d.owner_dist;
            self.heap.push(store);
            self.atab.push(id);
            self.main_arrays.push(id);
            if let Some(global) = init.get(&d.name) {
                self.scatter_init(id, global);
            }
        }
        self.frames.push(FrameMark {
            proc: main,
            ret_pc: 0,
            call_pc: 0,
            s_base: 0,
            a_base: 0,
            r_base: 0,
            heap_mark: 0,
        });
        self.trace_enter(main);
    }

    fn scatter_init(&mut self, id: usize, global: &[f64]) {
        if self.heap[id].owner_dist.is_some() {
            assert_eq!(self.heap[id].data.len(), global.len(), "rtr init size");
            self.heap[id].data.copy_from_slice(global);
            return;
        }
        let prog = self.prog;
        let dist = &prog.dists[self.heap[id].dist.0 as usize];
        let my = self.node.rank();
        scatter_init_store(&mut self.heap[id], dist, global, my);
    }

    fn finish(&mut self) -> Vec<FinalArray> {
        self.main_arrays
            .iter()
            .map(|&id| {
                let s = &self.heap[id];
                FinalArray {
                    name: s.name,
                    bounds: s.bounds.clone(),
                    data: s.data.clone(),
                    dist: s.dist,
                    owner_dist: s.owner_dist,
                }
            })
            .collect()
    }

    fn do_call(
        &mut self,
        ca: &CallArgs,
        caller_r_base: usize,
        caller_a_base: usize,
        ret_pc: usize,
    ) {
        let lowered = self.lowered;
        let lp = &lowered.procs[ca.callee];
        let s_base = self.scalars.len();
        let a_base = self.atab.len();
        let r_base = self.regs.len();
        let heap_mark = self.heap.len();
        self.scalars
            .resize(s_base + lp.n_slots as usize, Value::I(0));
        for &(slot, reg) in &ca.scalars {
            self.scalars[s_base + slot as usize] = self.regs[caller_r_base + reg as usize];
        }
        for &tidx in &ca.arrays {
            let id = self.atab[caller_a_base + tidx as usize];
            self.atab.push(id);
        }
        for d in &lp.decls {
            let id = self.heap.len();
            let mut store = ArrayStore::alloc(d.name, d.bounds.clone(), d.dist);
            store.owner_dist = d.owner_dist;
            self.heap.push(store);
            self.atab.push(id);
        }
        self.regs.resize(r_base + lp.n_regs as usize, Value::I(0));
        self.pending_ops += 2; // call overhead
        self.frames.push(FrameMark {
            proc: ca.callee,
            ret_pc,
            call_pc: ret_pc - 1,
            s_base,
            a_base,
            r_base,
            heap_mark,
        });
        self.trace_enter(ca.callee);
    }

    /// Pops the current frame, applies scalar copy-out, and returns the
    /// caller's resume pc. Frame storage (including callee-local arrays)
    /// is reclaimed.
    fn do_return(&mut self) -> usize {
        if self.trace_on {
            let proc = self.frames.last().unwrap().proc;
            self.trace_exit(proc);
        }
        let fr = self.frames.pop().unwrap();
        let caller = self.frames.last().unwrap();
        let caller_s_base = caller.s_base;
        let lowered = self.lowered;
        let Instr::Call(ca) = &lowered.procs[caller.proc].code[fr.call_pc] else {
            unreachable!("return without matching call")
        };
        for &(fslot, cslot) in &ca.copy_out {
            self.scalars[caller_s_base + cslot as usize] = self.scalars[fr.s_base + fslot as usize];
        }
        self.scalars.truncate(fr.s_base);
        self.atab.truncate(fr.a_base);
        self.regs.truncate(fr.r_base);
        self.heap.truncate(fr.heap_mark);
        fr.ret_pc
    }

    /// Affine access plan for a [`KAcc`]: `(heap id, flat0, stride)`
    /// such that iteration `t` of the fused loop touches
    /// `data[flat0 + t*stride]`. Each dimension's subscript is affine
    /// in `t` (the loop-variable dims advance by `step`, the rest are
    /// constant), so validating both endpoints validates every
    /// iteration. Returns `None` when an endpoint leaves the local
    /// bounds — the caller then runs the intact interpreted body, which
    /// panics at the exact offending iteration with the exact message.
    #[allow(clippy::too_many_arguments)]
    fn kacc_plan(
        &self,
        acc: &KAcc,
        s_base: usize,
        a_base: usize,
        var: Slot,
        i0: i64,
        step: i64,
        t: i64,
    ) -> Option<(usize, i64, i64)> {
        let id = self.atab[a_base + acc.arr as usize];
        let store = &self.heap[id];
        let mut flat0 = 0i64;
        let mut stride = 0i64;
        for k in 0..acc.n as usize {
            let s = acc.subs[k];
            let (v0, delta) = if s.slot == NO_SLOT {
                (s.off as i64, 0)
            } else if s.slot == var {
                (i0 + s.off as i64, step)
            } else {
                (
                    self.scalars[s_base + s.slot as usize].as_i() + s.off as i64,
                    0,
                )
            };
            let (lo, hi) = store.bounds[k];
            let vl = v0 + delta * (t - 1);
            if v0 < lo || v0 > hi || vl < lo || vl > hi {
                return None;
            }
            let w = hi - lo + 1;
            flat0 = flat0 * w + (v0 - lo);
            stride = stride * w + delta;
        }
        Some((id, flat0, stride))
    }

    /// Reads a non-element kernel operand (loop-invariant by the
    /// fuser's guards, so reading once is exact).
    fn ksrc_val(&self, s: &KSrc, s_base: usize) -> Value {
        match s {
            KSrc::Slot(sl) => self.scalars[s_base + *sl as usize],
            KSrc::ImmI(v) => Value::I(*v),
            KSrc::ImmR(v) => Value::R(*v),
            KSrc::Elem(_) => unreachable!("element operand resolved via kacc_plan"),
        }
    }

    /// Executes a fused loop's entire trip count (`t >= 1` iterations
    /// from `i0`) in one dispatch, charging the batched per-iteration
    /// inventory. Returns `false` (having performed *no* side effects)
    /// when a precondition fails, so the caller can fall back to the
    /// interpreted body.
    fn run_kloop(&mut self, kl: &KLoop, s_base: usize, a_base: usize, i0: i64, t: i64) -> bool {
        let var = kl.var;
        let step = kl.step;
        /// Resolved per-iteration operand: a constant or a strided walk.
        enum Rop {
            C(Value),
            M(*const f64, i64, i64),
        }
        let resolve = |vm: &Self, s: &KSrc| -> Option<Rop> {
            match s {
                KSrc::Elem(a) => {
                    let (id, f0, st) = vm.kacc_plan(a, s_base, a_base, var, i0, step, t)?;
                    Some(Rop::M(vm.heap[id].data.as_ptr(), f0, st))
                }
                other => Some(Rop::C(vm.ksrc_val(other, s_base))),
            }
        };
        let rop_val = |r: &Rop, k: i64| -> Value {
            match r {
                Rop::C(v) => *v,
                Rop::M(p, f0, st) => Value::R(unsafe { *p.add((f0 + k * st) as usize) }),
            }
        };
        match &kl.body {
            KBody::Fill { dst, v } => {
                let Some((did, f0, st)) = self.kacc_plan(dst, s_base, a_base, var, i0, step, t)
                else {
                    return false;
                };
                let x = self.ksrc_val(v, s_base).as_r();
                let p = self.heap[did].data.as_mut_ptr();
                for k in 0..t {
                    unsafe { *p.add((f0 + k * st) as usize) = x };
                }
            }
            KBody::Copy { dst, src } => {
                let Some((sid, sf0, sst)) = self.kacc_plan(src, s_base, a_base, var, i0, step, t)
                else {
                    return false;
                };
                let Some((did, df0, dstr)) = self.kacc_plan(dst, s_base, a_base, var, i0, step, t)
                else {
                    return false;
                };
                let sp = self.heap[sid].data.as_ptr();
                let dp = self.heap[did].data.as_mut_ptr();
                for k in 0..t {
                    unsafe {
                        let v = *sp.add((sf0 + k * sst) as usize);
                        *dp.add((df0 + k * dstr) as usize) = v;
                    }
                }
            }
            KBody::EBin { op, dst, l, r } => {
                let Some(rl) = resolve(self, l) else {
                    return false;
                };
                let Some(rr) = resolve(self, r) else {
                    return false;
                };
                let Some((did, df0, dstr)) = self.kacc_plan(dst, s_base, a_base, var, i0, step, t)
                else {
                    return false;
                };
                let dp = self.heap[did].data.as_mut_ptr();
                for k in 0..t {
                    let a = rop_val(&rl, k);
                    let b = rop_val(&rr, k);
                    let out = apply_bin(*op, a, b).as_r();
                    unsafe { *dp.add((df0 + k * dstr) as usize) = out };
                }
            }
            KBody::Fma {
                op,
                dst,
                acc,
                ml,
                mr,
            } => {
                let Some(racc) = resolve(self, acc) else {
                    return false;
                };
                let Some(rml) = resolve(self, ml) else {
                    return false;
                };
                let Some(rmr) = resolve(self, mr) else {
                    return false;
                };
                let Some((did, df0, dstr)) = self.kacc_plan(dst, s_base, a_base, var, i0, step, t)
                else {
                    return false;
                };
                let dp = self.heap[did].data.as_mut_ptr();
                for k in 0..t {
                    let x = rop_val(&rml, k);
                    let y = rop_val(&rmr, k);
                    let m = apply_bin(SBinOp::Mul, x, y);
                    let a = rop_val(&racc, k);
                    let out = apply_bin(*op, a, m).as_r();
                    unsafe { *dp.add((df0 + k * dstr) as usize) = out };
                }
            }
            KBody::RedBin {
                op,
                slot,
                e,
                acc_left,
            } => {
                let Some((eid, f0, st)) = self.kacc_plan(e, s_base, a_base, var, i0, step, t)
                else {
                    return false;
                };
                let p = self.heap[eid].data.as_ptr();
                let mut acc = self.scalars[s_base + *slot as usize];
                for k in 0..t {
                    let ev = Value::R(unsafe { *p.add((f0 + k * st) as usize) });
                    acc = if *acc_left {
                        apply_bin(*op, acc, ev)
                    } else {
                        apply_bin(*op, ev, acc)
                    };
                }
                self.scalars[s_base + *slot as usize] = acc;
            }
            KBody::Swap { x, y, tmp } => {
                let Some((xid, xf0, xst)) = self.kacc_plan(x, s_base, a_base, var, i0, step, t)
                else {
                    return false;
                };
                let Some((yid, yf0, yst)) = self.kacc_plan(y, s_base, a_base, var, i0, step, t)
                else {
                    return false;
                };
                let xp = self.heap[xid].data.as_mut_ptr();
                let yp = self.heap[yid].data.as_mut_ptr();
                let mut last_x = 0.0f64;
                for k in 0..t {
                    unsafe {
                        let xv = *xp.add((xf0 + k * xst) as usize);
                        let yv = *yp.add((yf0 + k * yst) as usize);
                        *xp.add((xf0 + k * xst) as usize) = yv;
                        *yp.add((yf0 + k * yst) as usize) = xv;
                        last_x = xv;
                    }
                }
                // The interpreted body leaves the last swapped-out value
                // in the temporary (t >= 1 here).
                self.scalars[s_base + *tmp as usize] = Value::R(last_x);
            }
            KBody::ArgMax {
                e,
                intr,
                cmp,
                dmax,
                idx,
            } => {
                let Some((eid, f0, st)) = self.kacc_plan(e, s_base, a_base, var, i0, step, t)
                else {
                    return false;
                };
                let p = self.heap[eid].data.as_ptr();
                let mut best = self.scalars[s_base + *dmax as usize];
                let mut best_i: Option<i64> = None;
                let mut takes = 0u64;
                for k in 0..t {
                    let av = Value::R(unsafe { *p.add((f0 + k * st) as usize) });
                    let m = apply_intr(*intr, &[av]);
                    if apply_bin(*cmp, m, best).truthy() {
                        takes += 1;
                        best = m;
                        best_i = Some(i0 + k * step);
                    }
                }
                self.scalars[s_base + *dmax as usize] = best;
                if let Some(bi) = best_i {
                    self.scalars[s_base + *idx as usize] = Value::I(bi);
                }
                self.pending_ops += takes * kl.taken_ops;
                self.pending_flops += takes * kl.taken_flops;
            }
        }
        self.pending_ops += t as u64 * kl.ops_per_iter;
        self.pending_flops += t as u64 * kl.flops_per_iter;
        true
    }

    /// Evaluates a section's bounds from registers and returns its point
    /// count, (re)building the site's cached enumeration when the bounds
    /// or the target array's local bounds changed.
    fn ensure_section(&mut self, sec: &SecInstr, store_id: usize, r_base: usize) -> usize {
        self.dims_buf.clear();
        for &(lo, hi, step) in &sec.dims {
            let l = self.regs[r_base + lo as usize].as_i();
            let h = self.regs[r_base + hi as usize].as_i();
            self.dims_buf.push((l, h, step));
        }
        let store = &self.heap[store_id];
        if let Some(e) = &self.sec_cache[sec.site as usize] {
            if e.dims == self.dims_buf && e.bounds == store.bounds {
                return e.flats.len();
            }
        }
        let dims = &self.dims_buf;
        let mut flats: Vec<u32> = Vec::new();
        if !dims.iter().any(|&(lo, hi, _)| hi < lo) {
            let mut pt: Vec<i64> = dims.iter().map(|&(lo, _, _)| lo).collect();
            'points: loop {
                flats.push(store.flat(&pt) as u32);
                // Increment last dimension first (row-major order).
                let mut d = dims.len();
                loop {
                    if d == 0 {
                        break 'points;
                    }
                    d -= 1;
                    pt[d] += dims[d].2;
                    if pt[d] <= dims[d].1 {
                        break;
                    }
                    pt[d] = dims[d].0;
                }
            }
        }
        let n = flats.len();
        self.sec_cache[sec.site as usize] = Some(SecEntry {
            dims: self.dims_buf.clone(),
            bounds: store.bounds.clone(),
            flats,
        });
        n
    }
}

/// The dispatch loop. The outer loop re-fetches the current procedure's
/// code and frame bases after every call/return; the inner loop dispatches
/// until the frame changes or the program halts.
///
/// Hot arms access the register and scalar files through unchecked raw
/// pointers: lowering guarantees every operand index is below the frame's
/// `n_regs`/`n_slots`, and the stacks are resized to exactly
/// `base + n_regs`/`base + n_slots` on frame entry, so `base + idx` is
/// always in bounds (debug builds assert it). The pointers are re-derived
/// at each use, so frame switches and arms that call `&mut Vm` methods
/// never hold a stale pointer.
fn exec(vm: &mut Vm) {
    let lowered = vm.lowered;
    let prog = vm.prog;
    let mut pc = 0usize;
    loop {
        let fr = vm.frames.last().unwrap();
        let (s_base, a_base, r_base) = (fr.s_base, fr.a_base, fr.r_base);
        let code = &lowered.procs[fr.proc].code;
        /// Reads register `$i` of the current frame (unchecked).
        macro_rules! reg {
            ($i:expr) => {{
                let idx = r_base + $i as usize;
                debug_assert!(idx < vm.regs.len());
                unsafe { *vm.regs.as_ptr().add(idx) }
            }};
        }
        /// Writes register `$i` of the current frame (unchecked).
        macro_rules! reg_set {
            ($i:expr, $v:expr) => {{
                let idx = r_base + $i as usize;
                debug_assert!(idx < vm.regs.len());
                let v = $v;
                unsafe { *vm.regs.as_mut_ptr().add(idx) = v }
            }};
        }
        /// Computes the flat storage offset of an element access on
        /// `$store` whose subscripts sit in registers `$first..+$n`,
        /// with the same per-dimension bounds panic as
        /// [`ArrayStore::flat`]. In-bounds subscripts imply
        /// `flat < data.len()` (storage is the product of the widths).
        macro_rules! flat_of {
            ($store:expr, $first:expr, $n:expr) => {{
                let mut flat = 0usize;
                for k in 0..$n as usize {
                    let x = reg!($first as usize + k).as_i();
                    let (lo, hi) = $store.bounds[k];
                    assert!(
                        x >= lo && x <= hi,
                        "subscript {} out of local bounds {}:{} (dim {}) of array",
                        x,
                        lo,
                        hi,
                        k
                    );
                    flat = flat * (hi - lo + 1) as usize + (x - lo) as usize;
                }
                flat
            }};
        }
        /// Like `flat_of!` for folded [`SubIdx`] subscript lists.
        macro_rules! flat_of_sub {
            ($store:expr, $subs:expr, $n:expr) => {{
                let mut flat = 0usize;
                for k in 0..$n as usize {
                    let s = $subs[k];
                    let x = if s.slot == NO_SLOT {
                        s.off as i64
                    } else {
                        let idx = s_base + s.slot as usize;
                        debug_assert!(idx < vm.scalars.len());
                        (unsafe { *vm.scalars.as_ptr().add(idx) }).as_i() + s.off as i64
                    };
                    let (lo, hi) = $store.bounds[k];
                    assert!(
                        x >= lo && x <= hi,
                        "subscript {} out of local bounds {}:{} (dim {}) of array",
                        x,
                        lo,
                        hi,
                        k
                    );
                    flat = flat * (hi - lo + 1) as usize + (x - lo) as usize;
                }
                flat
            }};
        }
        /// Reads a fused-instruction [`Opnd`]: a register, or a scalar
        /// slot of the current frame when `slot != NO_SLOT`.
        macro_rules! opnd {
            ($o:expr) => {{
                let o = $o;
                if o.slot == NO_SLOT {
                    reg!(o.reg)
                } else {
                    let idx = s_base + o.slot as usize;
                    debug_assert!(idx < vm.scalars.len());
                    unsafe { *vm.scalars.as_ptr().add(idx) }
                }
            }};
        }
        let switched = 'frame: loop {
            let instr = &code[pc];
            vm.instrs += 1;
            vm.mix[op_idx(instr)] += 1;
            pc += 1;
            match instr {
                Instr::LdI { dst, v } => {
                    reg_set!(*dst, Value::I(*v));
                }
                Instr::LdR { dst, v } => {
                    reg_set!(*dst, Value::R(*v));
                }
                Instr::LdVar { dst, slot } => {
                    let idx = s_base + *slot as usize;
                    debug_assert!(idx < vm.scalars.len());
                    reg_set!(*dst, unsafe { *vm.scalars.as_ptr().add(idx) });
                }
                Instr::StVar { slot, src } => {
                    let idx = s_base + *slot as usize;
                    debug_assert!(idx < vm.scalars.len());
                    let v = reg!(*src);
                    unsafe { *vm.scalars.as_mut_ptr().add(idx) = v };
                }
                Instr::MovI { dst, src } => {
                    reg_set!(*dst, Value::I(reg!(*src).as_i()));
                }
                Instr::MyP { dst } => {
                    reg_set!(*dst, Value::I(vm.node.rank() as i64));
                }
                Instr::NProcs { dst } => {
                    reg_set!(*dst, Value::I(vm.node.nprocs() as i64));
                }
                Instr::Bin { op, dst, l, r } => {
                    let a = reg!(*l);
                    let b = reg!(*r);
                    if matches!(a, Value::R(_)) || matches!(b, Value::R(_)) {
                        vm.pending_flops += 1;
                    } else {
                        vm.pending_ops += 1;
                    }
                    reg_set!(*dst, apply_bin(*op, a, b));
                }
                Instr::Fma {
                    op,
                    dst,
                    acc,
                    ml,
                    mr,
                } => {
                    let x = opnd!(*ml);
                    let y = opnd!(*mr);
                    if matches!(x, Value::R(_)) || matches!(y, Value::R(_)) {
                        vm.pending_flops += 1;
                    } else {
                        vm.pending_ops += 1;
                    }
                    let m = apply_bin(SBinOp::Mul, x, y);
                    let a = opnd!(*acc);
                    if matches!(a, Value::R(_)) || matches!(m, Value::R(_)) {
                        vm.pending_flops += 1;
                    } else {
                        vm.pending_ops += 1;
                    }
                    reg_set!(*dst, apply_bin(*op, a, m));
                }
                Instr::Neg { dst, src } => {
                    let v = match reg!(*src) {
                        Value::I(i) => {
                            vm.pending_ops += 1;
                            Value::I(-i)
                        }
                        Value::R(r) => {
                            vm.pending_flops += 1;
                            Value::R(-r)
                        }
                    };
                    reg_set!(*dst, v);
                }
                Instr::Not { dst, src } => {
                    vm.pending_ops += 1;
                    let v = reg!(*src);
                    reg_set!(*dst, Value::I(if v.truthy() { 0 } else { 1 }));
                }
                Instr::Intr {
                    name,
                    dst,
                    first,
                    n,
                } => {
                    vm.pending_flops += 1;
                    let lo = r_base + *first as usize;
                    let out = apply_intr(*name, &vm.regs[lo..lo + *n as usize]);
                    vm.regs[r_base + *dst as usize] = out;
                }
                Instr::Load { dst, arr, first, n } => {
                    let id = vm.atab[a_base + *arr as usize];
                    vm.pending_ops += *n as u64;
                    let store = &vm.heap[id];
                    let flat = flat_of!(store, *first, *n);
                    reg_set!(*dst, Value::R(unsafe { *store.data.as_ptr().add(flat) }));
                }
                Instr::Store { arr, first, n, src } => {
                    let id = vm.atab[a_base + *arr as usize];
                    vm.pending_ops += *n as u64;
                    let v = reg!(*src).as_r();
                    let store = &mut vm.heap[id];
                    let flat = flat_of!(store, *first, *n);
                    unsafe { *store.data.as_mut_ptr().add(flat) = v };
                }
                Instr::LoadS {
                    dst,
                    arr,
                    n,
                    extra_ops,
                    subs,
                } => {
                    let id = vm.atab[a_base + *arr as usize];
                    vm.pending_ops += (*n + *extra_ops) as u64;
                    let store = &vm.heap[id];
                    let flat = flat_of_sub!(store, subs, *n);
                    reg_set!(*dst, Value::R(unsafe { *store.data.as_ptr().add(flat) }));
                }
                Instr::StoreS {
                    arr,
                    n,
                    extra_ops,
                    subs,
                    src,
                } => {
                    let id = vm.atab[a_base + *arr as usize];
                    vm.pending_ops += (*n + *extra_ops) as u64;
                    let v = reg!(*src).as_r();
                    let store = &mut vm.heap[id];
                    let flat = flat_of_sub!(store, subs, *n);
                    unsafe { *store.data.as_mut_ptr().add(flat) = v };
                }
                Instr::Owner {
                    dst,
                    dist,
                    first,
                    n,
                } => {
                    let lo = r_base + *first as usize;
                    vm.subs_buf.clear();
                    for k in 0..*n as usize {
                        vm.subs_buf.push(vm.regs[lo + k].as_i());
                    }
                    vm.pending_ops += 3;
                    let d = &prog.dists[dist.0 as usize];
                    vm.regs[r_base + *dst as usize] = Value::I(d.owner_of(&vm.subs_buf) as i64);
                }
                Instr::CurOwner { dst, arr, first, n } => {
                    let lo = r_base + *first as usize;
                    vm.subs_buf.clear();
                    for k in 0..*n as usize {
                        vm.subs_buf.push(vm.regs[lo + k].as_i());
                    }
                    vm.pending_ops += 3;
                    let id = vm.atab[a_base + *arr as usize];
                    let did = vm.heap[id].owner_dist.unwrap_or(vm.heap[id].dist);
                    let d = &prog.dists[did.0 as usize];
                    vm.regs[r_base + *dst as usize] = Value::I(d.owner_of(&vm.subs_buf) as i64);
                }
                Instr::LocalIdx {
                    dst,
                    dist,
                    dim,
                    src,
                } => {
                    let g = reg!(*src).as_i();
                    vm.pending_ops += 2;
                    let dim = *dim as usize;
                    let d = &prog.dists[dist.0 as usize];
                    let off = d.offsets[dim];
                    reg_set!(
                        *dst,
                        Value::I(if d.grid_axis[dim].is_some() {
                            d.dims[dim].local_of_global(g + off)
                        } else {
                            g
                        })
                    );
                }
                Instr::Jmp { to } => {
                    pc = *to as usize;
                }
                Instr::BrFalse { cond, to } => {
                    vm.pending_ops += 1; // guard evaluation
                    if !reg!(*cond).truthy() {
                        pc = *to as usize;
                    }
                }
                Instr::BrNotRank { root, to } => {
                    if vm.node.rank() as i64 != reg!(*root).as_i() {
                        pc = *to as usize;
                    }
                }
                Instr::BrNotRank0 { to } => {
                    if vm.node.rank() != 0 {
                        pc = *to as usize;
                    }
                }
                Instr::LoopHead {
                    i,
                    var,
                    hi,
                    step,
                    exit,
                } => {
                    let iv = reg!(*i).as_i();
                    let hv = reg!(*hi).as_i();
                    if (*step > 0 && iv <= hv) || (*step < 0 && iv >= hv) {
                        let idx = s_base + *var as usize;
                        debug_assert!(idx < vm.scalars.len());
                        unsafe { *vm.scalars.as_mut_ptr().add(idx) = Value::I(iv) };
                        vm.pending_ops += 1; // loop bookkeeping
                    } else {
                        pc = *exit as usize;
                    }
                }
                Instr::LoopNext {
                    i,
                    var,
                    hi,
                    step,
                    body,
                } => {
                    let v = reg!(*i).as_i() + *step;
                    reg_set!(*i, Value::I(v));
                    let hv = reg!(*hi).as_i();
                    if (*step > 0 && v <= hv) || (*step < 0 && v >= hv) {
                        let idx = s_base + *var as usize;
                        debug_assert!(idx < vm.scalars.len());
                        unsafe { *vm.scalars.as_mut_ptr().add(idx) = Value::I(v) };
                        vm.pending_ops += 1; // loop bookkeeping
                        pc = *body as usize;
                    }
                }
                Instr::KLoop(kl) => {
                    // Fused inner loop: identical enter test to LoopHead,
                    // then the whole trip count in one dispatch. On any
                    // precondition failure (`run_kloop` returns false with
                    // no side effects) this does exactly what LoopHead
                    // would have and falls through to the intact body.
                    let iv = reg!(kl.i).as_i();
                    let hv = reg!(kl.hi).as_i();
                    if (kl.step > 0 && iv <= hv) || (kl.step < 0 && iv >= hv) {
                        let t = (hv - iv) / kl.step + 1;
                        if vm.run_kloop(kl, s_base, a_base, iv, t) {
                            reg_set!(kl.i, Value::I(iv + t * kl.step));
                            let idx = s_base + kl.var as usize;
                            debug_assert!(idx < vm.scalars.len());
                            unsafe {
                                *vm.scalars.as_mut_ptr().add(idx) = Value::I(iv + (t - 1) * kl.step)
                            };
                            vm.fused += t as u64 * kl.fused_per_iter as u64;
                            pc = kl.exit as usize;
                        } else {
                            let idx = s_base + kl.var as usize;
                            debug_assert!(idx < vm.scalars.len());
                            unsafe { *vm.scalars.as_mut_ptr().add(idx) = Value::I(iv) };
                            vm.pending_ops += 1; // loop bookkeeping
                        }
                    } else {
                        pc = kl.exit as usize;
                    }
                }
                Instr::MovVar { dst, src } => {
                    // Fused LdVar+StVar: scalar-to-scalar move, uncharged
                    // like its constituents.
                    let si = s_base + *src as usize;
                    let di = s_base + *dst as usize;
                    debug_assert!(si < vm.scalars.len() && di < vm.scalars.len());
                    unsafe {
                        let v = *vm.scalars.as_ptr().add(si);
                        *vm.scalars.as_mut_ptr().add(di) = v;
                    }
                    vm.fused += 1;
                    pc += 1; // skip the replaced StVar
                }
                Instr::BinSS { op, dst, l, r } => {
                    // Fused leaf+leaf+Bin+StVar: runtime-typed charge
                    // identical to the constituent Bin.
                    let a = vm.ksrc_val(l, s_base);
                    let b = vm.ksrc_val(r, s_base);
                    if matches!(a, Value::R(_)) || matches!(b, Value::R(_)) {
                        vm.pending_flops += 1;
                    } else {
                        vm.pending_ops += 1;
                    }
                    let idx = s_base + *dst as usize;
                    debug_assert!(idx < vm.scalars.len());
                    unsafe { *vm.scalars.as_mut_ptr().add(idx) = apply_bin(*op, a, b) };
                    vm.fused += 3;
                    pc += 3; // skip the replaced leaves and StVar
                }
                Instr::LdElemVar { slot, acc } => {
                    // Fused LoadS+StVar: element load straight into a
                    // scalar slot, charged like the constituent LoadS.
                    let id = vm.atab[a_base + acc.arr as usize];
                    vm.pending_ops += (acc.n as u64) + acc.extra_ops as u64;
                    let store = &vm.heap[id];
                    let flat = flat_of_sub!(store, acc.subs, acc.n);
                    let v = Value::R(store.data[flat]);
                    let idx = s_base + *slot as usize;
                    debug_assert!(idx < vm.scalars.len());
                    unsafe { *vm.scalars.as_mut_ptr().add(idx) = v };
                    vm.fused += 1;
                    pc += 1; // skip the replaced StVar
                }
                Instr::Call(ca) => {
                    vm.do_call(ca, r_base, a_base, pc);
                    pc = 0;
                    break 'frame true;
                }
                Instr::Return => {
                    if vm.frames.len() == 1 {
                        vm.flush();
                        break 'frame false;
                    }
                    pc = vm.do_return();
                    break 'frame true;
                }
                Instr::Stop => {
                    vm.flush();
                    break 'frame false;
                }
                Instr::Gather { arr, sec } => {
                    let id = vm.atab[a_base + *arr as usize];
                    let n = vm.ensure_section(sec, id, r_base);
                    vm.pending_ops += n as u64; // pack cost
                    let node = &mut *vm.node;
                    let msg = vm.msg.get_or_insert_with(|| node.acquire_buf());
                    let entry = vm.sec_cache[sec.site as usize].as_ref().unwrap();
                    let store = &vm.heap[id];
                    msg.extend(entry.flats.iter().map(|&f| store.data[f as usize]));
                }
                Instr::Scatter { arr, sec, exact } => {
                    let id = vm.atab[a_base + *arr as usize];
                    let n = vm.ensure_section(sec, id, r_base);
                    vm.pending_ops += n as u64; // unpack cost
                    let inc = vm.incoming.as_ref().expect("scatter without message");
                    if *exact {
                        assert_eq!(n, inc.len(), "section/message size mismatch");
                    }
                    let data = &inc[vm.in_off..];
                    let entry = vm.sec_cache[sec.site as usize].as_ref().unwrap();
                    let store = &mut vm.heap[id];
                    for (k, &f) in entry.flats.iter().enumerate() {
                        store.data[f as usize] = data[k];
                    }
                    vm.in_off += n;
                }
                Instr::PackVar { slot } => {
                    let v = vm.scalars[s_base + *slot as usize].as_r();
                    let node = &mut *vm.node;
                    vm.msg.get_or_insert_with(|| node.acquire_buf()).push(v);
                }
                Instr::UnpackVar { slot } => {
                    let inc = vm.incoming.as_ref().expect("unpack without message");
                    let v = inc[vm.in_off];
                    vm.in_off += 1;
                    vm.scalars[s_base + *slot as usize] = scalar_from_wire(v);
                }
                Instr::SendMsg { to, tag } => {
                    let dst = vm.regs[r_base + *to as usize].as_i();
                    assert!(dst >= 0, "negative send destination");
                    vm.flush();
                    let data = vm.msg.take().expect("send without gathered message");
                    vm.node.send_buf(dst as usize, *tag, data);
                }
                Instr::RecvMsg { from, tag } => {
                    let src = vm.regs[r_base + *from as usize].as_i();
                    assert!(src >= 0, "negative recv source");
                    vm.flush();
                    vm.incoming = Some(vm.node.recv_payload(src as usize, *tag));
                    vm.in_off = 0;
                }
                Instr::SendElem { to, val, tag } => {
                    let dst = vm.regs[r_base + *to as usize].as_i() as usize;
                    let v = vm.regs[r_base + *val as usize].as_r();
                    vm.flush();
                    let mut buf = vm.node.acquire_buf();
                    buf.push(v);
                    vm.node.send_buf(dst, *tag, buf);
                }
                Instr::RecvElem { from, dst, tag } => {
                    let src = vm.regs[r_base + *from as usize].as_i() as usize;
                    vm.flush();
                    let p = vm.node.recv_payload(src, *tag);
                    vm.regs[r_base + *dst as usize] = Value::R(p[0]);
                }
                Instr::Bcast { root, tag } => {
                    let root = vm.regs[r_base + *root as usize].as_i() as usize;
                    vm.flush();
                    let data = if vm.node.rank() == root {
                        // The guarded gather/pack ran; an empty section
                        // still acquired a buffer.
                        Some(vm.msg.take().expect("bcast root without payload"))
                    } else {
                        None
                    };
                    let out = vm.node.bcast_payload(root, data, Some(*tag));
                    vm.incoming = Some(out);
                    vm.in_off = 0;
                }
                Instr::PostSendMsg { to, tag } => {
                    let dst = vm.regs[r_base + *to as usize].as_i();
                    assert!(dst >= 0, "negative send destination");
                    vm.flush();
                    let data = vm.msg.take().expect("post-send without gathered message");
                    vm.node.post_send(dst as usize, *tag, data);
                }
                Instr::WaitSendMsg => {
                    vm.flush();
                    vm.node.wait_send();
                }
                Instr::PostRecvMsg { from, tag, handle } => {
                    let src = vm.regs[r_base + *from as usize].as_i();
                    assert!(src >= 0, "negative recv source");
                    vm.flush();
                    vm.node.post_recv(src as usize, *tag);
                    *slot(&mut vm.posted_recv, *handle) = Some((src as usize, *tag));
                }
                Instr::WaitRecvMsg { handle } => {
                    let (src, tag) = slot(&mut vm.posted_recv, *handle)
                        .take()
                        .expect("wait-recv without matching post");
                    vm.flush();
                    vm.incoming = Some(vm.node.wait_recv(src, tag));
                    vm.in_off = 0;
                }
                Instr::PostBcastMsg { root, tag, handle } => {
                    let root = vm.regs[r_base + *root as usize].as_i() as usize;
                    vm.flush();
                    let data = if vm.node.rank() == root {
                        Some(vm.msg.take().expect("posted bcast root without payload"))
                    } else {
                        None
                    };
                    let seq = vm.node.post_bcast(root, data, Some(*tag));
                    let at = vm.node.clock();
                    *slot(&mut vm.posted_bcast, *handle) = Some((seq, at));
                }
                Instr::WaitBcastMsg { handle } => {
                    let (seq, posted_at) = slot(&mut vm.posted_bcast, *handle)
                        .take()
                        .expect("wait-bcast without matching post");
                    vm.flush();
                    vm.incoming = Some(vm.node.wait_bcast(seq, posted_at));
                    vm.in_off = 0;
                }
                Instr::Remap { arr, to } => {
                    let id = vm.atab[a_base + *arr as usize];
                    let from = vm.heap[id].dist;
                    vm.flush();
                    vm.node.charge_remap();
                    if from != *to {
                        let d0 = &prog.dists[from.0 as usize];
                        let d1 = &prog.dists[to.0 as usize];
                        vm.heap[id] = remap_store(vm.node, &vm.heap[id], d0, d1, *to);
                    }
                }
                Instr::RemapGlobal { arr, to } => {
                    let id = vm.atab[a_base + *arr as usize];
                    let from = vm.heap[id]
                        .owner_dist
                        .expect("remap_global on non-rtr array");
                    vm.flush();
                    vm.node.charge_remap();
                    if from != *to {
                        let d0 = &prog.dists[from.0 as usize];
                        let d1 = &prog.dists[to.0 as usize];
                        remap_global_store(vm.node, &mut vm.heap[id], d0, d1);
                        vm.heap[id].owner_dist = Some(*to);
                    }
                }
                Instr::MarkDist { arr, to } => {
                    let id = vm.atab[a_base + *arr as usize];
                    let new_dist = &prog.dists[to.0 as usize];
                    mark_dist_store(&mut vm.heap[id], new_dist, *to);
                    vm.pending_ops += 1;
                }
                Instr::Print { first, n } => {
                    let lo = r_base + *first as usize;
                    let parts: Vec<String> = vm.regs[lo..lo + *n as usize]
                        .iter()
                        .map(|v| match v {
                            Value::I(x) => format!("{x}"),
                            Value::R(x) => format!("{x}"),
                        })
                        .collect();
                    vm.printed.push(parts.join(" "));
                }
            }
        };
        if !switched {
            return;
        }
    }
}
