//! Pretty printer: renders node procedures as Fortran-like message-passing
//! code, matching the shape of the paper's output figures (Figs. 2, 3, 10,
//! 12, 14, 16). Used by the figure-regeneration harness and golden tests.

use crate::ir::*;
use fortrand_ir::Sym;
use std::fmt::Write;

/// Pretty-prints one procedure of `prog`.
pub fn pretty(prog: &SpmdProgram, proc_idx: usize) -> String {
    let p = &prog.procs[proc_idx];
    let mut out = String::new();
    let name = |s: Sym| prog.interner.name(s).to_uppercase();
    if proc_idx == prog.main {
        let _ = writeln!(out, "PROGRAM {}", name(p.name));
    } else {
        let formals: Vec<String> = p.formals.iter().map(|f| name(f.name)).collect();
        let _ = writeln!(out, "SUBROUTINE {}({})", name(p.name), formals.join(","));
    }
    for d in &p.decls {
        let dims: Vec<String> = d
            .bounds
            .iter()
            .map(|&(lo, hi)| {
                if lo == 1 {
                    format!("{hi}")
                } else {
                    format!("{lo}:{hi}")
                }
            })
            .collect();
        let _ = writeln!(out, "REAL {}({})", name(d.name), dims.join(","));
    }
    let mut pr = Printer {
        prog,
        out,
        indent: 0,
    };
    pr.block(&p.body);
    pr.out
}

/// Pretty-prints the whole program, main first.
pub fn pretty_all(prog: &SpmdProgram) -> String {
    let mut order: Vec<usize> = (0..prog.procs.len()).collect();
    order.sort_by_key(|&i| (i != prog.main, i));
    order
        .iter()
        .map(|&i| pretty(prog, i))
        .collect::<Vec<_>>()
        .join("\n")
}

struct Printer<'a> {
    prog: &'a SpmdProgram,
    out: String,
    indent: usize,
}

impl Printer<'_> {
    fn name(&self, s: Sym) -> String {
        self.prog.interner.name(s).to_string()
    }

    fn line(&mut self, text: &str) {
        for _ in 0..self.indent {
            self.out.push_str("  ");
        }
        self.out.push_str(text);
        self.out.push('\n');
    }

    fn block(&mut self, stmts: &[SStmt]) {
        for s in stmts {
            self.stmt(s);
        }
    }

    fn stmt(&mut self, s: &SStmt) {
        match s {
            SStmt::Comment(c) => self.line(&format!("{{ {c} }}")),
            SStmt::Assign { lhs, rhs } => {
                let l = self.lval(lhs);
                let r = self.expr(rhs, 0);
                self.line(&format!("{l} = {r}"));
            }
            SStmt::Do {
                var,
                lo,
                hi,
                step,
                body,
            } => {
                let v = self.name(*var);
                let lo = self.expr(lo, 0);
                let hi = self.expr(hi, 0);
                let head = if *step == 1 {
                    format!("do {v} = {lo},{hi}")
                } else {
                    format!("do {v} = {lo},{hi},{step}")
                };
                self.line(&head);
                self.indent += 1;
                self.block(body);
                self.indent -= 1;
                self.line("enddo");
            }
            SStmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let c = self.expr(cond, 0);
                // Single-statement guard prints on one line, as the paper does.
                if else_body.is_empty() && then_body.len() == 1 && is_simple(&then_body[0]) {
                    let inner = self.render_simple(&then_body[0]);
                    self.line(&format!("if ({c}) {inner}"));
                    return;
                }
                self.line(&format!("if ({c}) then"));
                self.indent += 1;
                self.block(then_body);
                self.indent -= 1;
                if !else_body.is_empty() {
                    self.line("else");
                    self.indent += 1;
                    self.block(else_body);
                    self.indent -= 1;
                }
                self.line("endif");
            }
            SStmt::Call { proc, args, .. } => {
                let callee = self.prog.procs[*proc].name;
                let args: Vec<String> = args
                    .iter()
                    .map(|a| match a {
                        SActual::Array(s) => self.name(*s).to_uppercase(),
                        SActual::Scalar(e) => self.expr(e, 0),
                    })
                    .collect();
                self.line(&format!(
                    "call {}({})",
                    self.name(callee).to_uppercase(),
                    args.join(",")
                ));
            }
            SStmt::Return => self.line("return"),
            SStmt::Send { .. }
            | SStmt::Recv { .. }
            | SStmt::SendElem { .. }
            | SStmt::RecvElem { .. }
            | SStmt::Bcast { .. }
            | SStmt::BcastScalar { .. }
            | SStmt::BcastPack { .. }
            | SStmt::PostSend { .. }
            | SStmt::WaitSend { .. }
            | SStmt::PostRecv { .. }
            | SStmt::WaitRecv { .. }
            | SStmt::PostBcast { .. }
            | SStmt::WaitBcast { .. }
            | SStmt::PostBcastPack { .. }
            | SStmt::WaitBcastPack { .. }
            | SStmt::Remap { .. }
            | SStmt::RemapGlobal { .. }
            | SStmt::MarkDist { .. }
            | SStmt::Stop => {
                let text = self.render_simple(s);
                self.line(&text);
            }
            SStmt::Print { args } => {
                let args: Vec<String> = args.iter().map(|a| self.expr(a, 0)).collect();
                self.line(&format!("print *, {}", args.join(", ")));
            }
        }
    }

    fn is_main_like(&self) -> bool {
        false
    }

    fn render_simple(&mut self, s: &SStmt) -> String {
        let _ = self.is_main_like();
        match s {
            SStmt::Assign { lhs, rhs } => {
                format!("{} = {}", self.lval(lhs), self.expr(rhs, 0))
            }
            SStmt::Send {
                to, array, section, ..
            } => {
                format!(
                    "send {}{} to {}",
                    self.name(*array).to_uppercase(),
                    self.rect(section),
                    self.expr(to, 0)
                )
            }
            SStmt::Recv {
                from,
                array,
                section,
                ..
            } => {
                format!(
                    "recv {}{} from {}",
                    self.name(*array).to_uppercase(),
                    self.rect(section),
                    self.expr(from, 0)
                )
            }
            SStmt::SendElem { to, value, .. } => {
                format!("send {} to {}", self.expr(value, 0), self.expr(to, 0))
            }
            SStmt::RecvElem { from, lhs, .. } => {
                format!("recv {} from {}", self.lval(lhs), self.expr(from, 0))
            }
            SStmt::Bcast {
                root,
                src_array,
                src_section,
                ..
            } => {
                format!(
                    "broadcast {}{} from {}",
                    self.name(*src_array).to_uppercase(),
                    self.rect(src_section),
                    self.expr(root, 0)
                )
            }
            SStmt::BcastScalar { root, var } => {
                format!("broadcast {} from {}", self.name(*var), self.expr(root, 0))
            }
            SStmt::PostSend {
                to, array, section, ..
            } => {
                format!(
                    "post send {}{} to {}",
                    self.name(*array).to_uppercase(),
                    self.rect(section),
                    self.expr(to, 0)
                )
            }
            SStmt::WaitSend { .. } => "wait send".into(),
            SStmt::PostRecv { from, .. } => {
                format!("post recv from {}", self.expr(from, 0))
            }
            SStmt::WaitRecv { array, section, .. } => {
                format!(
                    "wait recv {}{}",
                    self.name(*array).to_uppercase(),
                    self.rect(section)
                )
            }
            SStmt::PostBcast {
                root,
                src_array,
                src_section,
                ..
            } => {
                format!(
                    "post broadcast {}{} from {}",
                    self.name(*src_array).to_uppercase(),
                    self.rect(src_section),
                    self.expr(root, 0)
                )
            }
            SStmt::WaitBcast {
                dst_array,
                dst_section,
                ..
            } => {
                format!(
                    "wait broadcast {}{}",
                    self.name(*dst_array).to_uppercase(),
                    self.rect(dst_section)
                )
            }
            SStmt::PostBcastPack { root, parts, .. } => {
                let items: Vec<String> = parts
                    .iter()
                    .map(|p| match p {
                        BcastPart::Section {
                            src_array,
                            src_section,
                            ..
                        } => {
                            format!(
                                "{}{}",
                                self.name(*src_array).to_uppercase(),
                                self.rect(src_section)
                            )
                        }
                        BcastPart::Scalar(v) => self.name(*v),
                    })
                    .collect();
                format!(
                    "post broadcast [{}] from {}",
                    items.join(", "),
                    self.expr(root, 0)
                )
            }
            SStmt::WaitBcastPack { parts, .. } => {
                let items: Vec<String> = parts
                    .iter()
                    .map(|p| match p {
                        BcastPart::Section {
                            dst_array,
                            dst_section,
                            ..
                        } => {
                            format!(
                                "{}{}",
                                self.name(*dst_array).to_uppercase(),
                                self.rect(dst_section)
                            )
                        }
                        BcastPart::Scalar(v) => self.name(*v),
                    })
                    .collect();
                format!("wait broadcast [{}]", items.join(", "))
            }
            SStmt::BcastPack { root, parts } => {
                let items: Vec<String> = parts
                    .iter()
                    .map(|p| match p {
                        BcastPart::Section {
                            src_array,
                            src_section,
                            ..
                        } => {
                            format!(
                                "{}{}",
                                self.name(*src_array).to_uppercase(),
                                self.rect(src_section)
                            )
                        }
                        BcastPart::Scalar(v) => self.name(*v),
                    })
                    .collect();
                format!(
                    "broadcast [{}] from {}",
                    items.join(", "),
                    self.expr(root, 0)
                )
            }
            SStmt::RemapGlobal { array, to_dist } => {
                let d = &self.prog.dists[to_dist.0 as usize];
                format!(
                    "remap {} to {}",
                    self.name(*array).to_uppercase(),
                    dist_spelling(d)
                )
            }
            SStmt::Remap { array, to_dist } => {
                let d = &self.prog.dists[to_dist.0 as usize];
                format!(
                    "remap {} to {}",
                    self.name(*array).to_uppercase(),
                    dist_spelling(d)
                )
            }
            SStmt::MarkDist { array, to_dist } => {
                let d = &self.prog.dists[to_dist.0 as usize];
                format!(
                    "mark-as-{} {}",
                    dist_spelling(d),
                    self.name(*array).to_uppercase()
                )
            }
            SStmt::Return => "return".into(),
            SStmt::Stop => "stop".into(),
            SStmt::Call { proc, args, .. } => {
                let callee = self.prog.procs[*proc].name;
                let args: Vec<String> = args
                    .iter()
                    .map(|a| match a {
                        SActual::Array(s) => self.name(*s).to_uppercase(),
                        SActual::Scalar(e) => self.expr(e, 0),
                    })
                    .collect();
                format!(
                    "call {}({})",
                    self.name(callee).to_uppercase(),
                    args.join(",")
                )
            }
            _ => "<block>".into(),
        }
    }

    fn rect(&mut self, r: &SRect) -> String {
        let dims: Vec<String> = r
            .dims
            .iter()
            .map(|(lo, hi, step)| {
                let l = self.expr(lo, 0);
                let h = self.expr(hi, 0);
                if l == h {
                    l
                } else if *step == 1 {
                    format!("{l}:{h}")
                } else {
                    format!("{l}:{h}:{step}")
                }
            })
            .collect();
        format!("({})", dims.join(","))
    }

    fn lval(&mut self, l: &SLval) -> String {
        match l {
            SLval::Scalar(s) => self.name(*s),
            SLval::Elem { array, subs } => {
                let subs: Vec<String> = subs.iter().map(|e| self.expr(e, 0)).collect();
                format!("{}({})", self.name(*array).to_uppercase(), subs.join(","))
            }
        }
    }

    /// Precedence-aware expression rendering. `prec` is the context binding
    /// power: 0 lowest (no parens needed), higher forces parens around
    /// looser operators.
    fn expr(&mut self, e: &SExpr, prec: u8) -> String {
        match e {
            SExpr::Int(v) => format!("{v}"),
            SExpr::Real(v) => {
                if *v == v.trunc() && v.abs() < 1e15 {
                    format!("{:.1}", v)
                } else {
                    format!("{v}")
                }
            }
            SExpr::Var(s) => self.name(*s),
            SExpr::MyP => "my$p".into(),
            SExpr::NProcs => "n$proc".into(),
            SExpr::Elem { array, subs } => {
                let subs: Vec<String> = subs.iter().map(|x| self.expr(x, 0)).collect();
                format!("{}({})", self.name(*array).to_uppercase(), subs.join(","))
            }
            SExpr::Bin { op, l, r } => {
                let (sym, p, dotted) = match op {
                    SBinOp::Or => (".or.", 1, true),
                    SBinOp::And => (".and.", 2, true),
                    SBinOp::Lt => (".lt.", 3, true),
                    SBinOp::Le => (".le.", 3, true),
                    SBinOp::Gt => (".gt.", 3, true),
                    SBinOp::Ge => (".ge.", 3, true),
                    SBinOp::Eq => (".eq.", 3, true),
                    SBinOp::Ne => (".ne.", 3, true),
                    SBinOp::Add => ("+", 4, false),
                    SBinOp::Sub => ("-", 4, false),
                    SBinOp::Mul => ("*", 5, false),
                    SBinOp::Div => ("/", 5, false),
                    SBinOp::Pow => ("**", 6, false),
                };
                let ls = self.expr(l, p);
                let rs = self.expr(r, p + 1);
                let body = if dotted {
                    format!("{ls} {sym} {rs}")
                } else {
                    format!("{ls}{sym}{rs}")
                };
                if p < prec {
                    format!("({body})")
                } else {
                    body
                }
            }
            SExpr::Neg(x) => format!("-{}", self.expr(x, 6)),
            SExpr::Not(x) => format!(".not. {}", self.expr(x, 6)),
            SExpr::Intr { name, args } => {
                let n = match name {
                    SIntr::Abs => "abs",
                    SIntr::Min => "min",
                    SIntr::Max => "max",
                    SIntr::Mod => "mod",
                    SIntr::Sqrt => "sqrt",
                    SIntr::Sign => "sign",
                };
                let args: Vec<String> = args.iter().map(|a| self.expr(a, 0)).collect();
                format!("{n}({})", args.join(","))
            }
            SExpr::Owner { subs, .. } => {
                let subs: Vec<String> = subs.iter().map(|a| self.expr(a, 0)).collect();
                format!("owner({})", subs.join(","))
            }
            SExpr::CurOwner { array, subs } => {
                let subs: Vec<String> = subs.iter().map(|a| self.expr(a, 0)).collect();
                format!("owner({}({}))", self.name(*array), subs.join(","))
            }
            SExpr::LocalIdx { sub, .. } => {
                format!("local({})", self.expr(sub, 0))
            }
        }
    }
}

fn is_simple(s: &SStmt) -> bool {
    matches!(
        s,
        SStmt::Assign { .. }
            | SStmt::Send { .. }
            | SStmt::Recv { .. }
            | SStmt::SendElem { .. }
            | SStmt::RecvElem { .. }
            | SStmt::Bcast { .. }
            | SStmt::BcastScalar { .. }
            | SStmt::BcastPack { .. }
            | SStmt::PostSend { .. }
            | SStmt::WaitSend { .. }
            | SStmt::PostRecv { .. }
            | SStmt::WaitRecv { .. }
            | SStmt::PostBcast { .. }
            | SStmt::WaitBcast { .. }
            | SStmt::PostBcastPack { .. }
            | SStmt::WaitBcastPack { .. }
            | SStmt::Remap { .. }
            | SStmt::RemapGlobal { .. }
            | SStmt::MarkDist { .. }
            | SStmt::Return
            | SStmt::Stop
            | SStmt::Call { .. }
    )
}

fn dist_spelling(d: &fortrand_ir::dist::ArrayDist) -> String {
    let parts: Vec<String> = d
        .dims
        .iter()
        .map(|p| p.kind.spelling().to_lowercase())
        .collect();
    format!("({})", parts.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fortrand_ir::dist::{Alignment, ArrayDist, DistKind, Distribution};
    use fortrand_ir::Interner;

    /// Builds the paper's Figure 2 output by hand and checks the rendering.
    #[test]
    fn renders_fig2_shape() {
        let mut int = Interner::new();
        let f1 = int.intern("f1");
        let x = int.intern("x");
        let i = int.intern("i");
        let ub1 = int.intern("ub$1");
        let dist = Distribution {
            kinds: vec![DistKind::Block],
            nprocs: 4,
        };
        let ad = ArrayDist::new(&[100], &Alignment::identity(1), &[100], &dist);
        let mut prog = SpmdProgram {
            interner: int,
            nprocs: 4,
            procs: vec![],
            main: usize::MAX,
            dists: vec![],
        };
        let did = prog.add_dist(ad);
        let body = vec![
            SStmt::Assign {
                lhs: SLval::Scalar(ub1),
                rhs: SExpr::sub(
                    SExpr::min2(
                        SExpr::mul(SExpr::add(SExpr::MyP, SExpr::int(1)), SExpr::int(25)),
                        SExpr::int(95),
                    ),
                    SExpr::mul(SExpr::MyP, SExpr::int(25)),
                ),
            },
            SStmt::If {
                cond: SExpr::bin(SBinOp::Gt, SExpr::MyP, SExpr::int(0)),
                then_body: vec![SStmt::Send {
                    to: SExpr::sub(SExpr::MyP, SExpr::int(1)),
                    tag: 0,
                    array: x,
                    section: SRect::one(SExpr::int(1), SExpr::int(5)),
                }],
                else_body: vec![],
            },
            SStmt::If {
                cond: SExpr::bin(SBinOp::Lt, SExpr::MyP, SExpr::int(3)),
                then_body: vec![SStmt::Recv {
                    from: SExpr::add(SExpr::MyP, SExpr::int(1)),
                    tag: 0,
                    array: x,
                    section: SRect::one(SExpr::int(26), SExpr::int(30)),
                }],
                else_body: vec![],
            },
            SStmt::Do {
                var: i,
                lo: SExpr::int(1),
                hi: SExpr::Var(ub1),
                step: 1,
                body: vec![SStmt::Assign {
                    lhs: SLval::Elem {
                        array: x,
                        subs: vec![SExpr::Var(i)],
                    },
                    rhs: SExpr::mul(
                        SExpr::Real(0.5),
                        SExpr::Elem {
                            array: x,
                            subs: vec![SExpr::add(SExpr::Var(i), SExpr::int(5))],
                        },
                    ),
                }],
            },
        ];
        prog.procs.push(SProc {
            name: f1,
            formals: vec![SFormal {
                name: x,
                is_array: true,
            }],
            decls: vec![SDecl {
                name: x,
                bounds: vec![(1, 30)],
                dist: did,
                owner_dist: None,
            }],
            body,
        });
        let text = pretty(&prog, 0);
        let expect = "\
SUBROUTINE F1(X)
REAL X(30)
ub$1 = min((my$p+1)*25,95)-my$p*25
if (my$p .gt. 0) send X(1:5) to my$p-1
if (my$p .lt. 3) recv X(26:30) from my$p+1
do i = 1,ub$1
  X(i) = 0.5*X(i+5)
enddo
";
        assert_eq!(text, expect);
    }

    #[test]
    fn precedence_parens() {
        let int = Interner::new();
        let prog = SpmdProgram {
            interner: int,
            nprocs: 1,
            procs: vec![],
            main: usize::MAX,
            dists: vec![],
        };
        let mut pr = Printer {
            prog: &prog,
            out: String::new(),
            indent: 0,
        };
        // (a+b)*c needs parens; a+b*c does not.
        let e1 = SExpr::mul(SExpr::add(SExpr::MyP, SExpr::int(1)), SExpr::int(2));
        assert_eq!(pr.expr(&e1, 0), "(my$p+1)*2");
        let e2 = SExpr::add(SExpr::MyP, SExpr::mul(SExpr::int(2), SExpr::int(3)));
        assert_eq!(pr.expr(&e2, 0), "my$p+2*3");
        // Left-assoc subtraction: a-(b-c) parenthesized.
        let e3 = SExpr::sub(SExpr::int(9), SExpr::sub(SExpr::int(5), SExpr::int(2)));
        assert_eq!(pr.expr(&e3, 0), "9-(5-2)");
    }
}
