//! # fortrand-spmd
//!
//! The *output* language of the Fortran D compiler: SPMD node programs with
//! explicit message passing, plus a pretty printer (for the paper's figure
//! reproductions) and an interpreter that executes node programs on the
//! [`fortrand_machine`] simulator.
//!
//! A [`ir::SpmdProgram`] is what every compilation strategy produces:
//!
//! * the **interprocedural** strategy emits reduced loop bounds, guards
//!   hoisted to callers, and vectorized section sends/recvs (paper Fig. 10);
//! * the **immediate-instantiation** strategy emits the same constructs but
//!   confined inside each procedure (Fig. 12);
//! * the **run-time resolution** strategy emits per-element ownership tests
//!   and element messages (Fig. 3).
//!
//! The interpreter charges computation and communication to the simulated
//! machine's virtual clocks, so `Machine::run` of an interpreted program
//! yields the execution time, message count and volume that the benchmark
//! harness reports.
//!
//! Three [`ExecBackend`]s execute node programs — the bytecode VM
//! (default; programs are flattened by [`lower`] and run by [`vm`]), the
//! reference tree-walker ([`interp`]), and the native backend
//! ([`codegen`]), which pretty-prints the program as standalone Rust,
//! builds it with `rustc` against the `fortrand-shim` runtime crate, and
//! runs it for real. All three produce identical program-defined
//! observables; pick one with [`ExecOptions::backend`].

pub mod codegen;
pub mod interp;
pub mod ir;
mod lower;
pub mod opt;
pub mod print;
pub mod rewrite;
mod runtime;
mod vm;

pub use codegen::Native;
pub use ir::{
    DistId, SActual, SBinOp, SDecl, SExpr, SIntr, SLval, SProc, SRect, SStmt, SpmdProgram,
};
pub use opt::{optimize, CommOpt, OptReport};
pub use print::pretty;
#[cfg(feature = "legacy")]
pub use runtime::{run_spmd, run_spmd_engine};
pub use runtime::{
    try_run_spmd, Bytecode, ExecBackend, ExecEngine, ExecError, ExecOptions, ExecOutput,
    MachineKind, RankFailure, RunOutcome, Tree,
};

// Compile-time thread-safety audit: compiled node programs are cached in
// the shared artifact store and executed from server threads, so the IR
// (and a rank failure carried across a join) must stay Send + Sync.
const fn assert_send_sync<T: Send + Sync>() {}
const _: () = assert_send_sync::<ir::SpmdProgram>();
const _: () = assert_send_sync::<runtime::RunOutcome>();
const _: () = assert_send_sync::<runtime::ExecOptions>();
const _: () = assert_send_sync::<runtime::ExecError>();
const _: () = assert_send_sync::<runtime::RankFailure>();
