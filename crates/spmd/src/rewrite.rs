//! Symbol / distribution-id / procedure-index remapping over SPMD
//! procedures.
//!
//! The wavefront-parallel code generator compiles each unit into a private
//! scratch [`SpmdProgram`] seeded with a snapshot of the merged program's
//! interner and distribution table. Symbols and distributions created
//! *during* that unit's compilation get scratch-local ids; when the unit is
//! merged back (in deterministic reverse-topological order), this module
//! rewrites its emitted procedure over the scratch→merged maps. The
//! incremental driver reuses the same traversal to graft cached procedures
//! from a previous compilation into a fresh program.

use crate::ir::{DistId, SActual, SDecl, SExpr, SLval, SProc, SRect, SStmt};
use fortrand_ir::Sym;

/// The three id maps a remap applies. Each is total over the ids appearing
/// in the procedure being rewritten.
pub struct ProcRemap<'a> {
    /// Symbol map (identity for symbols shared with the target program).
    pub sym: &'a dyn Fn(Sym) -> Sym,
    /// Distribution-id map.
    pub dist: &'a dyn Fn(DistId) -> DistId,
    /// Procedure-index map for `SStmt::Call::proc`.
    pub proc: &'a dyn Fn(usize) -> usize,
}

/// Rewrites every `Sym`, `DistId` and callee index in `p` in place.
pub fn remap_proc(p: &mut SProc, m: &ProcRemap) {
    p.name = (m.sym)(p.name);
    for f in &mut p.formals {
        f.name = (m.sym)(f.name);
    }
    for d in &mut p.decls {
        remap_decl(d, m);
    }
    remap_body(&mut p.body, m);
}

fn remap_decl(d: &mut SDecl, m: &ProcRemap) {
    d.name = (m.sym)(d.name);
    d.dist = (m.dist)(d.dist);
    if let Some(od) = &mut d.owner_dist {
        *od = (m.dist)(*od);
    }
}

fn remap_body(body: &mut [SStmt], m: &ProcRemap) {
    for s in body {
        remap_stmt(s, m);
    }
}

fn remap_stmt(s: &mut SStmt, m: &ProcRemap) {
    match s {
        SStmt::Comment(_) | SStmt::Return | SStmt::Stop => {}
        SStmt::Assign { lhs, rhs } => {
            remap_lval(lhs, m);
            remap_expr(rhs, m);
        }
        SStmt::Do {
            var,
            lo,
            hi,
            step: _,
            body,
        } => {
            *var = (m.sym)(*var);
            remap_expr(lo, m);
            remap_expr(hi, m);
            remap_body(body, m);
        }
        SStmt::If {
            cond,
            then_body,
            else_body,
        } => {
            remap_expr(cond, m);
            remap_body(then_body, m);
            remap_body(else_body, m);
        }
        SStmt::Call {
            proc,
            args,
            copy_out,
        } => {
            *proc = (m.proc)(*proc);
            for a in args {
                match a {
                    SActual::Array(s) => *s = (m.sym)(*s),
                    SActual::Scalar(e) => remap_expr(e, m),
                }
            }
            for (a, b) in copy_out {
                *a = (m.sym)(*a);
                *b = (m.sym)(*b);
            }
        }
        SStmt::Send {
            to,
            tag: _,
            array,
            section,
        } => {
            remap_expr(to, m);
            *array = (m.sym)(*array);
            remap_rect(section, m);
        }
        SStmt::Recv {
            from,
            tag: _,
            array,
            section,
        } => {
            remap_expr(from, m);
            *array = (m.sym)(*array);
            remap_rect(section, m);
        }
        SStmt::SendElem { to, tag: _, value } => {
            remap_expr(to, m);
            remap_expr(value, m);
        }
        SStmt::RecvElem { from, tag: _, lhs } => {
            remap_expr(from, m);
            remap_lval(lhs, m);
        }
        SStmt::Bcast {
            root,
            src_array,
            src_section,
            dst_array,
            dst_section,
        } => {
            remap_expr(root, m);
            *src_array = (m.sym)(*src_array);
            remap_rect(src_section, m);
            *dst_array = (m.sym)(*dst_array);
            remap_rect(dst_section, m);
        }
        SStmt::BcastScalar { root, var } => {
            remap_expr(root, m);
            *var = (m.sym)(*var);
        }
        SStmt::BcastPack { root, parts } => {
            remap_expr(root, m);
            for p in parts {
                match p {
                    crate::ir::BcastPart::Section {
                        src_array,
                        src_section,
                        dst_array,
                        dst_section,
                    } => {
                        *src_array = (m.sym)(*src_array);
                        remap_rect(src_section, m);
                        *dst_array = (m.sym)(*dst_array);
                        remap_rect(dst_section, m);
                    }
                    crate::ir::BcastPart::Scalar(v) => *v = (m.sym)(*v),
                }
            }
        }
        SStmt::PostSend {
            to,
            tag: _,
            array,
            section,
            handle: _,
        } => {
            remap_expr(to, m);
            *array = (m.sym)(*array);
            remap_rect(section, m);
        }
        SStmt::WaitSend { .. } => {}
        SStmt::PostRecv {
            from,
            tag: _,
            handle: _,
        } => remap_expr(from, m),
        SStmt::WaitRecv {
            array,
            section,
            handle: _,
        } => {
            *array = (m.sym)(*array);
            remap_rect(section, m);
        }
        SStmt::PostBcast {
            root,
            src_array,
            src_section,
            handle: _,
        } => {
            remap_expr(root, m);
            *src_array = (m.sym)(*src_array);
            remap_rect(src_section, m);
        }
        SStmt::WaitBcast {
            dst_array,
            dst_section,
            handle: _,
        } => {
            *dst_array = (m.sym)(*dst_array);
            remap_rect(dst_section, m);
        }
        SStmt::PostBcastPack { root, parts, .. } => {
            remap_expr(root, m);
            for p in parts {
                match p {
                    crate::ir::BcastPart::Section {
                        src_array,
                        src_section,
                        dst_array,
                        dst_section,
                    } => {
                        *src_array = (m.sym)(*src_array);
                        remap_rect(src_section, m);
                        *dst_array = (m.sym)(*dst_array);
                        remap_rect(dst_section, m);
                    }
                    crate::ir::BcastPart::Scalar(v) => *v = (m.sym)(*v),
                }
            }
        }
        SStmt::WaitBcastPack { parts, .. } => {
            for p in parts {
                match p {
                    crate::ir::BcastPart::Section {
                        src_array,
                        src_section,
                        dst_array,
                        dst_section,
                    } => {
                        *src_array = (m.sym)(*src_array);
                        remap_rect(src_section, m);
                        *dst_array = (m.sym)(*dst_array);
                        remap_rect(dst_section, m);
                    }
                    crate::ir::BcastPart::Scalar(v) => *v = (m.sym)(*v),
                }
            }
        }
        SStmt::Remap { array, to_dist }
        | SStmt::RemapGlobal { array, to_dist }
        | SStmt::MarkDist { array, to_dist } => {
            *array = (m.sym)(*array);
            *to_dist = (m.dist)(*to_dist);
        }
        SStmt::Print { args } => {
            for e in args {
                remap_expr(e, m);
            }
        }
    }
}

fn remap_lval(l: &mut SLval, m: &ProcRemap) {
    match l {
        SLval::Scalar(s) => *s = (m.sym)(*s),
        SLval::Elem { array, subs } => {
            *array = (m.sym)(*array);
            for e in subs {
                remap_expr(e, m);
            }
        }
    }
}

fn remap_rect(r: &mut SRect, m: &ProcRemap) {
    for (lo, hi, _step) in &mut r.dims {
        remap_expr(lo, m);
        remap_expr(hi, m);
    }
}

fn remap_expr(e: &mut SExpr, m: &ProcRemap) {
    match e {
        SExpr::Int(_) | SExpr::Real(_) | SExpr::MyP | SExpr::NProcs => {}
        SExpr::Var(s) => *s = (m.sym)(*s),
        SExpr::Elem { array, subs } => {
            *array = (m.sym)(*array);
            for sub in subs {
                remap_expr(sub, m);
            }
        }
        SExpr::Bin { op: _, l, r } => {
            remap_expr(l, m);
            remap_expr(r, m);
        }
        SExpr::Neg(inner) | SExpr::Not(inner) => remap_expr(inner, m),
        SExpr::Intr { name: _, args } => {
            for a in args {
                remap_expr(a, m);
            }
        }
        SExpr::Owner { dist, subs } => {
            *dist = (m.dist)(*dist);
            for sub in subs {
                remap_expr(sub, m);
            }
        }
        SExpr::CurOwner { array, subs } => {
            *array = (m.sym)(*array);
            for sub in subs {
                remap_expr(sub, m);
            }
        }
        SExpr::LocalIdx { dist, dim: _, sub } => {
            *dist = (m.dist)(*dist);
            remap_expr(sub, m);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::SFormal;

    #[test]
    fn remap_touches_every_id_site() {
        let bump_sym = |s: Sym| Sym(s.0 + 100);
        let bump_dist = |d: DistId| DistId(d.0 + 50);
        let bump_proc = |p: usize| p + 7;
        let m = ProcRemap {
            sym: &bump_sym,
            dist: &bump_dist,
            proc: &bump_proc,
        };

        let mut p = SProc {
            name: Sym(1),
            formals: vec![SFormal {
                name: Sym(2),
                is_array: true,
            }],
            decls: vec![SDecl {
                name: Sym(3),
                bounds: vec![(1, 4)],
                dist: DistId(0),
                owner_dist: Some(DistId(1)),
            }],
            body: vec![
                SStmt::Assign {
                    lhs: SLval::Elem {
                        array: Sym(3),
                        subs: vec![SExpr::Var(Sym(4))],
                    },
                    rhs: SExpr::Owner {
                        dist: DistId(2),
                        subs: vec![SExpr::MyP],
                    },
                },
                SStmt::Do {
                    var: Sym(5),
                    lo: SExpr::int(1),
                    hi: SExpr::LocalIdx {
                        dist: DistId(3),
                        dim: 0,
                        sub: Box::new(SExpr::Var(Sym(6))),
                    },
                    step: 1,
                    body: vec![SStmt::Call {
                        proc: 2,
                        args: vec![SActual::Array(Sym(7)), SActual::Scalar(SExpr::Var(Sym(8)))],
                        copy_out: vec![(Sym(9), Sym(10))],
                    }],
                },
                SStmt::Remap {
                    array: Sym(11),
                    to_dist: DistId(4),
                },
            ],
        };
        remap_proc(&mut p, &m);
        assert_eq!(p.name, Sym(101));
        assert_eq!(p.formals[0].name, Sym(102));
        assert_eq!(p.decls[0].dist, DistId(50));
        assert_eq!(p.decls[0].owner_dist, Some(DistId(51)));
        match &p.body[0] {
            SStmt::Assign {
                lhs: SLval::Elem { array, subs },
                rhs: SExpr::Owner { dist, .. },
            } => {
                assert_eq!(*array, Sym(103));
                assert_eq!(subs[0], SExpr::Var(Sym(104)));
                assert_eq!(*dist, DistId(52));
            }
            other => panic!("unexpected {other:?}"),
        }
        match &p.body[1] {
            SStmt::Do {
                var,
                hi: SExpr::LocalIdx { dist, .. },
                body,
                ..
            } => {
                assert_eq!(*var, Sym(105));
                assert_eq!(*dist, DistId(53));
                match &body[0] {
                    SStmt::Call {
                        proc,
                        args,
                        copy_out,
                    } => {
                        assert_eq!(*proc, 9);
                        assert_eq!(args[0], SActual::Array(Sym(107)));
                        assert_eq!(copy_out[0], (Sym(109), Sym(110)));
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
        match &p.body[2] {
            SStmt::Remap { array, to_dist } => {
                assert_eq!(*array, Sym(111));
                assert_eq!(*to_dist, DistId(54));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
