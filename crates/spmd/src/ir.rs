//! SPMD node-program IR.
//!
//! The program is "single program, multiple data": every node executes the
//! same procedures, parameterized by `my$p` ([`SExpr::MyP`]). Arrays are
//! declared with explicit (possibly overlap-extended) local bounds; section
//! communication is expressed in *local* index space; run-time resolution
//! constructs ([`SExpr::Owner`], [`SExpr::LocalIdx`]) consult a distribution
//! table carried by the program.

use fortrand_ir::dist::ArrayDist;
use fortrand_ir::{Interner, Sym};

/// Index into [`SpmdProgram::dists`] — a compile-time-known distribution.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct DistId(pub u32);

/// A complete SPMD program.
#[derive(Debug, Clone)]
pub struct SpmdProgram {
    /// Identifier names (shared with the front end).
    pub interner: Interner,
    /// Number of processors the program was compiled for.
    pub nprocs: usize,
    /// All node procedures; `procs[main]` is the entry.
    pub procs: Vec<SProc>,
    /// Entry procedure index.
    pub main: usize,
    /// Distribution table referenced by `DistId`s.
    pub dists: Vec<ArrayDist>,
}

impl SpmdProgram {
    /// Finds a procedure by name.
    pub fn proc_index(&self, name: Sym) -> Option<usize> {
        self.procs.iter().position(|p| p.name == name)
    }

    /// Registers a distribution, returning its id (deduplicating).
    pub fn add_dist(&mut self, d: ArrayDist) -> DistId {
        if let Some(i) = self.dists.iter().position(|x| *x == d) {
            return DistId(i as u32);
        }
        self.dists.push(d);
        DistId(self.dists.len() as u32 - 1)
    }
}

/// One node procedure.
#[derive(Debug, Clone)]
pub struct SProc {
    /// Procedure name (clones get suffixed names like `f1$row`).
    pub name: Sym,
    /// Formal parameter names, in order.
    pub formals: Vec<SFormal>,
    /// Local array declarations (formals re-declared here get their local
    /// bounds from the caller's storage and must not appear).
    pub decls: Vec<SDecl>,
    /// Body.
    pub body: Vec<SStmt>,
}

/// A formal parameter of a node procedure.
#[derive(Debug, Clone, PartialEq)]
pub struct SFormal {
    /// Name within the procedure.
    pub name: Sym,
    /// True if the formal is an array (passed by reference); false for
    /// scalars (passed by value).
    pub is_array: bool,
}

/// A local array declaration with explicit per-dimension bounds
/// `lo:hi` — overlap areas widen these (e.g. `X(1:30)` in Fig. 2).
#[derive(Debug, Clone, PartialEq)]
pub struct SDecl {
    /// Array name.
    pub name: Sym,
    /// Inclusive local bounds per dimension.
    pub bounds: Vec<(i64, i64)>,
    /// Distribution the local bounds were derived from (used by the
    /// interpreter for initial scatter / final gather and by run-time
    /// resolution expressions).
    pub dist: DistId,
    /// Run-time resolution storage mode: when set, `bounds` cover the whole
    /// global array on every rank (each rank holds a full-size copy, with
    /// only the owner's elements authoritative per this distribution).
    /// Initial scatter fills every rank; the final gather reads each
    /// element from its owner at *global* indices.
    pub owner_dist: Option<DistId>,
}

/// Binary operators (arithmetic on simulated REALs, integer arithmetic on
/// loop/index values, comparisons, logical connectives).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[allow(missing_docs)]
pub enum SBinOp {
    Add,
    Sub,
    Mul,
    Div,
    Pow,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    And,
    Or,
}

/// Intrinsics available to node programs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[allow(missing_docs)]
pub enum SIntr {
    Abs,
    Min,
    Max,
    Mod,
    Sqrt,
    Sign,
}

/// Expressions.
#[derive(Clone, Debug, PartialEq)]
pub enum SExpr {
    /// Integer literal.
    Int(i64),
    /// Real literal.
    Real(f64),
    /// Scalar variable (formal, local scalar, loop index).
    Var(Sym),
    /// `my$p` — this node's rank.
    MyP,
    /// `n$proc` — total ranks.
    NProcs,
    /// Array element in *local* index space.
    Elem {
        /// Array.
        array: Sym,
        /// Local subscripts.
        subs: Vec<SExpr>,
    },
    /// Binary operation.
    Bin {
        /// Operator.
        op: SBinOp,
        /// Left operand.
        l: Box<SExpr>,
        /// Right operand.
        r: Box<SExpr>,
    },
    /// Arithmetic negation.
    Neg(Box<SExpr>),
    /// Logical negation.
    Not(Box<SExpr>),
    /// Intrinsic call.
    Intr {
        /// Which intrinsic.
        name: SIntr,
        /// Arguments.
        args: Vec<SExpr>,
    },
    /// Run-time resolution: owner rank of the element with the given
    /// *global* subscripts under distribution `dist`.
    Owner {
        /// Distribution consulted.
        dist: DistId,
        /// Global subscripts.
        subs: Vec<SExpr>,
    },
    /// Run-time resolution: owner rank of the element under the array's
    /// *current* distribution (tracked at run time across `RemapGlobal`).
    CurOwner {
        /// The array whose current owner distribution is consulted.
        array: Sym,
        /// Global subscripts.
        subs: Vec<SExpr>,
    },
    /// Run-time resolution: local index (dimension `dim`) of a global
    /// subscript under `dist`.
    LocalIdx {
        /// Distribution consulted.
        dist: DistId,
        /// Dimension.
        dim: usize,
        /// Global subscript.
        sub: Box<SExpr>,
    },
}

#[allow(clippy::should_implement_trait)] // add/sub/mul are builder helpers, not ops
impl SExpr {
    /// Integer literal helper.
    pub fn int(v: i64) -> SExpr {
        SExpr::Int(v)
    }
    /// Binary helper.
    pub fn bin(op: SBinOp, l: SExpr, r: SExpr) -> SExpr {
        SExpr::Bin {
            op,
            l: Box::new(l),
            r: Box::new(r),
        }
    }
    /// `l + r`.
    pub fn add(l: SExpr, r: SExpr) -> SExpr {
        Self::bin(SBinOp::Add, l, r)
    }
    /// `l - r`.
    pub fn sub(l: SExpr, r: SExpr) -> SExpr {
        Self::bin(SBinOp::Sub, l, r)
    }
    /// `l * r`.
    pub fn mul(l: SExpr, r: SExpr) -> SExpr {
        Self::bin(SBinOp::Mul, l, r)
    }
    /// `min(a, b)`.
    pub fn min2(a: SExpr, b: SExpr) -> SExpr {
        SExpr::Intr {
            name: SIntr::Min,
            args: vec![a, b],
        }
    }
    /// `max(a, b)`.
    pub fn max2(a: SExpr, b: SExpr) -> SExpr {
        SExpr::Intr {
            name: SIntr::Max,
            args: vec![a, b],
        }
    }
}

/// Assignment targets.
#[derive(Clone, Debug, PartialEq)]
pub enum SLval {
    /// Scalar.
    Scalar(Sym),
    /// Array element (local index space).
    Elem {
        /// Array.
        array: Sym,
        /// Local subscripts.
        subs: Vec<SExpr>,
    },
}

/// A rectangular section in local index space, `lo:hi:step` per dimension.
#[derive(Clone, Debug, PartialEq)]
pub struct SRect {
    /// Per-dimension bounds (inclusive) and step.
    pub dims: Vec<(SExpr, SExpr, i64)>,
}

impl SRect {
    /// A one-dimensional section.
    pub fn one(lo: SExpr, hi: SExpr) -> SRect {
        SRect {
            dims: vec![(lo, hi, 1)],
        }
    }
}

/// Actual arguments at call sites.
#[derive(Clone, Debug, PartialEq)]
pub enum SActual {
    /// Pass an array by reference.
    Array(Sym),
    /// Pass a scalar by value.
    Scalar(SExpr),
}

/// One constituent of a packed broadcast ([`SStmt::BcastPack`]).
#[derive(Clone, Debug, PartialEq)]
pub enum BcastPart {
    /// A section broadcast: the root gathers `src_array[src_section]`;
    /// every rank scatters that slice of the payload into
    /// `dst_array[dst_section]`.
    Section {
        /// Source array (root side).
        src_array: Sym,
        /// Source section, local index space of the root.
        src_section: SRect,
        /// Destination array (all ranks).
        dst_array: Sym,
        /// Destination section.
        dst_section: SRect,
    },
    /// A scalar broadcast: one payload element.
    Scalar(Sym),
}

/// Statements.
#[derive(Clone, Debug, PartialEq)]
pub enum SStmt {
    /// Pretty-printer-visible comment (e.g. `{ phase banners }`).
    Comment(String),
    /// `lhs = rhs`.
    Assign {
        /// Target.
        lhs: SLval,
        /// Value.
        rhs: SExpr,
    },
    /// Counted loop, inclusive bounds.
    Do {
        /// Index variable.
        var: Sym,
        /// Lower bound.
        lo: SExpr,
        /// Upper bound.
        hi: SExpr,
        /// Step.
        step: i64,
        /// Body.
        body: Vec<SStmt>,
    },
    /// Conditional.
    If {
        /// Condition.
        cond: SExpr,
        /// Then branch.
        then_body: Vec<SStmt>,
        /// Else branch.
        else_body: Vec<SStmt>,
    },
    /// Call a node procedure.
    Call {
        /// Callee index into [`SpmdProgram::procs`].
        proc: usize,
        /// Actuals.
        args: Vec<SActual>,
        /// Fortran copy-out: after return, copy each listed scalar formal's
        /// final value back into the caller's scalar.
        copy_out: Vec<(Sym, Sym)>,
    },
    /// Return from the current procedure.
    Return,
    /// Vectorized section send: gathers `array[section]` (local indices)
    /// and ships one message.
    Send {
        /// Destination rank.
        to: SExpr,
        /// Message tag.
        tag: u64,
        /// Source array.
        array: Sym,
        /// Section (local index space).
        section: SRect,
    },
    /// Matching receive: scatters into `array[section]`.
    Recv {
        /// Source rank.
        from: SExpr,
        /// Message tag.
        tag: u64,
        /// Destination array.
        array: Sym,
        /// Section (local index space).
        section: SRect,
    },
    /// Run-time resolution element send.
    SendElem {
        /// Destination rank.
        to: SExpr,
        /// Tag.
        tag: u64,
        /// Value sent.
        value: SExpr,
    },
    /// Run-time resolution element receive.
    RecvElem {
        /// Source rank.
        from: SExpr,
        /// Tag.
        tag: u64,
        /// Where the value lands.
        lhs: SLval,
    },
    /// Collective broadcast: the root gathers `src_array[src_section]`
    /// (evaluated on the root only) and every rank — root included —
    /// scatters the payload into `dst_array[dst_section]`. Used for pinned
    /// column/row broadcasts (dgefa's pivot column) and run-time
    /// resolution of replicated reads.
    Bcast {
        /// Root rank.
        root: SExpr,
        /// Source array (root side).
        src_array: Sym,
        /// Source section, local index space of the root.
        src_section: SRect,
        /// Destination array (all ranks).
        dst_array: Sym,
        /// Destination section.
        dst_section: SRect,
    },
    /// Broadcast one scalar variable from `root` to every rank.
    BcastScalar {
        /// Root rank.
        root: SExpr,
        /// The scalar.
        var: Sym,
    },
    /// Coalesced broadcast: the payloads of several broadcasts with the same
    /// root are packed into one message (one α instead of several). Produced
    /// by the communication optimizer ([`crate::opt`]); never emitted
    /// directly by codegen.
    BcastPack {
        /// Root rank (shared by every part).
        root: SExpr,
        /// Constituent broadcasts, packed in order.
        parts: Vec<BcastPart>,
    },
    /// Nonblocking half of [`SStmt::Send`]: gathers `array[section]` and
    /// posts the message immediately (the sender is charged the message
    /// startup α only; the per-byte cost overlaps with subsequent compute).
    /// Produced by the `overlap` communication-optimizer level; every
    /// `PostSend` is paired with exactly one later [`SStmt::WaitSend`] with
    /// the same handle, and at most one post per handle is outstanding.
    PostSend {
        /// Static handle pairing this post with its wait.
        handle: u32,
        /// Destination rank.
        to: SExpr,
        /// Message tag.
        tag: u64,
        /// Source array.
        array: Sym,
        /// Section (local index space).
        section: SRect,
    },
    /// Completion point of a [`SStmt::PostSend`]. The payload was captured
    /// at the post, so this is pure bookkeeping (frees the handle).
    WaitSend {
        /// Handle of the matching post.
        handle: u32,
    },
    /// Nonblocking half of [`SStmt::Recv`]: records the (rank, tag) to
    /// match, evaluated at the post point. The message is consumed at the
    /// matching [`SStmt::WaitRecv`].
    PostRecv {
        /// Static handle pairing this post with its wait.
        handle: u32,
        /// Source rank.
        from: SExpr,
        /// Message tag.
        tag: u64,
    },
    /// Completion point of a [`SStmt::PostRecv`]: blocks until the posted
    /// message is available and scatters it into `array[section]`.
    WaitRecv {
        /// Handle of the matching post.
        handle: u32,
        /// Destination array.
        array: Sym,
        /// Section (local index space).
        section: SRect,
    },
    /// Nonblocking half of [`SStmt::Bcast`]: the root gathers
    /// `src_array[src_section]` and posts the broadcast (charged α on the
    /// root; the tree latency overlaps with compute on every rank). The
    /// matching [`SStmt::WaitBcast`] scatters on all ranks. Executed by
    /// every rank (the post advances each rank's collective sequence
    /// number), so the optimizer only emits it under replicated guards.
    PostBcast {
        /// Static handle pairing this post with its wait.
        handle: u32,
        /// Root rank.
        root: SExpr,
        /// Source array (root side).
        src_array: Sym,
        /// Source section, local index space of the root.
        src_section: SRect,
    },
    /// Completion point of a [`SStmt::PostBcast`]: every rank blocks until
    /// the posted payload is complete, then scatters it into
    /// `dst_array[dst_section]`.
    WaitBcast {
        /// Handle of the matching post.
        handle: u32,
        /// Destination array (all ranks).
        dst_array: Sym,
        /// Destination section.
        dst_section: SRect,
    },
    /// Nonblocking half of [`SStmt::BcastPack`]: the root packs every
    /// part's source payload and posts one message. `parts` is shared with
    /// the matching wait (the post reads the `src_*` fields only).
    PostBcastPack {
        /// Static handle pairing this post with its wait.
        handle: u32,
        /// Root rank (shared by every part).
        root: SExpr,
        /// Constituent broadcasts, packed in order.
        parts: Vec<BcastPart>,
    },
    /// Completion point of a [`SStmt::PostBcastPack`]: every rank blocks
    /// for the packed payload and unpacks each part into its destination
    /// (the wait reads the `dst_*` fields only).
    WaitBcastPack {
        /// Handle of the matching post.
        handle: u32,
        /// Constituent broadcasts, unpacked in order.
        parts: Vec<BcastPart>,
    },
    /// Dynamic data decomposition: remap `array` to `to_dist`, moving data
    /// between nodes (charged as messages + a remap call).
    Remap {
        /// Array to remap.
        array: Sym,
        /// New distribution.
        to_dist: DistId,
    },
    /// Run-time resolution remap: storage stays global-shaped on every
    /// rank; authoritative values move from old owners to new owners and
    /// the array's owner distribution is updated.
    RemapGlobal {
        /// Array to remap.
        array: Sym,
        /// New owner distribution.
        to_dist: DistId,
    },
    /// Array-kill optimized remap: mark the array as having `to_dist`
    /// without moving values (§6.3); contents become undefined.
    MarkDist {
        /// Array.
        array: Sym,
        /// New distribution.
        to_dist: DistId,
    },
    /// `print *, …` — executes on rank 0 only; collected into the output.
    Print {
        /// Items.
        args: Vec<SExpr>,
    },
    /// Terminate the whole node program.
    Stop,
}
