//! Integration tests for the SPMD crate: printer stability and
//! interpreter edge cases that the compiler relies on.

use fortrand_ir::dist::{Alignment, ArrayDist, DistKind, Distribution};
use fortrand_ir::Interner;
use fortrand_machine::{CostModel, Machine};
use fortrand_spmd::ir::*;
use fortrand_spmd::print::pretty;
use fortrand_spmd::ExecOptions;
use fortrand_spmd::{try_run_spmd, ExecOutput, SpmdProgram};
use std::collections::BTreeMap;

/// Panic-on-failure runner (the retired `run_spmd` wrapper, local to
/// these tests: they construct IR by hand and want failures loud).
fn run_spmd(
    prog: &SpmdProgram,
    machine: &Machine,
    init: &BTreeMap<fortrand_ir::Sym, Vec<f64>>,
) -> ExecOutput {
    match try_run_spmd(prog, machine, init, &ExecOptions::default()) {
        Ok(out) => out,
        Err(f) => panic!("{f}"),
    }
}

fn block_dist(n: i64, p: usize) -> ArrayDist {
    ArrayDist::new(
        &[n],
        &Alignment::identity(1),
        &[n],
        &Distribution {
            kinds: vec![DistKind::Block],
            nprocs: p,
        },
    )
}

/// Builds a trivial program skeleton.
fn skeleton(nprocs: usize) -> (SpmdProgram, Interner) {
    let int = Interner::new();
    (
        SpmdProgram {
            interner: int.clone(),
            nprocs,
            procs: vec![],
            main: 0,
            dists: vec![],
        },
        int,
    )
}

#[test]
fn do_loop_negative_step() {
    let (mut prog, _) = skeleton(1);
    let mut int = Interner::new();
    let main = int.intern("main");
    let a = int.intern("a");
    let i = int.intern("i");
    prog.interner = int;
    let did = prog.add_dist(ArrayDist::replicated(&[5]));
    prog.procs.push(SProc {
        name: main,
        formals: vec![],
        decls: vec![SDecl {
            name: a,
            bounds: vec![(1, 5)],
            dist: did,
            owner_dist: None,
        }],
        body: vec![SStmt::Do {
            var: i,
            lo: SExpr::int(5),
            hi: SExpr::int(1),
            step: -1,
            body: vec![SStmt::Assign {
                lhs: SLval::Elem {
                    array: a,
                    subs: vec![SExpr::Var(i)],
                },
                rhs: SExpr::Var(i),
            }],
        }],
    });
    let out = run_spmd(&prog, &Machine::new(1), &BTreeMap::new());
    assert_eq!(
        out.arrays.values().next().unwrap(),
        &vec![1.0, 2.0, 3.0, 4.0, 5.0]
    );
}

#[test]
fn empty_loop_executes_zero_times() {
    let (mut prog, _) = skeleton(1);
    let mut int = Interner::new();
    let main = int.intern("main");
    let a = int.intern("a");
    let i = int.intern("i");
    prog.interner = int;
    let did = prog.add_dist(ArrayDist::replicated(&[3]));
    prog.procs.push(SProc {
        name: main,
        formals: vec![],
        decls: vec![SDecl {
            name: a,
            bounds: vec![(1, 3)],
            dist: did,
            owner_dist: None,
        }],
        body: vec![SStmt::Do {
            var: i,
            lo: SExpr::int(5),
            hi: SExpr::int(2),
            step: 1,
            body: vec![SStmt::Assign {
                lhs: SLval::Elem {
                    array: a,
                    subs: vec![SExpr::int(1)],
                },
                rhs: SExpr::Real(9.0),
            }],
        }],
    });
    let out = run_spmd(&prog, &Machine::new(1), &BTreeMap::new());
    assert_eq!(out.arrays.values().next().unwrap(), &vec![0.0; 3]);
}

#[test]
#[should_panic(expected = "out of local bounds")]
fn out_of_bounds_subscript_is_diagnosed() {
    let (mut prog, _) = skeleton(1);
    let mut int = Interner::new();
    let main = int.intern("main");
    let a = int.intern("a");
    prog.interner = int;
    let did = prog.add_dist(ArrayDist::replicated(&[3]));
    prog.procs.push(SProc {
        name: main,
        formals: vec![],
        decls: vec![SDecl {
            name: a,
            bounds: vec![(1, 3)],
            dist: did,
            owner_dist: None,
        }],
        body: vec![SStmt::Assign {
            lhs: SLval::Elem {
                array: a,
                subs: vec![SExpr::int(7)],
            },
            rhs: SExpr::Real(1.0),
        }],
    });
    run_spmd(&prog, &Machine::new(1), &BTreeMap::new());
}

#[test]
fn return_stops_procedure_not_program() {
    let mut int = Interner::new();
    let main = int.intern("main");
    let sub = int.intern("sub");
    let a = int.intern("a");
    let z = int.intern("z");
    let mut prog = SpmdProgram {
        interner: int,
        nprocs: 1,
        procs: vec![],
        main: 0,
        dists: vec![],
    };
    let did = prog.add_dist(ArrayDist::replicated(&[2]));
    prog.procs.push(SProc {
        name: main,
        formals: vec![],
        decls: vec![SDecl {
            name: a,
            bounds: vec![(1, 2)],
            dist: did,
            owner_dist: None,
        }],
        body: vec![
            SStmt::Call {
                proc: 1,
                args: vec![SActual::Array(a)],
                copy_out: vec![],
            },
            // Executes after the callee's RETURN.
            SStmt::Assign {
                lhs: SLval::Elem {
                    array: a,
                    subs: vec![SExpr::int(2)],
                },
                rhs: SExpr::Real(5.0),
            },
        ],
    });
    prog.procs.push(SProc {
        name: sub,
        formals: vec![SFormal {
            name: z,
            is_array: true,
        }],
        decls: vec![],
        body: vec![
            SStmt::Return,
            // Unreachable.
            SStmt::Assign {
                lhs: SLval::Elem {
                    array: z,
                    subs: vec![SExpr::int(1)],
                },
                rhs: SExpr::Real(9.0),
            },
        ],
    });
    let out = run_spmd(&prog, &Machine::new(1), &BTreeMap::new());
    let got = out.arrays.values().next().unwrap();
    assert_eq!(got, &vec![0.0, 5.0]);
}

#[test]
fn stop_terminates_whole_program() {
    let mut int = Interner::new();
    let main = int.intern("main");
    let a = int.intern("a");
    let mut prog = SpmdProgram {
        interner: int,
        nprocs: 2,
        procs: vec![],
        main: 0,
        dists: vec![],
    };
    let did = prog.add_dist(ArrayDist::replicated(&[1]));
    prog.procs.push(SProc {
        name: main,
        formals: vec![],
        decls: vec![SDecl {
            name: a,
            bounds: vec![(1, 1)],
            dist: did,
            owner_dist: None,
        }],
        body: vec![
            SStmt::Stop,
            SStmt::Assign {
                lhs: SLval::Elem {
                    array: a,
                    subs: vec![SExpr::int(1)],
                },
                rhs: SExpr::Real(9.0),
            },
        ],
    });
    let out = run_spmd(&prog, &Machine::new(2), &BTreeMap::new());
    assert_eq!(out.arrays.values().next().unwrap(), &vec![0.0]);
}

#[test]
fn printer_renders_every_statement_kind() {
    let mut int = Interner::new();
    let main = int.intern("main");
    let a = int.intern("a");
    let b = int.intern("buf");
    let v = int.intern("v");
    let mut prog = SpmdProgram {
        interner: int,
        nprocs: 2,
        procs: vec![],
        main: 0,
        dists: vec![],
    };
    let did = prog.add_dist(block_dist(8, 2));
    let rep = prog.add_dist(ArrayDist::replicated(&[8]));
    prog.procs.push(SProc {
        name: main,
        formals: vec![],
        decls: vec![
            SDecl {
                name: a,
                bounds: vec![(1, 4)],
                dist: did,
                owner_dist: None,
            },
            SDecl {
                name: b,
                bounds: vec![(1, 8)],
                dist: rep,
                owner_dist: None,
            },
        ],
        body: vec![
            SStmt::Comment("phase banner".into()),
            SStmt::Assign {
                lhs: SLval::Scalar(v),
                rhs: SExpr::NProcs,
            },
            SStmt::Bcast {
                root: SExpr::int(0),
                src_array: a,
                src_section: SRect::one(SExpr::int(1), SExpr::int(4)),
                dst_array: b,
                dst_section: SRect::one(SExpr::int(1), SExpr::int(4)),
            },
            SStmt::BcastScalar {
                root: SExpr::int(0),
                var: v,
            },
            SStmt::Remap {
                array: a,
                to_dist: did,
            },
            SStmt::MarkDist {
                array: a,
                to_dist: did,
            },
            SStmt::Print {
                args: vec![SExpr::Var(v)],
            },
            SStmt::Stop,
        ],
    });
    let text = pretty(&prog, 0);
    for needle in [
        "{ phase banner }",
        "n$proc",
        "broadcast A(1:4) from 0",
        "broadcast v from 0",
        "remap A to (block)",
        "mark-as-(block) A",
        "print *, v",
        "stop",
    ] {
        assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
    }
}

#[test]
fn comm_only_cost_model_times_messages_exactly() {
    let mut int = Interner::new();
    let main = int.intern("main");
    let a = int.intern("a");
    let mut prog = SpmdProgram {
        interner: int,
        nprocs: 2,
        procs: vec![],
        main: 0,
        dists: vec![],
    };
    let did = prog.add_dist(block_dist(4, 2));
    prog.procs.push(SProc {
        name: main,
        formals: vec![],
        decls: vec![SDecl {
            name: a,
            bounds: vec![(1, 2)],
            dist: did,
            owner_dist: None,
        }],
        body: vec![SStmt::If {
            cond: SExpr::bin(SBinOp::Eq, SExpr::MyP, SExpr::int(0)),
            then_body: vec![SStmt::Send {
                to: SExpr::int(1),
                tag: 1,
                array: a,
                section: SRect::one(SExpr::int(1), SExpr::int(2)),
            }],
            else_body: vec![SStmt::Recv {
                from: SExpr::int(0),
                tag: 1,
                array: a,
                section: SRect::one(SExpr::int(1), SExpr::int(2)),
            }],
        }],
    });
    let cost = CostModel {
        alpha_us: 100.0,
        beta_us_per_byte: 1.0,
        ..CostModel::comm_only()
    };
    let m = Machine::with_cost(2, cost);
    let out = run_spmd(&prog, &m, &BTreeMap::new());
    // 2 f64 = 16 bytes: α + 16β = 116 µs exactly (compute is free).
    assert_eq!(out.stats.total_bytes, 16);
    assert!(
        (out.stats.time_us - 116.0).abs() < 1e-9,
        "{}",
        out.stats.time_us
    );
}
