//! Runtime shim linked into natively compiled SPMD node programs.
//!
//! The native backend (`fortrand_spmd::codegen`) pretty-prints a compiled
//! [`SpmdProgram`] as a standalone Rust source file and builds it with a
//! bare `rustc` invocation against this crate (compiled once to an `rlib`
//! and cached). Everything the emitted program needs at run time lives
//! here: thread-per-rank execution over typed FIFO channels, rank-ordered
//! collectives whose payload handling matches the simulator's `CollCore`
//! bit for bit, the distribution arithmetic ported from
//! `fortrand_ir::dist`, per-rank array storage, the remap library
//! routines, and the message-statistics protocol the driver parses back
//! into `RunStats`.
//!
//! This crate is deliberately **std-only with zero dependencies** — it is
//! compiled outside cargo — and must mirror the simulator's observable
//! semantics exactly: same message counts, byte volumes, size-histogram
//! buckets, per-tag tallies, and bit-identical floating-point results.
//! Every numeric routine here is a line-for-line port of its simulator
//! counterpart (`fortrand_spmd::runtime`, `fortrand_machine::stats`);
//! differential tests at the bottom (and `tests/native.rs` at the
//! workspace root) keep the two from drifting.
//!
//! # Stats-on-stdout protocol (v1)
//!
//! The emitted program's only stdout traffic is this protocol:
//!
//! ```text
//! FORTRAND-NATIVE-STATS v1
//! nprocs <p>
//! print <line>                                  (rank 0's print output, in order)
//! node <rank> <msgs> <bytes> <remaps> <posts> <waits>
//! hist <rank> <b0> <b1> <b2> <b3> <b4>
//! tag <rank> <tag> <msgs> <bytes>
//! END
//! ```
//!
//! On a rank panic the program prints `FAIL rank=<r> msg=<message>` and
//! exits nonzero; final arrays travel separately through a little-endian
//! binary file (see [`drive`]).

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// Accounting tag for plain broadcasts (mirrors `fortrand_spmd::TAG_BCAST`).
pub const TAG_BCAST: u64 = 1 << 32;
/// Accounting tag for coalesced broadcasts (`TAG_BCAST_PACK`).
pub const TAG_BCAST_PACK: u64 = (1 << 32) + 1;
/// Tag space reserved for remap traffic (compiler tags stay below this).
pub const REMAP_TAG_BASE: u64 = 1 << 40;

// ---------------------------------------------------------------------------
// Runtime values
// ---------------------------------------------------------------------------

/// Runtime scalar. The `I`/`R` distinction is semantic (integer division,
/// `Pow` clamping, wire re-integerization), so mixed-type scalars carry it
/// dynamically just like the simulator's `Value`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Val {
    I(i64),
    R(f64),
}

impl Val {
    #[inline]
    pub fn as_i(self) -> i64 {
        match self {
            Val::I(v) => v,
            Val::R(v) => v as i64,
        }
    }
    #[inline]
    pub fn as_r(self) -> f64 {
        match self {
            Val::I(v) => v as f64,
            Val::R(v) => v,
        }
    }
    #[inline]
    pub fn truthy(self) -> bool {
        self.as_i() != 0
    }
}

impl std::fmt::Display for Val {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Val::I(v) => write!(f, "{v}"),
            Val::R(v) => write!(f, "{v}"),
        }
    }
}

/// Statement-level control flow of an emitted procedure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Flow {
    Normal,
    Stop,
}

/// Binary operators (mirrors `SBinOp`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Pow,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    And,
    Or,
}

/// Intrinsics (mirrors `SIntr`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Intr {
    Abs,
    Min,
    Max,
    Mod,
    Sqrt,
    Sign,
}

/// Integer exponentiation with the simulator's exponent clamp.
#[inline]
pub fn ipow(x: i64, y: i64) -> i64 {
    x.pow(y.clamp(0, 62) as u32)
}

/// Kind-preserving negation. (`Sub(0, x)` would be wrong for `-0.0`.)
#[inline]
pub fn neg(v: Val) -> Val {
    match v {
        Val::I(x) => Val::I(-x),
        Val::R(x) => Val::R(-x),
    }
}

/// `SIGN(a, b)` on floats (always yields `R` in the simulator).
#[inline]
pub fn fsign(a: f64, b: f64) -> f64 {
    if b >= 0.0 {
        a.abs()
    } else {
        -a.abs()
    }
}

/// Fold-min over floats, matching the simulator's `INFINITY`-seeded fold.
pub fn fmin(vals: &[f64]) -> f64 {
    vals.iter().copied().fold(f64::INFINITY, f64::min)
}

/// Fold-max over floats (seeded at `NEG_INFINITY`).
pub fn fmax(vals: &[f64]) -> f64 {
    vals.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}

/// Converts a scalar that traveled over the wire as `f64` back to a
/// [`Val`], preserving integrality when exact.
#[inline]
pub fn scalar_from_wire(v: f64) -> Val {
    if v == v.trunc() {
        Val::I(v as i64)
    } else {
        Val::R(v)
    }
}

/// Applies a binary operator: integer op when both operands are `I`,
/// otherwise both promote to `f64`. Comparisons/logicals yield `I(0|1)`.
/// Line-for-line port of the simulator's `apply_bin`.
#[inline]
pub fn bin(op: BinOp, a: Val, b: Val) -> Val {
    use BinOp::*;
    let bool_v = |c: bool| Val::I(c as i64);
    match (a, b) {
        (Val::I(x), Val::I(y)) => match op {
            Add => Val::I(x + y),
            Sub => Val::I(x - y),
            Mul => Val::I(x * y),
            Div => Val::I(x / y),
            Pow => Val::I(ipow(x, y)),
            Lt => bool_v(x < y),
            Le => bool_v(x <= y),
            Gt => bool_v(x > y),
            Ge => bool_v(x >= y),
            Eq => bool_v(x == y),
            Ne => bool_v(x != y),
            And => bool_v(x != 0 && y != 0),
            Or => bool_v(x != 0 || y != 0),
        },
        _ => {
            let x = a.as_r();
            let y = b.as_r();
            match op {
                Add => Val::R(x + y),
                Sub => Val::R(x - y),
                Mul => Val::R(x * y),
                Div => Val::R(x / y),
                Pow => Val::R(x.powf(y)),
                Lt => bool_v(x < y),
                Le => bool_v(x <= y),
                Gt => bool_v(x > y),
                Ge => bool_v(x >= y),
                Eq => bool_v(x == y),
                Ne => bool_v(x != y),
                And => bool_v(x != 0.0 && y != 0.0),
                Or => bool_v(x != 0.0 || y != 0.0),
            }
        }
    }
}

/// Applies an intrinsic to already-evaluated arguments (port of
/// `apply_intr`).
pub fn intr(name: Intr, vals: &[Val]) -> Val {
    match name {
        Intr::Abs => match vals[0] {
            Val::I(v) => Val::I(v.abs()),
            Val::R(v) => Val::R(v.abs()),
        },
        Intr::Min => {
            if vals.iter().all(|v| matches!(v, Val::I(_))) {
                Val::I(vals.iter().map(|v| v.as_i()).min().unwrap())
            } else {
                Val::R(fmin(&vals.iter().map(|v| v.as_r()).collect::<Vec<_>>()))
            }
        }
        Intr::Max => {
            if vals.iter().all(|v| matches!(v, Val::I(_))) {
                Val::I(vals.iter().map(|v| v.as_i()).max().unwrap())
            } else {
                Val::R(fmax(&vals.iter().map(|v| v.as_r()).collect::<Vec<_>>()))
            }
        }
        Intr::Mod => match (vals[0], vals[1]) {
            (Val::I(a), Val::I(b)) => Val::I(a % b),
            (a, b) => Val::R(a.as_r() % b.as_r()),
        },
        Intr::Sqrt => Val::R(vals[0].as_r().sqrt()),
        Intr::Sign => Val::R(fsign(vals[0].as_r(), vals[1].as_r())),
    }
}

// ---------------------------------------------------------------------------
// Distribution arithmetic (port of fortrand_ir::dist)
// ---------------------------------------------------------------------------

/// Mapping kind of one array dimension (mirrors `DistKind`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RtKind {
    Block,
    Cyclic,
    BlockCyclic(i64),
    Serial,
}

/// One array dimension's share of a distribution (mirrors `DimPartition`).
#[derive(Clone, Debug)]
pub struct RtDim {
    pub kind: RtKind,
    pub extent: i64,
    pub nprocs: usize,
}

impl RtDim {
    #[inline]
    pub fn block_size(&self) -> i64 {
        match self.kind {
            RtKind::Block => (self.extent + self.nprocs as i64 - 1) / self.nprocs as i64,
            RtKind::Cyclic => 1,
            RtKind::BlockCyclic(k) => k,
            RtKind::Serial => self.extent,
        }
    }

    #[inline]
    pub fn owner(&self, g: i64) -> usize {
        let p = self.nprocs as i64;
        match self.kind {
            RtKind::Serial => 0,
            RtKind::Block => (((g - 1) / self.block_size()).min(p - 1)) as usize,
            RtKind::Cyclic => ((g - 1) % p) as usize,
            RtKind::BlockCyclic(k) => (((g - 1) / k) % p) as usize,
        }
    }

    #[inline]
    pub fn local_of_global(&self, g: i64) -> i64 {
        let p = self.nprocs as i64;
        match self.kind {
            RtKind::Serial => g,
            RtKind::Block => g - self.owner(g) as i64 * self.block_size(),
            RtKind::Cyclic => (g - 1) / p + 1,
            RtKind::BlockCyclic(k) => {
                let blk = (g - 1) / k;
                let local_blk = blk / p;
                local_blk * k + (g - 1) % k + 1
            }
        }
    }

    pub fn local_count(&self, q: usize) -> i64 {
        let p = self.nprocs as i64;
        let q = q as i64;
        match self.kind {
            RtKind::Serial => self.extent,
            RtKind::Block => {
                let b = self.block_size();
                (self.extent - q * b).clamp(0, b)
            }
            RtKind::Cyclic => {
                if q < self.extent % p || self.extent % p == 0 && q < p.min(self.extent) {
                    (self.extent + p - 1 - q) / p
                } else {
                    (self.extent - q + p - 1) / p
                }
            }
            RtKind::BlockCyclic(k) => {
                let full_cycles = self.extent / (k * p);
                let rem = self.extent - full_cycles * k * p;
                let mine = (rem - q * k).clamp(0, k);
                full_cycles * k + mine
            }
        }
    }

    pub fn local_extent(&self) -> i64 {
        (0..self.nprocs)
            .map(|q| self.local_count(q))
            .max()
            .unwrap_or(0)
    }
}

/// A whole array's distribution (mirrors `ArrayDist` + `ProcGrid`).
#[derive(Clone, Debug)]
pub struct RtDist {
    pub dims: Vec<RtDim>,
    pub offsets: Vec<i64>,
    pub grid_shape: Vec<usize>,
    pub grid_axis: Vec<Option<usize>>,
}

impl RtDist {
    pub fn is_replicated(&self) -> bool {
        self.dims.iter().all(|d| matches!(d.kind, RtKind::Serial))
    }

    fn rank_of(&self, coords: &[usize]) -> usize {
        let mut r = 0;
        for (c, s) in coords.iter().zip(&self.grid_shape) {
            r = r * s + c;
        }
        r
    }

    /// Allocation-free owner lookup: grid coords live on the stack (Fortran
    /// arrays have at most 7 dims, so 8 slots always suffice). This runs
    /// per global point during init scatter and final assembly.
    #[inline]
    pub fn owner_of(&self, point: &[i64]) -> usize {
        assert!(self.grid_shape.len() <= 8, "process grid rank > 8");
        let mut coords = [0usize; 8];
        for (d, &x) in point.iter().enumerate() {
            if let Some(axis) = self.grid_axis[d] {
                coords[axis] = self.dims[d].owner(x + self.offsets[d]);
            }
        }
        self.rank_of(&coords[..self.grid_shape.len()])
    }

    /// Writes the local subscripts of `point` into `out` without
    /// allocating (the per-point path of init scatter and assembly).
    #[inline]
    pub fn local_of_global_into(&self, point: &[i64], out: &mut [i64]) {
        for (d, &x) in point.iter().enumerate() {
            out[d] = if self.grid_axis[d].is_some() {
                self.dims[d].local_of_global(x + self.offsets[d])
            } else {
                x
            };
        }
    }

    pub fn local_of_global(&self, point: &[i64]) -> Vec<i64> {
        let mut out = vec![0i64; point.len()];
        self.local_of_global_into(point, &mut out);
        out
    }

    pub fn local_extents(&self) -> Vec<i64> {
        self.dims
            .iter()
            .enumerate()
            .map(|(d, dp)| {
                if self.grid_axis[d].is_some() {
                    dp.local_extent()
                } else {
                    dp.extent
                }
            })
            .collect()
    }

    /// Global (pre-partitioning) extents in array index space.
    pub fn global_extents(&self) -> Vec<i64> {
        self.dims
            .iter()
            .enumerate()
            .map(|(d, p)| p.extent - self.offsets[d])
            .collect()
    }

    /// Local index of `g` along dimension `dim` (identity on serial dims) —
    /// the `LocalIdx` expression of run-time resolution.
    pub fn local_idx(&self, dim: usize, g: i64) -> i64 {
        if self.grid_axis[dim].is_some() {
            self.dims[dim].local_of_global(g + self.offsets[dim])
        } else {
            g
        }
    }
}

// ---------------------------------------------------------------------------
// Row-major index space + section odometer
// ---------------------------------------------------------------------------

/// Row-major index space over `extents` (port of the simulator's helper).
pub struct RowMajor {
    pub extents: Vec<i64>,
    strides: Vec<i64>,
    pub total: i64,
}

impl RowMajor {
    pub fn new(extents: Vec<i64>) -> Self {
        let n = extents.len();
        let mut strides = vec![1i64; n];
        for d in (0..n.saturating_sub(1)).rev() {
            strides[d] = strides[d + 1] * extents[d + 1];
        }
        let total = extents.iter().product();
        RowMajor {
            extents,
            strides,
            total,
        }
    }

    pub fn decode_into(&self, flat: i64, pt: &mut [i64]) {
        let mut rem = flat;
        for (p, stride) in pt.iter_mut().zip(&self.strides) {
            *p = rem / stride + 1;
            rem %= stride;
        }
    }
}

/// Number of points in a rect section (`(lo, hi, step)` per dim); empty if
/// any `hi < lo`.
pub fn rect_len(dims: &[(i64, i64, i64)]) -> usize {
    if dims.iter().any(|&(lo, hi, _)| hi < lo) {
        return 0;
    }
    dims.iter()
        .map(|&(lo, hi, step)| ((hi - lo) / step + 1) as usize)
        .product()
}

/// Visits a rect's points in row-major order (rightmost dim fastest) —
/// identical enumeration order to the simulator's `rect_points`.
fn rect_for_each(dims: &[(i64, i64, i64)], mut f: impl FnMut(&[i64])) {
    if dims.iter().any(|&(lo, hi, _)| hi < lo) {
        return;
    }
    let mut pt: Vec<i64> = dims.iter().map(|&(lo, _, _)| lo).collect();
    loop {
        f(&pt);
        let mut d = dims.len();
        loop {
            if d == 0 {
                return;
            }
            d -= 1;
            pt[d] += dims[d].2;
            if pt[d] <= dims[d].1 {
                break;
            }
            pt[d] = dims[d].0;
        }
    }
}

// ---------------------------------------------------------------------------
// Array storage
// ---------------------------------------------------------------------------

/// Array storage on one rank (port of `ArrayStore`).
///
/// `Default` is an empty placeholder: the emitted code `mem::take`s hot
/// arrays out of the heap around compute-only loops (so the optimizer
/// sees non-aliasing locals) and moves them back afterwards.
#[derive(Clone, Debug, Default)]
pub struct Arr {
    pub bounds: Vec<(i64, i64)>,
    pub data: Vec<f64>,
    pub dist: u32,
    pub owner_dist: Option<u32>,
}

/// Out-of-line subscript-failure path: keeps the panic formatting out of
/// the hot access loops (same message the inline `assert!` produced).
#[cold]
#[inline(never)]
fn oob(x: i64, lo: i64, hi: i64, d: usize) -> ! {
    panic!("subscript {x} out of local bounds {lo}:{hi} (dim {d}) of array");
}

/// Degenerate-extent escape hatch: per-dim checks pass but the flat index
/// still misses the store (possible only with pathological bounds).
#[cold]
#[inline(never)]
fn bad_flat(f: usize, len: usize) -> ! {
    panic!("flat index {f} outside local store of {len} elements");
}

/// Whether all heap ids are pairwise distinct. The emitted code guards
/// loop localization with this: two formals bound to the same array must
/// fall back to through-the-heap access, not `take` the same slot twice.
pub fn all_distinct(ids: &[usize]) -> bool {
    ids.iter()
        .enumerate()
        .all(|(i, a)| ids[..i].iter().all(|b| b != a))
}

impl Arr {
    pub fn alloc(bounds: Vec<(i64, i64)>, dist: u32, owner_dist: Option<u32>) -> Arr {
        let len: i64 = bounds
            .iter()
            .map(|&(lo, hi)| (hi - lo + 1).max(0))
            .product();
        Arr {
            bounds,
            data: vec![0.0; len as usize],
            dist,
            owner_dist,
        }
    }

    /// Column-major (Fortran) flattening: the first subscript varies
    /// fastest, so the stride-1 inner loops of the source programs walk
    /// memory contiguously. Global wire/output buffers stay row-major;
    /// only this local storage order is Fortran.
    #[inline]
    fn flat(&self, subs: &[i64]) -> usize {
        debug_assert_eq!(subs.len(), self.bounds.len());
        let mut flat = 0usize;
        let mut mult = 1usize;
        for (d, &x) in subs.iter().enumerate() {
            let (lo, hi) = self.bounds[d];
            if x < lo || x > hi {
                oob(x, lo, hi, d);
            }
            flat += (x - lo) as usize * mult;
            mult *= (hi - lo + 1) as usize;
        }
        flat
    }

    #[inline]
    pub fn get(&self, subs: &[i64]) -> f64 {
        let f = self.flat(subs);
        match self.data.get(f) {
            Some(v) => *v,
            None => bad_flat(f, self.data.len()),
        }
    }

    #[inline]
    pub fn set(&mut self, subs: &[i64], v: f64) {
        let f = self.flat(subs);
        let len = self.data.len();
        match self.data.get_mut(f) {
            Some(slot) => *slot = v,
            None => bad_flat(f, len),
        }
    }

    /// Bounds-checked read for final-array assembly (`None` off-store).
    /// Same column-major order as [`Arr::flat`].
    fn read(&self, local: &[i64]) -> Option<f64> {
        let mut flat = 0usize;
        let mut mult = 1usize;
        for (d, &x) in local.iter().enumerate() {
            let (lo, hi) = self.bounds[d];
            if x < lo || x > hi {
                return None;
            }
            flat += (x - lo) as usize * mult;
            mult *= (hi - lo + 1) as usize;
        }
        self.data.get(flat).copied()
    }
}

/// Per-rank array heap. Allocation order is program order, so an id is
/// meaningful across ranks (the emitted program allocates identically on
/// every rank).
#[derive(Default)]
pub struct Heap {
    pub arrs: Vec<Arr>,
}

impl Heap {
    pub fn new() -> Heap {
        Heap::default()
    }

    pub fn alloc(&mut self, bounds: &[(i64, i64)], dist: u32, owner_dist: Option<u32>) -> usize {
        self.arrs
            .push(Arr::alloc(bounds.to_vec(), dist, owner_dist));
        self.arrs.len() - 1
    }

    #[inline]
    pub fn get(&self, id: usize, subs: &[i64]) -> f64 {
        self.arrs[id].get(subs)
    }

    #[inline]
    pub fn set(&mut self, id: usize, subs: &[i64], v: f64) {
        self.arrs[id].set(subs, v);
    }

    /// Current distribution governing ownership queries (`CurOwner`).
    pub fn cur_dist(&self, id: usize) -> u32 {
        let a = &self.arrs[id];
        a.owner_dist.unwrap_or(a.dist)
    }

    /// Packs a section into a message buffer (row-major order).
    pub fn gather(&self, id: usize, dims: &[(i64, i64, i64)]) -> Vec<f64> {
        let mut out = Vec::with_capacity(rect_len(dims));
        let a = &self.arrs[id];
        rect_for_each(dims, |pt| out.push(a.get(pt)));
        out
    }

    /// Unpacks a message buffer into a section (row-major order).
    pub fn scatter(&mut self, id: usize, dims: &[(i64, i64, i64)], data: &[f64]) {
        assert_eq!(rect_len(dims), data.len(), "section/message size mismatch");
        let a = &mut self.arrs[id];
        let mut i = 0usize;
        rect_for_each(dims, |pt| {
            a.set(pt, data[i]);
            i += 1;
        });
    }
}

// ---------------------------------------------------------------------------
// Message statistics (port of NodeStats accounting)
// ---------------------------------------------------------------------------

/// Histogram bucket for a message of `bytes` payload bytes (port of
/// `fortrand_machine::stats::size_bucket`).
pub fn size_bucket(bytes: u64) -> usize {
    match bytes {
        0..=64 => 0,
        65..=512 => 1,
        513..=4096 => 2,
        4097..=32768 => 3,
        _ => 4,
    }
}

/// Per-rank message statistics, accounted exactly like the simulator's
/// `NodeStats` (which also charges sends at the sender only).
#[derive(Clone, Debug, Default)]
pub struct Stats {
    pub msgs: u64,
    pub bytes: u64,
    pub remaps: u64,
    pub posts: u64,
    pub waits: u64,
    pub hist: [u64; 5],
    pub by_tag: BTreeMap<u64, (u64, u64)>,
}

impl Stats {
    pub fn record(&mut self, msgs: u64, bytes_each: u64, tag: Option<u64>) {
        self.msgs += msgs;
        self.bytes += msgs * bytes_each;
        self.hist[size_bucket(bytes_each)] += msgs;
        if let Some(t) = tag {
            let e = self.by_tag.entry(t).or_insert((0, 0));
            e.0 += msgs;
            e.1 += msgs * bytes_each;
        }
    }
}

// ---------------------------------------------------------------------------
// Communication fabric
// ---------------------------------------------------------------------------

type Payload = Arc<Vec<f64>>;
type Msg = (u64, Payload);

/// How long blocked ranks sleep between checks of the failure flag.
const POLL: Duration = Duration::from_millis(25);

/// Shared failure flag: set when any rank panics so blocked peers abort
/// instead of hanging (the native analog of the simulator's poison-proof
/// lock handling).
struct Poison {
    flag: AtomicBool,
}

impl Poison {
    fn set(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }
    fn check(&self) {
        if self.flag.load(Ordering::SeqCst) {
            panic!("peer rank failed");
        }
    }
}

fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// Sequence-keyed rendezvous table shared by all ranks: the root `put`s a
/// payload under a collective sequence number, every consumer `take`s it.
/// Per-rank sequence counters advance identically on every rank (the SPMD
/// program executes collectives in the same order everywhere), which gives
/// the same rank-ordered matching as the simulator's `CollCore`.
struct SeqTable {
    takes_per_entry: usize,
    inner: Mutex<HashMap<u64, (Payload, usize)>>,
    cv: Condvar,
}

impl SeqTable {
    fn new(takes_per_entry: usize) -> SeqTable {
        SeqTable {
            takes_per_entry,
            inner: Mutex::new(HashMap::new()),
            cv: Condvar::new(),
        }
    }

    fn put(&self, seq: u64, data: Payload) {
        lock_unpoisoned(&self.inner).insert(seq, (data, 0));
        self.cv.notify_all();
    }

    fn take(&self, seq: u64, poison: &Poison) -> Payload {
        let mut g = lock_unpoisoned(&self.inner);
        loop {
            poison.check();
            if let Some(entry) = g.get_mut(&seq) {
                entry.1 += 1;
                let out = entry.0.clone();
                if entry.1 >= self.takes_per_entry {
                    g.remove(&seq);
                }
                return out;
            }
            let (g2, _) = self
                .cv
                .wait_timeout(g, POLL)
                .unwrap_or_else(|p| p.into_inner());
            g = g2;
        }
    }
}

/// Per-rank execution context: channels, collectives, stats, posted-op
/// slots, and rank 0's print buffer.
pub struct Ctx {
    rank: usize,
    p: usize,
    /// Senders to every destination (`tx[dst]`); owned (not shared) so a
    /// dead rank's channels disconnect and wake its blocked peers.
    tx: Vec<Sender<Msg>>,
    /// Receivers from every source (`rx[src]`), strict FIFO per pair.
    rx: Vec<Receiver<Msg>>,
    coll: Arc<SeqTable>,
    posted: Arc<SeqTable>,
    poison: Arc<Poison>,
    coll_seq: u64,
    posted_seq: u64,
    posted_recv: Vec<Option<(usize, u64)>>,
    posted_bcast: Vec<Option<u64>>,
    pub stats: Stats,
    printed: Vec<String>,
}

fn slot<T>(v: &mut Vec<Option<T>>, h: u32) -> &mut Option<T> {
    let h = h as usize;
    if v.len() <= h {
        v.resize_with(h + 1, || None);
    }
    &mut v[h]
}

impl Ctx {
    pub fn rank(&self) -> usize {
        self.rank
    }

    pub fn nprocs(&self) -> usize {
        self.p
    }

    /// Records a print line (rank 0 only; the emitted code already guards).
    pub fn print(&mut self, line: String) {
        if self.rank == 0 {
            self.printed.push(line);
        }
    }

    /// Blocking send: charged at the sender like the simulator's
    /// `send_buf` (1 message of `len * 8` bytes under `tag`).
    pub fn send(&mut self, dst: usize, tag: u64, data: Vec<f64>) {
        self.stats.record(1, data.len() as u64 * 8, Some(tag));
        self.tx[dst]
            .send((tag, Arc::new(data)))
            .unwrap_or_else(|_| panic!("send to dead rank {dst}"));
    }

    /// Blocking receive: strict FIFO per (src, dst) pair with a tag
    /// assertion, exactly like the simulator's threaded mailboxes.
    pub fn recv(&mut self, src: usize, tag: u64) -> Payload {
        loop {
            match self.rx[src].recv_timeout(POLL) {
                Ok((t, data)) => {
                    assert_eq!(t, tag, "tag mismatch on message from rank {src}");
                    return data;
                }
                Err(RecvTimeoutError::Timeout) => self.poison.check(),
                Err(RecvTimeoutError::Disconnected) => {
                    self.poison.check();
                    panic!("rank {src} terminated with messages outstanding");
                }
            }
        }
    }

    /// Rank-ordered broadcast. Payload identity matches `CollCore`: every
    /// rank (root included) reads the root's exact buffer, so FP contents
    /// are bit-identical; only the root records message charges
    /// (`p - 1` messages). Single-rank worlds bypass the fabric entirely.
    pub fn bcast(&mut self, root: usize, data: Option<Vec<f64>>, tag: u64) -> Payload {
        let seq = self.coll_seq;
        self.coll_seq += 1;
        if self.p == 1 {
            return Arc::new(data.expect("bcast root without payload"));
        }
        if self.rank == root {
            let payload = Arc::new(data.expect("bcast root without payload"));
            self.stats
                .record(self.p as u64 - 1, payload.len() as u64 * 8, Some(tag));
            self.coll.put(seq, payload.clone());
            payload
        } else {
            self.coll.take(seq, &self.poison)
        }
    }

    /// Nonblocking send: the payload leaves (and is charged) at the post.
    pub fn post_send(&mut self, dst: usize, tag: u64, data: Vec<f64>) {
        self.stats.posts += 1;
        self.send(dst, tag, data);
        // `send` recorded the message; posts are tracked separately.
    }

    pub fn wait_send(&mut self) {
        self.stats.waits += 1;
    }

    /// Registers a posted receive under `handle` (matched at the wait).
    pub fn post_recv(&mut self, handle: u32, src: usize, tag: u64) {
        self.stats.posts += 1;
        *slot(&mut self.posted_recv, handle) = Some((src, tag));
    }

    pub fn wait_recv(&mut self, handle: u32) -> Payload {
        let (src, tag) = slot(&mut self.posted_recv, handle)
            .take()
            .expect("wait_recv without matching post");
        self.stats.waits += 1;
        self.recv(src, tag)
    }

    /// Nonblocking broadcast post: every rank advances the posted
    /// sequence; the root publishes (and is charged for) the payload
    /// immediately, like the simulator's `post_bcast`.
    pub fn post_bcast(&mut self, handle: u32, root: usize, data: Option<Vec<f64>>, tag: u64) {
        let seq = self.posted_seq;
        self.posted_seq += 1;
        self.stats.posts += 1;
        if self.rank == root {
            let payload = Arc::new(data.expect("post_bcast root without payload"));
            if self.p > 1 {
                self.stats
                    .record(self.p as u64 - 1, payload.len() as u64 * 8, Some(tag));
            }
            self.posted.put(seq, payload);
        }
        *slot(&mut self.posted_bcast, handle) = Some(seq);
    }

    pub fn wait_bcast(&mut self, handle: u32) -> Payload {
        let seq = slot(&mut self.posted_bcast, handle)
            .take()
            .expect("wait_bcast without matching post");
        self.stats.waits += 1;
        self.posted.take(seq, &self.poison)
    }
}

// ---------------------------------------------------------------------------
// Remap library routines (port of fortrand_spmd::runtime)
// ---------------------------------------------------------------------------

/// Full dynamic remap with data motion (§6 library routine). Always
/// charges one remap call; data moves only when the distribution changes.
pub fn remap(cx: &mut Ctx, h: &mut Heap, id: usize, dists: &[RtDist], to_dist: u32) {
    cx.stats.remaps += 1;
    let from = h.arrs[id].dist;
    if from == to_dist {
        return;
    }
    let d0 = &dists[from as usize];
    let d1 = &dists[to_dist as usize];
    let shape = RowMajor::new(d0.global_extents());
    assert_eq!(
        shape.extents,
        d1.global_extents(),
        "remap changes array shape"
    );
    let my = cx.rank();
    let p = cx.nprocs();
    let bounds: Vec<(i64, i64)> = d1.local_extents().iter().map(|&e| (1, e)).collect();
    let mut new_store = Arr::alloc(bounds, to_dist, None);

    let mut outgoing: Vec<Vec<f64>> = vec![Vec::new(); p];
    let mut pt = vec![1i64; shape.extents.len()];
    for flat in 0..shape.total {
        shape.decode_into(flat, &mut pt);
        if d0.owner_of(&pt) != my {
            continue;
        }
        let v = h.arrs[id].get(&d0.local_of_global(&pt));
        let dst = d1.owner_of(&pt);
        if dst == my {
            new_store.set(&d1.local_of_global(&pt), v);
        } else {
            outgoing[dst].push(v);
        }
    }
    for (dst, buf) in outgoing.into_iter().enumerate() {
        if dst != my && !buf.is_empty() {
            cx.send(dst, REMAP_TAG_BASE + dst as u64, buf);
        }
    }
    let mut incoming_pts: Vec<Vec<Vec<i64>>> = vec![Vec::new(); p];
    for flat in 0..shape.total {
        shape.decode_into(flat, &mut pt);
        if d1.owner_of(&pt) != my {
            continue;
        }
        let src = d0.owner_of(&pt);
        if src != my {
            incoming_pts[src].push(pt.clone());
        }
    }
    for (src, pts) in incoming_pts.iter().enumerate() {
        if src == my || pts.is_empty() {
            continue;
        }
        let data = cx.recv(src, REMAP_TAG_BASE + my as u64);
        assert_eq!(data.len(), pts.len(), "remap message size mismatch");
        for (pt, &v) in pts.iter().zip(data.iter()) {
            new_store.set(&d1.local_of_global(pt), v);
        }
    }
    h.arrs[id] = new_store;
}

/// Run-time resolution remap: storage stays global-shaped; authoritative
/// values move from old owners to new owners in place.
pub fn remap_global(cx: &mut Ctx, h: &mut Heap, id: usize, dists: &[RtDist], to_dist: u32) {
    cx.stats.remaps += 1;
    let from = h.arrs[id]
        .owner_dist
        .expect("remap_global on non-rtr array");
    if from == to_dist {
        return;
    }
    let d0 = &dists[from as usize];
    let d1 = &dists[to_dist as usize];
    let shape = RowMajor::new(d0.global_extents());
    let my = cx.rank();
    let p = cx.nprocs();

    let mut outgoing: Vec<Vec<f64>> = vec![Vec::new(); p];
    let mut pt = vec![1i64; shape.extents.len()];
    for flat in 0..shape.total {
        shape.decode_into(flat, &mut pt);
        if d0.owner_of(&pt) != my {
            continue;
        }
        let dst = d1.owner_of(&pt);
        if dst != my {
            let v = h.arrs[id].get(&pt);
            outgoing[dst].push(v);
        }
    }
    for (dst, buf) in outgoing.into_iter().enumerate() {
        if dst != my && !buf.is_empty() {
            cx.send(dst, REMAP_TAG_BASE + dst as u64, buf);
        }
    }
    let mut incoming_pts: Vec<Vec<Vec<i64>>> = vec![Vec::new(); p];
    for flat in 0..shape.total {
        shape.decode_into(flat, &mut pt);
        if d1.owner_of(&pt) != my {
            continue;
        }
        let src = d0.owner_of(&pt);
        if src != my {
            incoming_pts[src].push(pt.clone());
        }
    }
    for (src, pts) in incoming_pts.iter().enumerate() {
        if src == my || pts.is_empty() {
            continue;
        }
        let data = cx.recv(src, REMAP_TAG_BASE + my as u64);
        assert_eq!(data.len(), pts.len(), "remap_global size mismatch");
        for (pt, &v) in pts.iter().zip(data.iter()) {
            h.arrs[id].set(pt, v);
        }
    }
    h.arrs[id].owner_dist = Some(to_dist);
}

/// Array-kill optimized remap (§6.3): swap descriptors, zero contents, no
/// data motion and no remap charge (matches `MarkDist`).
pub fn mark_dist(h: &mut Heap, id: usize, dists: &[RtDist], to_dist: u32) {
    let bounds: Vec<(i64, i64)> = dists[to_dist as usize]
        .local_extents()
        .iter()
        .map(|&e| (1, e))
        .collect();
    h.arrs[id] = Arr::alloc(bounds, to_dist, None);
}

// ---------------------------------------------------------------------------
// Initial scatter / final assembly
// ---------------------------------------------------------------------------

/// Fills the local part of array `id` from a row-major global buffer.
/// Run-time resolution storage takes a full copy; replicated arrays store
/// everywhere; otherwise only the owner's points land.
pub fn scatter_init(h: &mut Heap, id: usize, dists: &[RtDist], global: &[f64], my: usize) {
    if h.arrs[id].owner_dist.is_some() {
        assert_eq!(h.arrs[id].data.len(), global.len(), "rtr init size");
        // The incoming buffer is row-major over the full bounds while
        // local storage is column-major, so copy subscript-by-subscript.
        let bounds = h.arrs[id].bounds.clone();
        let shape = RowMajor::new(bounds.iter().map(|&(lo, hi)| hi - lo + 1).collect());
        let mut pt = vec![1i64; bounds.len()];
        let mut subs = vec![0i64; bounds.len()];
        for flat in 0..shape.total {
            shape.decode_into(flat, &mut pt);
            for (s, (&x, &(lo, _))) in subs.iter_mut().zip(pt.iter().zip(&bounds)) {
                *s = lo + x - 1;
            }
            h.arrs[id].set(&subs, global[flat as usize]);
        }
        return;
    }
    let dist = &dists[h.arrs[id].dist as usize];
    let shape = RowMajor::new(dist.global_extents());
    assert_eq!(
        shape.total as usize,
        global.len(),
        "initial data size mismatch"
    );
    let replicated = dist.is_replicated();
    let mut pt = vec![1i64; shape.extents.len()];
    let mut local = vec![0i64; shape.extents.len()];
    for flat in 0..shape.total {
        shape.decode_into(flat, &mut pt);
        let owner = dist.owner_of(&pt);
        if replicated || owner == my {
            dist.local_of_global_into(&pt, &mut local);
            let ok = local
                .iter()
                .zip(&h.arrs[id].bounds)
                .all(|(&x, &(lo, hi))| x >= lo && x <= hi);
            if ok {
                h.arrs[id].set(&local, global[flat as usize]);
            }
        }
    }
}

/// Assembles the global contents of each final array (same position in
/// every rank's finals vector), reading each element from its owner under
/// the array's final distribution — port of `assemble_arrays`.
pub fn assemble(dists: &[RtDist], per_rank: &[Vec<Arr>]) -> Vec<Vec<f64>> {
    let mut out = Vec::new();
    let Some(rank0) = per_rank.first() else {
        return out;
    };
    for (idx, fa) in rank0.iter().enumerate() {
        let dist = &dists[fa.owner_dist.unwrap_or(fa.dist) as usize];
        let shape = RowMajor::new(dist.global_extents());
        let mut global = vec![0.0f64; shape.total as usize];
        let mut pt = vec![1i64; shape.extents.len()];
        let mut local = vec![0i64; shape.extents.len()];
        for flat in 0..shape.total {
            shape.decode_into(flat, &mut pt);
            let owner = dist.owner_of(&pt);
            let src = &per_rank[owner][idx];
            if fa.owner_dist.is_some() {
                local.copy_from_slice(&pt);
            } else {
                dist.local_of_global_into(&pt, &mut local);
            }
            if let Some(v) = src.read(&local) {
                global[flat as usize] = v;
            }
        }
        out.push(global);
    }
    out
}

// ---------------------------------------------------------------------------
// Harness: thread-per-rank driver + binary IO + stats protocol
// ---------------------------------------------------------------------------

struct PanicGuard(Arc<Poison>);

impl Drop for PanicGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.set();
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic".to_string()
    }
}

fn read_init(path: &str) -> Vec<Option<Vec<f64>>> {
    let bytes = std::fs::read(path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
    let mut out = Vec::new();
    let mut at = 0usize;
    while at < bytes.len() {
        let present = bytes[at];
        at += 1;
        if present == 0 {
            out.push(None);
            continue;
        }
        let len = u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap()) as usize;
        at += 8;
        let mut data = Vec::with_capacity(len);
        for _ in 0..len {
            data.push(f64::from_le_bytes(bytes[at..at + 8].try_into().unwrap()));
            at += 8;
        }
        out.push(Some(data));
    }
    out
}

fn write_out(path: &str, arrays: &[Vec<f64>]) {
    let mut bytes = Vec::new();
    for a in arrays {
        bytes.extend_from_slice(&(a.len() as u64).to_le_bytes());
        for v in a {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
    }
    std::fs::write(path, bytes).unwrap_or_else(|e| panic!("writing {path}: {e}"));
}

/// Entry point of an emitted node program. Reads the init file
/// (`argv[1]`), runs `body` once per rank on its own thread, assembles
/// the final global arrays into the out file (`argv[2]`), and prints the
/// stats protocol on stdout. A rank panic prints a `FAIL` line and exits
/// nonzero; blocked peers are woken through the shared failure flag.
pub fn drive<F>(p: usize, dists: &[RtDist], body: F) -> !
where
    F: Fn(&mut Ctx, &[Option<Vec<f64>>]) -> Vec<Arr> + Sync,
{
    let args: Vec<String> = std::env::args().collect();
    if args.len() != 3 {
        eprintln!("usage: {} <init.bin> <out.bin>", args[0]);
        std::process::exit(2);
    }
    let init = read_init(&args[1]);

    let poison = Arc::new(Poison {
        flag: AtomicBool::new(false),
    });
    // Blocking broadcasts: the root never `take`s its own entry, so each
    // payload is consumed p - 1 times. Posted broadcasts: every rank waits.
    let coll = Arc::new(SeqTable::new(p.saturating_sub(1).max(1)));
    let posted = Arc::new(SeqTable::new(p));

    let mut txs: Vec<Vec<Sender<Msg>>> = (0..p).map(|_| Vec::with_capacity(p)).collect();
    let mut rxs: Vec<Vec<Receiver<Msg>>> = (0..p).map(|_| Vec::with_capacity(p)).collect();
    for tx_row in txs.iter_mut() {
        for rx_row in rxs.iter_mut() {
            let (tx, rx) = mpsc::channel();
            tx_row.push(tx);
            rx_row.push(rx);
        }
    }

    type RankResult = Result<(Vec<Arr>, Vec<String>, Stats), String>;
    let mut results: Vec<RankResult> = Vec::with_capacity(p);
    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(p);
        for (rank, (tx, rx)) in txs.drain(..).zip(rxs.drain(..)).enumerate() {
            let poison = poison.clone();
            let coll = coll.clone();
            let posted = posted.clone();
            let body = &body;
            let init = &init;
            handles.push(s.spawn(move || {
                let _guard = PanicGuard(poison.clone());
                let mut cx = Ctx {
                    rank,
                    p,
                    tx,
                    rx,
                    coll,
                    posted,
                    poison,
                    coll_seq: 0,
                    posted_seq: 0,
                    posted_recv: Vec::new(),
                    posted_bcast: Vec::new(),
                    stats: Stats::default(),
                    printed: Vec::new(),
                };
                let finals = body(&mut cx, init);
                (finals, cx.printed, cx.stats)
            }));
        }
        for h in handles {
            results.push(h.join().map_err(|e| panic_message(e.as_ref())));
        }
    });

    if results.iter().any(|r| r.is_err()) {
        // Report the lowest rank whose panic was genuine (not induced by a
        // peer's death), falling back to the lowest failing rank.
        let induced = |m: &str| m.contains("peer rank failed") || m.contains("terminated with");
        let pick = results
            .iter()
            .enumerate()
            .filter_map(|(r, res)| res.as_ref().err().map(|m| (r, m.clone())))
            .find(|(_, m)| !induced(m))
            .or_else(|| {
                results
                    .iter()
                    .enumerate()
                    .find_map(|(r, res)| res.as_ref().err().map(|m| (r, m.clone())))
            })
            .unwrap();
        let msg = pick.1.replace('\n', "; ");
        println!("FAIL rank={} msg={}", pick.0, msg);
        std::process::exit(101);
    }

    let per_rank: Vec<(Vec<Arr>, Vec<String>, Stats)> =
        results.into_iter().map(|r| r.unwrap()).collect();
    let finals: Vec<Vec<Arr>> = per_rank.iter().map(|(f, _, _)| f.clone()).collect();
    write_out(&args[2], &assemble(dists, &finals));

    println!("FORTRAND-NATIVE-STATS v1");
    println!("nprocs {p}");
    for line in &per_rank[0].1 {
        println!("print {line}");
    }
    for (rank, (_, _, st)) in per_rank.iter().enumerate() {
        println!(
            "node {rank} {} {} {} {} {}",
            st.msgs, st.bytes, st.remaps, st.posts, st.waits
        );
        println!(
            "hist {rank} {} {} {} {} {}",
            st.hist[0], st.hist[1], st.hist[2], st.hist[3], st.hist[4]
        );
        for (tag, (m, b)) in &st.by_tag {
            println!("tag {rank} {tag} {m} {b}");
        }
    }
    println!("END");
    std::process::exit(0);
}

// ---------------------------------------------------------------------------
// Differential tests against the authoritative implementations
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;
    use fortrand_ir::dist::{ArrayDist, DimPartition, DistKind, ProcGrid};

    fn mirror(ad: &ArrayDist) -> RtDist {
        RtDist {
            dims: ad
                .dims
                .iter()
                .map(|d| RtDim {
                    kind: match d.kind {
                        DistKind::Block => RtKind::Block,
                        DistKind::Cyclic => RtKind::Cyclic,
                        DistKind::BlockCyclic(k) => RtKind::BlockCyclic(k),
                        DistKind::Serial => RtKind::Serial,
                    },
                    extent: d.extent,
                    nprocs: d.nprocs,
                })
                .collect(),
            offsets: ad.offsets.clone(),
            grid_shape: ad.grid.shape.clone(),
            grid_axis: ad.grid_axis.clone(),
        }
    }

    fn dist_1d(kind: DistKind, extent: i64, p: usize, offset: i64) -> ArrayDist {
        let distributed = kind.is_distributed();
        ArrayDist {
            dims: vec![DimPartition {
                kind,
                extent: extent + offset,
                nprocs: if distributed { p } else { 1 },
            }],
            offsets: vec![offset],
            grid: ProcGrid {
                shape: vec![if distributed { p } else { 1 }],
            },
            grid_axis: vec![if distributed { Some(0) } else { None }],
        }
    }

    #[test]
    fn dist_arithmetic_matches_fortrand_ir() {
        for kind in [
            DistKind::Block,
            DistKind::Cyclic,
            DistKind::BlockCyclic(3),
            DistKind::Serial,
        ] {
            for p in [1usize, 2, 3, 4, 7] {
                for extent in [1i64, 5, 16, 33] {
                    for offset in [0i64, 2] {
                        let ad = dist_1d(kind, extent, p, offset);
                        let rt = mirror(&ad);
                        assert_eq!(rt.global_extents(), vec![extent]);
                        assert_eq!(rt.local_extents(), ad.local_extents());
                        assert_eq!(rt.is_replicated(), ad.is_replicated());
                        for g in 1..=extent {
                            let pt = [g];
                            assert_eq!(
                                rt.owner_of(&pt),
                                ad.owner_of(&pt),
                                "{kind:?} p={p} n={extent} off={offset} g={g}"
                            );
                            assert_eq!(rt.local_of_global(&pt), ad.local_of_global(&pt));
                            assert_eq!(rt.local_idx(0, g), {
                                let off = ad.offsets[0];
                                if ad.grid_axis[0].is_some() {
                                    ad.dims[0].local_of_global(g + off)
                                } else {
                                    g
                                }
                            });
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn two_dim_owner_matches() {
        let ad = ArrayDist {
            dims: vec![
                DimPartition {
                    kind: DistKind::Block,
                    extent: 12,
                    nprocs: 2,
                },
                DimPartition {
                    kind: DistKind::Cyclic,
                    extent: 9,
                    nprocs: 3,
                },
            ],
            offsets: vec![0, 0],
            grid: ProcGrid { shape: vec![2, 3] },
            grid_axis: vec![Some(0), Some(1)],
        };
        let rt = mirror(&ad);
        for i in 1..=12 {
            for j in 1..=9 {
                let pt = [i, j];
                assert_eq!(rt.owner_of(&pt), ad.owner_of(&pt));
                assert_eq!(rt.local_of_global(&pt), ad.local_of_global(&pt));
            }
        }
        assert_eq!(rt.local_extents(), ad.local_extents());
    }

    #[test]
    fn bin_and_intr_match_reference_semantics() {
        // Integer division truncates; Pow clamps; mixed promotes.
        assert_eq!(bin(BinOp::Div, Val::I(7), Val::I(2)), Val::I(3));
        assert_eq!(bin(BinOp::Pow, Val::I(2), Val::I(-3)), Val::I(1));
        assert_eq!(bin(BinOp::Div, Val::I(7), Val::R(2.0)), Val::R(3.5));
        assert_eq!(bin(BinOp::Lt, Val::R(1.5), Val::I(2)), Val::I(1));
        assert_eq!(intr(Intr::Min, &[Val::I(3), Val::R(2.5)]), Val::R(2.5));
        assert_eq!(intr(Intr::Min, &[Val::I(3), Val::I(2)]), Val::I(2));
        assert_eq!(intr(Intr::Sign, &[Val::I(3), Val::I(-1)]), Val::R(-3.0));
        assert_eq!(scalar_from_wire(4.0), Val::I(4));
        assert_eq!(scalar_from_wire(4.5), Val::R(4.5));
    }

    #[test]
    fn rect_enumeration_is_row_major_rightmost_fastest() {
        let mut pts = Vec::new();
        rect_for_each(&[(1, 2, 1), (5, 9, 2)], |p| pts.push(p.to_vec()));
        assert_eq!(
            pts,
            vec![
                vec![1, 5],
                vec![1, 7],
                vec![1, 9],
                vec![2, 5],
                vec![2, 7],
                vec![2, 9]
            ]
        );
        assert_eq!(rect_len(&[(1, 2, 1), (5, 9, 2)]), 6);
        assert_eq!(rect_len(&[(3, 2, 1)]), 0);
    }

    #[test]
    fn stats_record_matches_node_stats() {
        let mut s = Stats::default();
        s.record(3, 8, Some(7));
        s.record(1, 1000, None);
        assert_eq!(s.msgs, 4);
        assert_eq!(s.bytes, 3 * 8 + 1000);
        assert_eq!(s.hist[0], 3);
        assert_eq!(s.hist[2], 1);
        assert_eq!(s.by_tag.get(&7), Some(&(3, 24)));
    }
}
