//! Load-generator harness: thousands of synthetic clients over the wire.
//!
//! Drives a freshly spawned [`Server`] with `clients` synthetic sessions
//! over TCP, each performing an open → compile → (edit → compile)×rounds
//! script against a [`fortrand::corpus::wide_corpus`] variant. Clients
//! are assigned `variant = id % variants`, so most compiles repeat a
//! program some earlier session already compiled — the cross-session
//! hit-rate scenario the shared [`fortrand::ArtifactStore`] exists for.
//!
//! Two phases, same total work:
//!
//! 1. **multi** — `concurrency` worker threads drain the client queue
//!    concurrently (aggregate throughput, client-side compile latency
//!    percentiles, store hit rate);
//! 2. **baseline** — every script replayed one client at a time against
//!    a *fresh* server (the single-client sequential reference).
//!
//! All report numbers are integers (µs, or ratios ×100) so they ride the
//! float-free JSON layer into `BENCH_serve.json` and the CI serve gate.

use crate::server::{Server, ServerConfig};
use fortrand::corpus::wide_corpus;
use fortrand::json::{self, Json};
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Load-test shape.
#[derive(Clone, Debug)]
pub struct LoadConfig {
    /// Synthetic clients (sessions) to run.
    pub clients: usize,
    /// Concurrent client-runner threads in the multi phase.
    pub concurrency: usize,
    /// Edit → compile rounds per client after the initial compile.
    pub rounds: usize,
    /// Distinct program variants; client `id` gets `id % variants`.
    pub variants: usize,
    /// `wide_corpus` width (procedures per program).
    pub procs: usize,
    /// `wide_corpus` array extent.
    pub n: i64,
    /// `wide_corpus` processor count.
    pub nprocs: usize,
    /// Server codegen pool threads.
    pub threads: usize,
    /// Server artifact-store capacity (approximate bytes).
    pub capacity: usize,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            clients: 1000,
            concurrency: 32,
            rounds: 2,
            variants: 8,
            procs: 6,
            n: 64,
            nprocs: 4,
            threads: 4,
            capacity: 256 << 20,
        }
    }
}

/// Everything the load test measured. Integer units throughout: `*_us`
/// fields are microseconds, `*_x100` fields are ratios scaled by 100.
#[derive(Clone, Copy, Debug, Default)]
pub struct LoadReport {
    /// Clients run.
    pub clients: u64,
    /// Compile requests issued (across both phases this is per phase —
    /// both phases do the same work).
    pub compiles: u64,
    /// Requests that returned `{"ok":false}` or failed at the IO layer
    /// in the multi phase. The gate requires zero.
    pub failures: u64,
    /// Multi-phase wall time.
    pub wall_us: u64,
    /// Multi-phase aggregate compile throughput, compiles/second × 100.
    pub throughput_x100: u64,
    /// Client-observed compile latency percentiles (multi phase).
    pub p50_us: u64,
    /// 95th percentile compile latency.
    pub p95_us: u64,
    /// 99th percentile compile latency.
    pub p99_us: u64,
    /// Shared-store hit rate over the multi phase, percent (0–100).
    pub hit_rate_x100: u64,
    /// Baseline (sequential) wall time for the same work.
    pub baseline_wall_us: u64,
    /// Baseline throughput, compiles/second × 100.
    pub baseline_throughput_x100: u64,
    /// Multi vs baseline throughput ratio × 100 (`200` = 2×).
    pub speedup_x100: u64,
}

impl LoadReport {
    /// The report as a JSON object (the `BENCH_serve.json` payload).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("clients".into(), Json::Int(self.clients as i128)),
            ("compiles".into(), Json::Int(self.compiles as i128)),
            ("failures".into(), Json::Int(self.failures as i128)),
            ("wall_us".into(), Json::Int(self.wall_us as i128)),
            (
                "throughput_x100".into(),
                Json::Int(self.throughput_x100 as i128),
            ),
            ("p50_us".into(), Json::Int(self.p50_us as i128)),
            ("p95_us".into(), Json::Int(self.p95_us as i128)),
            ("p99_us".into(), Json::Int(self.p99_us as i128)),
            (
                "hit_rate_x100".into(),
                Json::Int(self.hit_rate_x100 as i128),
            ),
            (
                "baseline_wall_us".into(),
                Json::Int(self.baseline_wall_us as i128),
            ),
            (
                "baseline_throughput_x100".into(),
                Json::Int(self.baseline_throughput_x100 as i128),
            ),
            ("speedup_x100".into(), Json::Int(self.speedup_x100 as i128)),
        ])
    }
}

/// One client's scripted conversation. Returns per-compile latencies in
/// µs, or an error description on the first failed request.
fn run_client(
    addr: std::net::SocketAddr,
    id: usize,
    source: &str,
    rounds: usize,
) -> Result<Vec<u64>, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    let mut writer = stream.try_clone().map_err(|e| format!("clone: {e}"))?;
    let mut reader = BufReader::new(stream);
    let mut latencies = Vec::with_capacity(rounds + 1);
    let sid = format!("c{id}");

    let mut ask = |req: &str, timed: Option<&mut Vec<u64>>| -> Result<(), String> {
        let start = Instant::now();
        writer
            .write_all(req.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .map_err(|e| format!("write: {e}"))?;
        let mut line = String::new();
        reader
            .read_line(&mut line)
            .map_err(|e| format!("read: {e}"))?;
        if line.is_empty() {
            return Err("connection closed".into());
        }
        if let Some(lat) = timed {
            lat.push(start.elapsed().as_micros() as u64);
        }
        let obj = json::parse(&line).map_err(|e| format!("bad response json: {e}"))?;
        match obj.get("ok") {
            Some(Json::Bool(true)) => Ok(()),
            _ => Err(obj
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("request failed")
                .to_string()),
        }
    };

    let open = Json::Obj(vec![
        ("cmd".into(), Json::str("open")),
        ("session".into(), Json::str(&sid)),
        ("source".into(), Json::str(source)),
    ])
    .compact();
    ask(&open, None)?;
    let compile = format!(r#"{{"cmd":"compile","session":"{sid}"}}"#);
    ask(&compile, Some(&mut latencies))?;
    for round in 0..rounds {
        // Alternate the v-loop coefficient back and forth: two source
        // states per variant, so every state recurs across clients.
        let (find, replace) = if round % 2 == 0 {
            ("0.5 * (v(i)", "0.25 * (v(i)")
        } else {
            ("0.25 * (v(i)", "0.5 * (v(i)")
        };
        let edit = Json::Obj(vec![
            ("cmd".into(), Json::str("edit")),
            ("session".into(), Json::str(&sid)),
            ("find".into(), Json::str(find)),
            ("replace".into(), Json::str(replace)),
        ])
        .compact();
        ask(&edit, None)?;
        ask(&compile, Some(&mut latencies))?;
    }
    let close = format!(r#"{{"cmd":"close","session":"{sid}"}}"#);
    ask(&close, None)?;
    Ok(latencies)
}

/// Distinct coefficient per variant so variants never share artifacts
/// (but clients of the *same* variant share everything).
fn variant_source(cfg: &LoadConfig, v: usize) -> String {
    let coeff = format!("0.{:03} * (u(i)", 500 + (v % 499));
    wide_corpus(cfg.procs, cfg.n, cfg.nprocs).replace("0.5 * (u(i)", &coeff)
}

fn percentile(sorted: &[u64], p: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[(sorted.len() - 1) * p as usize / 100]
}

fn throughput_x100(compiles: u64, wall_us: u64) -> u64 {
    if wall_us == 0 {
        return 0;
    }
    (compiles as u128 * 100 * 1_000_000 / wall_us as u128) as u64
}

struct PhaseResult {
    wall_us: u64,
    latencies: Vec<u64>,
    failures: u64,
    hit_rate_x100: u64,
}

/// Runs every client script against a fresh server, with `concurrency`
/// runner threads (1 = the sequential baseline).
fn run_phase(cfg: &LoadConfig, sources: &[String], concurrency: usize) -> PhaseResult {
    let server = Server::new(ServerConfig {
        capacity: cfg.capacity,
        threads: cfg.threads,
        opts: fortrand::CompileOptions::default(),
    });
    let handle = server.spawn("127.0.0.1:0").expect("bind loopback");
    let addr = handle.addr;

    let queue: Arc<Mutex<VecDeque<usize>>> = Arc::new(Mutex::new((0..cfg.clients).collect()));
    let latencies: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let failures = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    let runners: Vec<_> = (0..concurrency.max(1))
        .map(|_| {
            let queue = Arc::clone(&queue);
            let latencies = Arc::clone(&latencies);
            let failures = Arc::clone(&failures);
            let sources = sources.to_vec();
            let rounds = cfg.rounds;
            std::thread::spawn(move || loop {
                let id = match queue.lock().expect("queue").pop_front() {
                    Some(id) => id,
                    None => break,
                };
                match run_client(addr, id, &sources[id % sources.len()], rounds) {
                    Ok(lat) => latencies.lock().expect("latencies").extend(lat),
                    Err(_) => {
                        failures.fetch_add(1, Ordering::Relaxed);
                    }
                }
            })
        })
        .collect();
    for r in runners {
        let _ = r.join();
    }
    let wall_us = start.elapsed().as_micros() as u64;
    let hit_rate_x100 = server.store().stats().hit_rate_x100();
    handle.shutdown();

    let mut latencies = Arc::try_unwrap(latencies)
        .expect("runners joined")
        .into_inner()
        .expect("latencies lock");
    latencies.sort_unstable();
    PhaseResult {
        wall_us,
        latencies,
        failures: failures.load(Ordering::Relaxed),
        hit_rate_x100,
    }
}

/// Runs the full load test: the concurrent multi phase, then the
/// sequential baseline over the same scripts, and derives the report.
pub fn run_load(cfg: &LoadConfig) -> LoadReport {
    let sources: Vec<String> = (0..cfg.variants.max(1))
        .map(|v| variant_source(cfg, v))
        .collect();
    let multi = run_phase(cfg, &sources, cfg.concurrency);
    let baseline = run_phase(cfg, &sources, 1);

    let compiles = (cfg.clients * (cfg.rounds + 1)) as u64;
    let throughput = throughput_x100(compiles, multi.wall_us);
    let baseline_throughput = throughput_x100(compiles, baseline.wall_us);
    LoadReport {
        clients: cfg.clients as u64,
        compiles,
        failures: multi.failures + baseline.failures,
        wall_us: multi.wall_us,
        throughput_x100: throughput,
        p50_us: percentile(&multi.latencies, 50),
        p95_us: percentile(&multi.latencies, 95),
        p99_us: percentile(&multi.latencies, 99),
        hit_rate_x100: multi.hit_rate_x100,
        baseline_wall_us: baseline.wall_us,
        baseline_throughput_x100: baseline_throughput,
        speedup_x100: if multi.wall_us == 0 {
            0
        } else {
            (baseline.wall_us as u128 * 100 / multi.wall_us as u128) as u64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_load_completes_without_failures_and_shares_the_store() {
        let cfg = LoadConfig {
            clients: 12,
            concurrency: 4,
            rounds: 2,
            variants: 2,
            procs: 4,
            n: 32,
            nprocs: 4,
            threads: 2,
            ..LoadConfig::default()
        };
        let report = run_load(&cfg);
        assert_eq!(report.failures, 0, "{report:?}");
        assert_eq!(report.compiles, 36);
        assert!(
            report.hit_rate_x100 >= 50,
            "cross-session hit rate too low: {report:?}"
        );
        assert!(report.p50_us > 0 && report.p99_us >= report.p50_us);
        let json = report.to_json();
        assert!(json.get("speedup_x100").is_some());
    }
}
