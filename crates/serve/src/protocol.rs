//! Wire protocol: line-delimited JSON requests and responses.
//!
//! Built on the zero-dependency [`fortrand::json`] tree. The parser is
//! strict about shape (unknown commands and missing fields are errors)
//! but every error is a *response*, never a dropped connection.

use fortrand::json::{self, Json};

/// One parsed client request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Creates (or replaces) session `session` with `source`.
    Open {
        /// Session id (any non-empty string, client-chosen).
        session: String,
        /// Full Fortran D source text.
        source: String,
    },
    /// Edits the session's source: either a full replacement (`source`)
    /// or a textual find/replace over the current text.
    Edit {
        /// Session id.
        session: String,
        /// Full replacement text, when present.
        source: Option<String>,
        /// Substring to find (with `replace`).
        find: Option<String>,
        /// Replacement for every occurrence of `find`.
        replace: Option<String>,
    },
    /// Compiles the session's current source.
    Compile {
        /// Session id.
        session: String,
    },
    /// Runs the session's last compiled program on the simulated machine.
    Run {
        /// Session id.
        session: String,
    },
    /// Server-wide counters (store, sessions, requests).
    Stats,
    /// Discards a session (its artifacts stay in the shared store).
    Close {
        /// Session id.
        session: String,
    },
}

fn field<'j>(obj: &'j Json, key: &str) -> Result<&'j str, String> {
    obj.get(key)
        .and_then(|v| v.as_str())
        .ok_or_else(|| format!("missing string field {key:?}"))
}

/// Parses one request line. Every failure is a client-visible message.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let obj = json::parse(line).map_err(|e| format!("bad json: {e}"))?;
    let cmd = field(&obj, "cmd")?;
    match cmd {
        "open" => Ok(Request::Open {
            session: field(&obj, "session")?.to_string(),
            source: field(&obj, "source")?.to_string(),
        }),
        "edit" => {
            let session = field(&obj, "session")?.to_string();
            let source = obj.get("source").and_then(|v| v.as_str()).map(String::from);
            let find = obj.get("find").and_then(|v| v.as_str()).map(String::from);
            let replace = obj
                .get("replace")
                .and_then(|v| v.as_str())
                .map(String::from);
            if source.is_none() && (find.is_none() || replace.is_none()) {
                return Err("edit needs either source or find+replace".into());
            }
            Ok(Request::Edit {
                session,
                source,
                find,
                replace,
            })
        }
        "compile" => Ok(Request::Compile {
            session: field(&obj, "session")?.to_string(),
        }),
        "run" => Ok(Request::Run {
            session: field(&obj, "session")?.to_string(),
        }),
        "stats" => Ok(Request::Stats),
        "close" => Ok(Request::Close {
            session: field(&obj, "session")?.to_string(),
        }),
        other => Err(format!("unknown cmd {other:?}")),
    }
}

/// A success response: `{"ok":true, ...fields}` on one line.
pub fn ok_response(fields: Vec<(String, Json)>) -> String {
    let mut all = vec![("ok".to_string(), Json::Bool(true))];
    all.extend(fields);
    Json::Obj(all).compact()
}

/// A failure response: `{"ok":false,"error":...}` on one line.
pub fn err_response(error: &str) -> String {
    Json::Obj(vec![
        ("ok".to_string(), Json::Bool(false)),
        ("error".to_string(), Json::str(error)),
    ])
    .compact()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_command() {
        let r = parse_request(r#"{"cmd":"open","session":"s","source":"X"}"#).unwrap();
        assert_eq!(
            r,
            Request::Open {
                session: "s".into(),
                source: "X".into()
            }
        );
        assert!(matches!(
            parse_request(r#"{"cmd":"edit","session":"s","find":"a","replace":"b"}"#).unwrap(),
            Request::Edit { .. }
        ));
        assert!(matches!(
            parse_request(r#"{"cmd":"compile","session":"s"}"#).unwrap(),
            Request::Compile { .. }
        ));
        assert!(matches!(
            parse_request(r#"{"cmd":"run","session":"s"}"#).unwrap(),
            Request::Run { .. }
        ));
        assert_eq!(parse_request(r#"{"cmd":"stats"}"#).unwrap(), Request::Stats);
        assert!(matches!(
            parse_request(r#"{"cmd":"close","session":"s"}"#).unwrap(),
            Request::Close { .. }
        ));
    }

    #[test]
    fn rejects_malformed_requests_with_messages() {
        assert!(parse_request("not json").is_err());
        assert!(parse_request(r#"{"cmd":"zap"}"#).is_err());
        assert!(parse_request(r#"{"cmd":"open","session":"s"}"#).is_err());
        assert!(parse_request(r#"{"cmd":"edit","session":"s","find":"a"}"#).is_err());
    }

    #[test]
    fn responses_are_single_line_json() {
        let ok = ok_response(vec![("n".into(), Json::Int(3))]);
        assert_eq!(ok, r#"{"ok":true,"n":3}"#);
        let err = err_response("boom \"quoted\"");
        assert!(!err.contains('\n'));
        assert!(json::parse(&err).is_ok());
    }
}
