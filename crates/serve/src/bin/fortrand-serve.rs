//! `fortrand-serve` — the compile-as-a-service daemon.
//!
//! ```text
//! fortrand-serve [--addr HOST:PORT] [--threads N] [--capacity-mb MB]
//! fortrand-serve load [--clients N] [--concurrency N] [--rounds N]
//!                     [--variants N] [--procs N] [--threads N]
//! ```
//!
//! With no subcommand, binds the address (default `127.0.0.1:7377`) and
//! serves the line-delimited JSON protocol until killed. The `load`
//! subcommand runs the in-process load generator and prints the report
//! as JSON on stdout (the same payload `tables serve` gates on).

use fortrand_serve::{run_load, LoadConfig, Server, ServerConfig};

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn parse_num<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    match arg_value(args, flag) {
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("fortrand-serve: bad value for {flag}: {v}");
            std::process::exit(2);
        }),
        None => default,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("load") {
        let defaults = LoadConfig::default();
        let cfg = LoadConfig {
            clients: parse_num(&args, "--clients", defaults.clients),
            concurrency: parse_num(&args, "--concurrency", defaults.concurrency),
            rounds: parse_num(&args, "--rounds", defaults.rounds),
            variants: parse_num(&args, "--variants", defaults.variants),
            procs: parse_num(&args, "--procs", defaults.procs),
            threads: parse_num(&args, "--threads", defaults.threads),
            ..defaults
        };
        let report = run_load(&cfg);
        println!("{}", report.to_json().pretty());
        if report.failures > 0 {
            std::process::exit(1);
        }
        return;
    }

    let addr = arg_value(&args, "--addr").unwrap_or_else(|| "127.0.0.1:7377".to_string());
    let config = ServerConfig {
        threads: parse_num(&args, "--threads", ServerConfig::default().threads),
        capacity: parse_num(&args, "--capacity-mb", 256usize) << 20,
        ..ServerConfig::default()
    };
    let server = Server::new(config);
    if let Err(e) = server.serve_forever(&addr) {
        eprintln!("fortrand-serve: {e}");
        std::process::exit(1);
    }
}
