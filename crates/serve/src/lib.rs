//! # fortrand-serve — compile-as-a-service
//!
//! A long-lived daemon multiplexing many concurrent edit → compile → run
//! sessions over one shared [`fortrand::ArtifactStore`] (content-addressed
//! artifact cache) and one shared [`fortrand::CompilePool`] (wavefront
//! codegen workers). Clients speak a **line-delimited JSON protocol** over
//! TCP: one request object per line, one response object per line.
//!
//! ## Protocol grammar
//!
//! ```text
//! request  := open | edit | compile | run | stats | close
//! open     := {"cmd":"open",    "session":S, "source":TEXT}
//! edit     := {"cmd":"edit",    "session":S, "source":TEXT}
//!           | {"cmd":"edit",    "session":S, "find":TEXT, "replace":TEXT}
//! compile  := {"cmd":"compile", "session":S}
//! run      := {"cmd":"run",     "session":S}
//! stats    := {"cmd":"stats"}
//! close    := {"cmd":"close",   "session":S}
//! response := {"ok":true, ...}  |  {"ok":false, "error":TEXT}
//! ```
//!
//! Failures are isolated per request: a compile error, a simulated-rank
//! failure (`RankFailure`), or even a panic inside the pipeline produces
//! an `{"ok":false}` response on that request only — the connection, the
//! session, and every other session stay live.
//!
//! The [`loadgen`] module is the load-generator harness behind
//! `tables serve` / `tables serve-gate` and `BENCH_serve.json`.

pub mod loadgen;
pub mod protocol;
pub mod server;

pub use loadgen::{run_load, LoadConfig, LoadReport};
pub use server::{Server, ServerConfig};

// Compile-time thread-safety audit: one `Server` is shared by every
// connection thread, and load reports cross the runner-thread join.
const fn assert_send_sync<T: Send + Sync>() {}
const _: () = assert_send_sync::<server::Server>();
const _: () = assert_send_sync::<loadgen::LoadReport>();
