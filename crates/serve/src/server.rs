//! The daemon: shared compile state plus a TCP accept loop.
//!
//! One [`Server`] owns the shared [`ArtifactStore`] and [`CompilePool`];
//! each client session is a cheap handle (source text + an
//! [`IncrementalEngine`] bound to the shared store). Requests mutate only
//! their own session under its own lock, so sessions compile concurrently
//! and interleave on the one worker pool.

use crate::protocol::{err_response, ok_response, parse_request, Request};
use fortrand::json::Json;
use fortrand::{
    try_run_spmd, ArtifactStore, CompileOptions, CompilePool, ExecOptions, IncrementalEngine,
};
use fortrand_machine::Machine;
use fortrand_spmd::SpmdProgram;
use std::collections::{BTreeMap, HashMap};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;

/// Server construction knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Artifact-store capacity in approximate bytes.
    pub capacity: usize,
    /// Codegen worker threads in the shared pool.
    pub threads: usize,
    /// Compile options applied to every session.
    pub opts: CompileOptions,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            capacity: 256 << 20,
            threads: 4,
            opts: CompileOptions::default(),
        }
    }
}

/// One client session: its current source, its incremental engine (whose
/// artifacts live in the *shared* store), and its last compiled program.
struct SessionState {
    source: String,
    engine: IncrementalEngine,
    spmd: Option<SpmdProgram>,
}

/// The daemon state. Wrap in an [`Arc`]; every connection thread holds a
/// clone.
pub struct Server {
    store: Arc<ArtifactStore>,
    pool: CompilePool,
    opts: CompileOptions,
    sessions: Mutex<HashMap<String, Arc<Mutex<SessionState>>>>,
    requests: AtomicU64,
    failures: AtomicU64,
    shutdown: AtomicBool,
    /// Live connection handles (keyed by an accept counter, pruned when
    /// the handler exits), so shutdown can sever clients parked in a
    /// blocking read.
    conns: Mutex<Vec<(u64, TcpStream)>>,
}

/// Recovers a usable guard from a poisoned mutex: a panic in one request
/// must not brick the session (or the session table) for everyone else.
fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl Server {
    /// Builds the shared state (no sockets yet — see [`Server::spawn`]).
    pub fn new(config: ServerConfig) -> Arc<Server> {
        Arc::new(Server {
            store: Arc::new(ArtifactStore::with_capacity(config.capacity)),
            pool: CompilePool::new(config.threads),
            opts: config.opts,
            sessions: Mutex::new(HashMap::new()),
            requests: AtomicU64::new(0),
            failures: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
        })
    }

    /// The shared artifact store (for external stats inspection).
    pub fn store(&self) -> &Arc<ArtifactStore> {
        &self.store
    }

    fn fresh_session(&self, source: String) -> SessionState {
        SessionState {
            source,
            engine: IncrementalEngine::new()
                .with_store(Arc::clone(&self.store))
                .with_pool(self.pool.clone()),
            spmd: None,
        }
    }

    fn session(&self, id: &str) -> Result<Arc<Mutex<SessionState>>, String> {
        relock(&self.sessions)
            .get(id)
            .cloned()
            .ok_or_else(|| format!("no such session {id:?}"))
    }

    /// Handles one request line, returning one response line (no `\n`).
    /// Never panics: pipeline panics become `{"ok":false}` responses.
    pub fn handle_line(&self, line: &str) -> String {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let req = match parse_request(line) {
            Ok(req) => req,
            Err(e) => return self.fail(e),
        };
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| self.dispatch(req)));
        match outcome {
            Ok(Ok(resp)) => resp,
            Ok(Err(e)) => self.fail(e),
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| payload.downcast_ref::<&str>().copied())
                    .unwrap_or("non-string panic payload");
                self.fail(format!("internal panic: {msg}"))
            }
        }
    }

    fn fail(&self, error: String) -> String {
        self.failures.fetch_add(1, Ordering::Relaxed);
        err_response(&error)
    }

    fn dispatch(&self, req: Request) -> Result<String, String> {
        match req {
            Request::Open { session, source } => {
                let state = Arc::new(Mutex::new(self.fresh_session(source)));
                relock(&self.sessions).insert(session, state);
                Ok(ok_response(Vec::new()))
            }
            Request::Edit {
                session,
                source,
                find,
                replace,
            } => {
                let state = self.session(&session)?;
                let mut state = relock(&state);
                match (source, find, replace) {
                    (Some(text), _, _) => state.source = text,
                    (None, Some(find), Some(replace)) => {
                        if !state.source.contains(&find) {
                            return Err(format!("find text {find:?} not present"));
                        }
                        state.source = state.source.replace(&find, &replace);
                    }
                    _ => return Err("edit needs either source or find+replace".into()),
                }
                Ok(ok_response(Vec::new()))
            }
            Request::Compile { session } => {
                let state = self.session(&session)?;
                let mut state = relock(&state);
                let source = state.source.clone();
                let out = state
                    .engine
                    .compile(&source, &self.opts)
                    .map_err(|e| e.to_string())?;
                let fields = vec![
                    ("procs".into(), Json::Int(out.spmd.procs.len() as i128)),
                    ("recompiled".into(), Json::Int(out.recompiled.len() as i128)),
                    ("reused".into(), Json::Int(out.reused.len() as i128)),
                    ("store_hits".into(), Json::Int(out.store.hits as i128)),
                    ("store_misses".into(), Json::Int(out.store.misses as i128)),
                    (
                        "hit_rate_x100".into(),
                        Json::Int(out.store.hit_rate_x100() as i128),
                    ),
                ];
                state.spmd = Some(out.spmd);
                Ok(ok_response(fields))
            }
            Request::Run { session } => {
                let state = self.session(&session)?;
                let state = relock(&state);
                let spmd = state
                    .spmd
                    .as_ref()
                    .ok_or_else(|| format!("session {session:?} has no compiled program"))?;
                let machine = Machine::new(spmd.nprocs);
                let out = try_run_spmd(spmd, &machine, &BTreeMap::new(), &ExecOptions::default())
                    .map_err(|e| e.to_string())?;
                Ok(ok_response(vec![
                    (
                        "time_us_x100".into(),
                        Json::Int((out.stats.time_us * 100.0) as i128),
                    ),
                    ("msgs".into(), Json::Int(out.stats.total_msgs as i128)),
                    ("bytes".into(), Json::Int(out.stats.total_bytes as i128)),
                ]))
            }
            Request::Stats => {
                let st = self.store.stats();
                Ok(ok_response(vec![
                    (
                        "sessions".into(),
                        Json::Int(relock(&self.sessions).len() as i128),
                    ),
                    (
                        "requests".into(),
                        Json::Int(self.requests.load(Ordering::Relaxed) as i128),
                    ),
                    (
                        "failures".into(),
                        Json::Int(self.failures.load(Ordering::Relaxed) as i128),
                    ),
                    ("store_hits".into(), Json::Int(st.hits as i128)),
                    ("store_misses".into(), Json::Int(st.misses as i128)),
                    ("store_evictions".into(), Json::Int(st.evictions as i128)),
                    ("store_entries".into(), Json::Int(st.entries as i128)),
                    ("store_cost".into(), Json::Int(st.cost as i128)),
                    (
                        "hit_rate_x100".into(),
                        Json::Int(st.hit_rate_x100() as i128),
                    ),
                ]))
            }
            Request::Close { session } => {
                relock(&self.sessions)
                    .remove(&session)
                    .ok_or_else(|| format!("no such session {session:?}"))?;
                Ok(ok_response(Vec::new()))
            }
        }
    }
}

/// A running server: its listening address plus the shutdown plumbing.
pub struct ServerHandle {
    /// The shared daemon state.
    pub server: Arc<Server>,
    /// The bound listening address (an ephemeral port unless configured).
    pub addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// Signals the accept loop to stop, unblocks it with a throwaway
    /// connection, and joins every connection thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.server.shutdown.store(true, Ordering::SeqCst);
        // The accept loop only observes the flag on its next wakeup.
        let _ = TcpStream::connect(self.addr);
        // Sever clients parked in a blocking read so their handler
        // threads unwind and the accept thread can join them.
        for (_, s) in relock(&self.server.conns).drain(..) {
            let _ = s.shutdown(std::net::Shutdown::Both);
        }
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.stop();
        }
    }
}

fn handle_connection(server: &Server, stream: TcpStream, conn_id: u64) {
    if let Ok(w) = stream.try_clone() {
        let mut writer = w;
        let reader = BufReader::new(stream);
        for line in reader.lines() {
            let line = match line {
                Ok(l) => l,
                Err(_) => break,
            };
            if line.trim().is_empty() {
                continue;
            }
            let mut resp = server.handle_line(&line);
            resp.push('\n');
            if writer.write_all(resp.as_bytes()).is_err() {
                break;
            }
        }
    }
    relock(&server.conns).retain(|(id, _)| *id != conn_id);
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// serves connections on a background thread, one thread per client.
    pub fn spawn(self: &Arc<Server>, addr: &str) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let bound = listener.local_addr()?;
        let server = Arc::clone(self);
        let accept_thread = std::thread::Builder::new()
            .name("serve-accept".into())
            .spawn(move || {
                let mut handlers: Vec<JoinHandle<()>> = Vec::new();
                let mut next_id: u64 = 0;
                for stream in listener.incoming() {
                    if server.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let conn_id = next_id;
                    next_id += 1;
                    if let Ok(clone) = stream.try_clone() {
                        relock(&server.conns).push((conn_id, clone));
                    }
                    let server = Arc::clone(&server);
                    if let Ok(t) = std::thread::Builder::new()
                        .name("serve-conn".into())
                        .spawn(move || handle_connection(&server, stream, conn_id))
                    {
                        handlers.push(t);
                    }
                }
                for t in handlers {
                    let _ = t.join();
                }
            })?;
        Ok(ServerHandle {
            server: Arc::clone(self),
            addr: bound,
            accept_thread: Some(accept_thread),
        })
    }

    /// Serves `addr` on the calling thread until the process exits. Used
    /// by the `fortrand-serve` binary.
    pub fn serve_forever(self: &Arc<Server>, addr: &str) -> std::io::Result<()> {
        let listener = TcpListener::bind(addr)?;
        eprintln!("fortrand-serve listening on {}", listener.local_addr()?);
        for stream in listener.incoming() {
            let Ok(stream) = stream else { continue };
            let server = Arc::clone(self);
            // No conn registry here: this loop never shuts down, so
            // there is nothing to sever (id 0 prunes nothing).
            std::thread::Builder::new()
                .name("serve-conn".into())
                .spawn(move || handle_connection(&server, stream, 0))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fortrand::json;

    fn source() -> String {
        fortrand::corpus::wide_corpus(4, 64, 4)
    }

    fn open(server: &Server, sid: &str, source: &str) {
        let req = Json::Obj(vec![
            ("cmd".into(), Json::str("open")),
            ("session".into(), Json::str(sid)),
            ("source".into(), Json::str(source)),
        ])
        .compact();
        let resp = server.handle_line(&req);
        assert!(resp.contains("\"ok\":true"), "{resp}");
    }

    #[test]
    fn compile_reports_store_counters_and_shares_across_sessions() {
        let server = Server::new(ServerConfig::default());
        open(&server, "s1", &source());
        let resp = server.handle_line(r#"{"cmd":"compile","session":"s1"}"#);
        let obj = json::parse(&resp).unwrap();
        assert!(obj.get("recompiled").and_then(Json::as_int).unwrap() > 0);
        // A second session over identical source hits the shared store.
        open(&server, "s2", &source());
        let resp = server.handle_line(r#"{"cmd":"compile","session":"s2"}"#);
        let obj = json::parse(&resp).unwrap();
        assert_eq!(
            obj.get("recompiled").and_then(Json::as_int),
            Some(0),
            "{resp}"
        );
        assert!(obj.get("reused").and_then(Json::as_int).unwrap() > 0);
        assert!(obj.get("hit_rate_x100").and_then(Json::as_int).unwrap() >= 50);
    }

    #[test]
    fn bad_requests_fail_without_killing_the_session() {
        let server = Server::new(ServerConfig::default());
        open(&server, "s", &source());
        let resp =
            server.handle_line(r#"{"cmd":"edit","session":"s","find":"NOPE","replace":"x"}"#);
        assert!(resp.contains("\"ok\":false"), "{resp}");
        let resp = server.handle_line(r#"{"cmd":"compile","session":"s"}"#);
        assert!(resp.contains("\"ok\":true"), "{resp}");
    }

    #[test]
    fn tcp_round_trip_on_ephemeral_port() {
        let server = Server::new(ServerConfig::default());
        let handle = server.spawn("127.0.0.1:0").unwrap();
        let stream = TcpStream::connect(handle.addr).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        let open = Json::Obj(vec![
            ("cmd".into(), Json::str("open")),
            ("session".into(), Json::str("t")),
            ("source".into(), Json::str(source())),
        ])
        .compact();
        for req in [
            open.as_str(),
            r#"{"cmd":"compile","session":"t"}"#,
            r#"{"cmd":"run","session":"t"}"#,
            r#"{"cmd":"stats"}"#,
            r#"{"cmd":"close","session":"t"}"#,
        ] {
            writer.write_all(req.as_bytes()).unwrap();
            writer.write_all(b"\n").unwrap();
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert!(line.contains("\"ok\":true"), "{req} -> {line}");
        }
        handle.shutdown();
    }
}
