//! `Machine::try_run` surfaces a rank panic as a value with the failing
//! rank id instead of unwinding (or cascading `Option::unwrap`s).

use fortrand_machine::Machine;
use std::time::Duration;

#[test]
fn try_run_reports_failing_rank() {
    // Rank 2 panics; the others finish (no blocking receives involved).
    let m = Machine::new(4);
    let err = m
        .try_run(|node| {
            if node.rank() == 2 {
                panic!("boom on rank 2");
            }
            node.charge_flops(10);
        })
        .unwrap_err();
    assert_eq!(err.rank, 2);
    assert!(err.message.contains("boom on rank 2"), "{}", err.message);
    assert!(err.to_string().contains("rank 2 panicked"), "{err}");
}

#[test]
fn try_run_picks_lowest_failing_rank() {
    let m = Machine::new(4);
    let err = m
        .try_run(|node| {
            if node.rank() >= 1 {
                panic!("rank {} down", node.rank());
            }
        })
        .unwrap_err();
    assert_eq!(err.rank, 1);
}

#[test]
fn try_run_with_blocked_peer_still_returns() {
    // Rank 0 panics before sending; rank 1 blocks on the receive until the
    // (shrunk) deadlock timeout, then panics too. try_run must join both
    // and report the root cause deterministically (lowest rank).
    let m = Machine::new(2).with_deadlock_timeout(Duration::from_millis(50));
    let err = m
        .try_run(|node| {
            if node.rank() == 0 {
                panic!("sender died");
            } else {
                node.recv(0, 7);
            }
        })
        .unwrap_err();
    assert_eq!(err.rank, 0);
    assert!(err.message.contains("sender died"), "{}", err.message);
}

#[test]
fn try_run_ok_matches_run() {
    let m = Machine::new(3);
    let body = |node: &mut fortrand_machine::Node| {
        if node.rank() == 0 {
            node.send(1, 5, &[1.0, 2.0]);
        } else if node.rank() == 1 {
            node.recv(0, 5);
        }
        node.barrier();
    };
    let a = m.try_run(body).unwrap();
    let b = m.run(body);
    assert_eq!(a.time_us, b.time_us);
    assert_eq!(a.total_msgs, b.total_msgs);
}

#[test]
#[should_panic(expected = "original diagnostic")]
fn run_preserves_panic_payload() {
    let m = Machine::new(2);
    m.run(|node| {
        if node.rank() == 1 {
            panic!("the original diagnostic text");
        }
    });
}
