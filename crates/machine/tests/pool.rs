//! Buffer-pool behaviour: a payload released by a receiver must be
//! reusable by a later send instead of forcing a fresh allocation.

use fortrand_machine::Machine;

#[test]
fn pooled_buffer_reused_across_sends() {
    let m = Machine::new(2);
    let stats = m.run(|node| {
        if node.rank() == 0 {
            node.send(1, 1, &[1.0, 2.0, 3.0, 4.0]);
        } else {
            // Receive the raw payload and drop it while still pooled, so the
            // buffer returns to the shared free list.
            let p = node.recv_payload(0, 1);
            assert_eq!(&p[..], &[1.0, 2.0, 3.0, 4.0]);
            drop(p);
        }
        // Barrier so the drop above is ordered before the next acquire.
        node.barrier();
        if node.rank() == 0 {
            node.send(1, 2, &[5.0, 6.0]);
        } else {
            let d = node.recv(0, 2);
            assert_eq!(d, vec![5.0, 6.0]);
        }
    });
    assert!(
        stats.pool_reuses >= 1,
        "expected at least one pooled-buffer reuse, got {} (allocs {})",
        stats.pool_reuses,
        stats.pool_allocs
    );
    assert!(stats.pool_allocs >= 1);
}

#[test]
fn recv_vec_is_zero_copy_for_sole_owner() {
    // recv() on a point-to-point message should hand back the sender's
    // buffer without copying; observable as the pool never seeing the
    // buffer again (take_data severs pool custody) while contents match.
    let m = Machine::new(2);
    let stats = m.run(|node| {
        if node.rank() == 0 {
            node.send(1, 9, &[7.0; 128]);
        } else {
            let d = node.recv(0, 9);
            assert_eq!(d.len(), 128);
            assert!(d.iter().all(|&x| x == 7.0));
        }
    });
    assert_eq!(stats.total_msgs, 1);
    assert_eq!(stats.total_bytes, 128 * 8);
}
