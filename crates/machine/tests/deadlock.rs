//! The simulator's deadlock path: a receive with no matching send must
//! fail loudly with the documented diagnostic instead of hanging the test
//! suite — that diagnostic is how compiler bugs that emit mismatched
//! communication surface during the paper reproductions.

use fortrand_machine::Machine;
use std::time::{Duration, Instant};

#[test]
fn unmatched_recv_panics_with_deadlock_diagnostic_within_timeout() {
    let machine = Machine::new(2).with_deadlock_timeout(Duration::from_millis(200));
    let t0 = Instant::now();
    // Silence the default panic-to-stderr printer for the expected panic.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        machine.run(|node| {
            if node.rank() == 0 {
                node.recv(1, 42);
            }
        });
    }));
    std::panic::set_hook(prev_hook);
    let elapsed = t0.elapsed();

    let err = res.expect_err("run must propagate the deadlock panic");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(
        msg.contains("deadlock: rank 0 waited"),
        "unexpected diagnostic: {msg}"
    );
    assert!(
        msg.contains("for a message from 1 (tag 42)"),
        "unexpected diagnostic: {msg}"
    );
    // The shrunk timeout must be honored: well under the 30 s default.
    assert!(
        elapsed < Duration::from_secs(10),
        "diagnostic took {elapsed:?}"
    );
}

#[test]
fn tag_mismatch_panics_with_diagnostic() {
    let machine = Machine::new(2).with_deadlock_timeout(Duration::from_millis(500));
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        machine.run(|node| {
            if node.rank() == 0 {
                node.send(1, 7, &[1.0]);
            } else {
                node.recv(0, 8);
            }
        });
    }));
    std::panic::set_hook(prev_hook);
    let err = res.expect_err("tag mismatch must panic");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(
        msg.contains("tag mismatch on rank 1"),
        "unexpected diagnostic: {msg}"
    );
}
