//! Event-scheduler-specific behavior: structural deadlock detection (no
//! wall-clock timeout — the scheduler *proves* the deadlock from an empty
//! event queue and reports the whole waiting rank set), rank panics
//! surfacing as `RankFailure`, topology-model latency, and scheduler
//! counters.

use fortrand_machine::{CostModel, HypercubeNet, Machine, MachineKind, NetworkModel, TorusNet};
use std::time::{Duration, Instant};

/// Runs `f` with the default panic-to-stderr printer silenced (the tests
/// here provoke panics on purpose).
fn quiet<T>(f: impl FnOnce() -> T) -> T {
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    std::panic::set_hook(prev_hook);
    out
}

#[test]
fn deadlock_detected_instantly_without_timeout() {
    // Default (Event) machine, default 30 s timeout: the event scheduler
    // never arms it — an unmatched receive is detected structurally.
    let machine = Machine::new(2);
    assert_eq!(machine.kind, MachineKind::Event);
    let t0 = Instant::now();
    let err = quiet(|| {
        machine.try_run(|node| {
            if node.rank() == 0 {
                node.recv(1, 42);
            }
        })
    })
    .expect_err("unmatched recv must fail");
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "structural detection must not wait for a timeout"
    );
    assert_eq!(err.rank, 0);
    assert!(
        err.message.contains("deadlock: rank 0 waited"),
        "diagnostic: {}",
        err.message
    );
    assert!(
        err.message.contains("for a message from 1 (tag 42)"),
        "diagnostic: {}",
        err.message
    );
    assert!(
        err.message.contains("blocked ranks [0]"),
        "diagnostic must list the waiting rank set: {}",
        err.message
    );
}

#[test]
fn deadlock_reports_every_waiting_rank() {
    // Rank 0 waits on a message that never comes; ranks 1 and 2 wait in a
    // barrier rank 0 never reaches. All three must appear in the report.
    let machine = Machine::new(3);
    let err = quiet(|| {
        machine.try_run(|node| {
            if node.rank() == 0 {
                node.recv(2, 9);
            } else {
                node.barrier();
            }
        })
    })
    .expect_err("cyclic wait must fail");
    assert!(
        err.message
            .contains("rank 0 waited for a message from 2 (tag 9)"),
        "diagnostic: {}",
        err.message
    );
    assert!(
        err.message.contains("rank 1 waited in a collective"),
        "diagnostic: {}",
        err.message
    );
    assert!(
        err.message.contains("blocked ranks [0, 1, 2]"),
        "diagnostic: {}",
        err.message
    );
}

#[test]
fn rank_panic_surfaces_as_rank_failure() {
    // A genuine body panic under the event machine: the failing rank and
    // message win over the induced unwinds of peers blocked on it.
    let machine = Machine::new(4);
    let err = quiet(|| {
        machine.try_run(|node| {
            if node.rank() == 2 {
                panic!("boom on rank 2");
            }
            node.barrier();
        })
    })
    .expect_err("rank 2 panic must surface");
    assert_eq!(err.rank, 2);
    assert!(
        err.message.contains("boom on rank 2"),
        "message: {}",
        err.message
    );
}

#[test]
fn peer_blocked_on_dead_rank_reports_the_dead_rank() {
    // Rank 0 dies before sending; rank 1's receive can then never be
    // satisfied. The reported failure must be the root cause (rank 0).
    let machine = Machine::new(2);
    let err = quiet(|| {
        machine.try_run(|node| {
            if node.rank() == 0 {
                panic!("sender died");
            } else {
                node.recv(0, 7);
            }
        })
    })
    .expect_err("must fail");
    assert_eq!(err.rank, 0);
    assert!(
        err.message.contains("sender died"),
        "message: {}",
        err.message
    );
}

#[test]
fn scheduler_counters_populated_under_event_only() {
    let body = |node: &mut fortrand_machine::Node| {
        if node.rank() == 0 {
            node.send(1, 1, &[1.0, 2.0]);
        } else {
            node.recv(0, 1);
        }
        node.barrier();
    };
    let ev = Machine::new(2).run(body);
    assert!(ev.sched_switches > 0, "event machine dispatches tasks");
    assert_eq!(ev.sched_msgs, 1);
    assert!(ev.sched_ready_peak >= 1);
    // One point-to-point message may sit queued, and the barrier's two
    // contributions count as queued work until the collective finishes.
    assert!((1..=2).contains(&ev.sched_queue_peak));
    let th = Machine::threaded(2).run(body);
    assert_eq!(th.sched_switches, 0, "threaded machine has no scheduler");
    assert_eq!(th.sched_msgs, 0);
}

#[test]
fn network_models_delay_delivery_identically_on_both_machines() {
    // 4 ranks on a hypercube: 0 -> 3 is two hops, so delivery lags the
    // sender's post-send clock by one per_hop_us.
    let cost = CostModel {
        alpha_us: 10.0,
        beta_us_per_byte: 0.0,
        flop_us: 0.0,
        op_us: 0.0,
        ..CostModel::ipsc860()
    };
    let per_hop = 7.0;
    let run = |kind: MachineKind| {
        Machine::with_cost(4, cost.clone())
            .with_kind(kind)
            .with_network(HypercubeNet::new(per_hop))
            .run(|node| {
                if node.rank() == 0 {
                    node.send(3, 0, &[1.0]);
                } else if node.rank() == 3 {
                    node.recv(0, 0);
                    // α + (2-1 hops)·per_hop.
                    assert_eq!(node.clock(), 10.0 + 7.0);
                }
            })
    };
    let ev = run(MachineKind::Event);
    let th = run(MachineKind::Threaded);
    assert_eq!(ev.time_us.to_bits(), th.time_us.to_bits());
    assert_eq!(ev.time_us, 17.0);
}

#[test]
fn torus_wraparound_is_cheap() {
    let net = TorusNet::new(2, 2, 100.0);
    // On a 2x2 torus row/column neighbors are one hop (wraparound makes
    // every axis distance at most 1); only the diagonal pairs pay a hop.
    let c = CostModel::ipsc860();
    for src in 0..4usize {
        for dst in 0..4usize {
            let diagonal = src != dst && src + dst == 3;
            let want = if diagonal { 100.0 } else { 0.0 };
            assert_eq!(net.extra_latency_us(src, dst, 8, &c), want);
        }
    }
    assert_eq!(net.name(), "torus");
}

#[test]
fn event_machine_scales_past_the_threaded_channel_limit() {
    // A 512-rank ring pass: O(p) mailboxes instead of the threaded
    // machine's O(p²) channel array. Completes in well under a second.
    let p = 512;
    let stats = Machine::new(p).run(|node| {
        let r = node.rank();
        if r == 0 {
            node.send(1, 0, &[0.0]);
        } else {
            let d = node.recv(r - 1, 0);
            if r + 1 < node.nprocs() {
                node.send(r + 1, 0, &[d[0] + 1.0]);
            }
        }
    });
    assert_eq!(stats.total_msgs, (p - 1) as u64);
    assert_eq!(stats.per_node.len(), p);
    assert!(stats.sched_switches >= p as u64);
}
