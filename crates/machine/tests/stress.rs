//! Stress and edge-case tests for the machine simulator: collective
//! sequences under skewed clocks, many-tag traffic, maxloc corner cases,
//! and cost-model accounting invariants.

use fortrand_machine::{CostModel, Machine};

#[test]
fn many_tags_interleaved_fifo() {
    let m = Machine::new(3);
    let stats = m.run(|node| {
        let r = node.rank();
        if r == 0 {
            for round in 0..50u64 {
                node.send(1, round * 2, &[round as f64]);
                node.send(2, round * 2 + 1, &[round as f64 + 0.5]);
            }
        } else {
            for round in 0..50u64 {
                let tag = if r == 1 { round * 2 } else { round * 2 + 1 };
                let d = node.recv(0, tag);
                let expect = round as f64 + if r == 2 { 0.5 } else { 0.0 };
                assert_eq!(d[0], expect);
            }
        }
    });
    assert_eq!(stats.total_msgs, 100);
}

#[test]
fn collectives_with_heavily_skewed_clocks() {
    let m = Machine::with_cost(
        4,
        CostModel {
            flop_us: 1.0,
            ..CostModel::ipsc860()
        },
    );
    m.run(|node| {
        // Rank 3 is 10^6 µs ahead.
        if node.rank() == 3 {
            node.charge_flops(1_000_000);
        }
        let s = node.allreduce_sum(1.0);
        assert_eq!(s, 4.0);
        // Everyone lands at or beyond the slowest clock.
        assert!(node.clock() >= 1_000_000.0);
        // Collectives keep working afterwards.
        node.barrier();
        let (v, p) = node.allreduce_maxloc(node.rank() as f64, &[node.rank() as f64 * 2.0]);
        assert_eq!(v, 3.0);
        assert_eq!(p, vec![6.0]);
    });
}

#[test]
fn maxloc_all_negative_values() {
    let m = Machine::new(3);
    m.run(|node| {
        let v = -(node.rank() as f64 + 1.0); // -1, -2, -3
        let (best, payload) = node.allreduce_maxloc(v, &[v * 10.0]);
        assert_eq!(best, -1.0);
        assert_eq!(payload, vec![-10.0]);
    });
}

#[test]
fn single_processor_collectives_are_free() {
    let m = Machine::new(1);
    let stats = m.run(|node| {
        let before = node.clock();
        let s = node.allreduce_sum(7.0);
        assert_eq!(s, 7.0);
        let d = node.bcast(0, &[1.0, 2.0]);
        assert_eq!(d, vec![1.0, 2.0]);
        assert_eq!(node.clock(), before, "P=1 collectives cost nothing");
    });
    assert_eq!(stats.total_msgs, 0);
}

#[test]
fn wait_time_accounted_as_idle() {
    let cost = CostModel {
        alpha_us: 10.0,
        beta_us_per_byte: 0.0,
        flop_us: 1.0,
        ..CostModel::ipsc860()
    };
    let m = Machine::with_cost(2, cost);
    let stats = m.run(|node| {
        if node.rank() == 0 {
            node.charge_flops(500); // sender is busy first
            node.send(1, 0, &[1.0]);
        } else {
            node.recv(0, 0); // receiver idles ~510 µs
        }
    });
    assert!(stats.per_node[1].wait_us > 500.0, "{:?}", stats.per_node[1]);
    assert!(stats.per_node[0].wait_us == 0.0);
}

#[test]
fn byte_accounting_matches_payloads() {
    let m = Machine::new(2);
    let stats = m.run(|node| {
        if node.rank() == 0 {
            node.send(1, 1, &vec![0.0; 100]);
            node.send(1, 2, &vec![0.0; 28]);
        } else {
            node.recv(0, 1);
            node.recv(0, 2);
        }
    });
    assert_eq!(stats.total_bytes, (100 + 28) * 8);
    assert_eq!(stats.per_node[0].bytes_sent, (100 + 28) * 8);
}

#[test]
fn thirty_two_ranks_tree_patterns() {
    let m = Machine::new(32);
    let stats = m.run(|node| {
        let got = node.bcast(5, &if node.rank() == 5 { vec![42.0] } else { vec![] });
        assert_eq!(got, vec![42.0]);
        let s = node.allreduce_sum(1.0);
        assert_eq!(s, 32.0);
        node.barrier();
    });
    // bcast: 31 logical msgs; allreduce: 2*31.
    assert_eq!(stats.total_msgs, 31 + 62);
}

#[test]
fn compiled_program_simulation_is_deterministic() {
    // End-to-end determinism of the whole stack (the property EXPERIMENTS
    // relies on): identical stats across repeated runs of a real compiled
    // program with real thread scheduling jitter.
    use fortrand_machine::Machine as M;
    let run = || {
        let m = M::new(4);
        m.run(|node| {
            let r = node.rank();
            node.charge_flops((r as u64 + 3) * 97);
            for dst in 0..4 {
                if dst != r {
                    node.send(dst, (r * 4 + dst) as u64, &vec![r as f64; r + 1]);
                }
            }
            for src in 0..4 {
                if src != r {
                    node.recv(src, (src * 4 + r) as u64);
                }
            }
            node.barrier();
            node.allreduce_sum(r as f64);
        })
    };
    let a = run();
    for _ in 0..5 {
        let b = run();
        assert_eq!(a.time_us, b.time_us);
        assert_eq!(a.total_msgs, b.total_msgs);
        assert_eq!(a.total_bytes, b.total_bytes);
        for (x, y) in a.per_node.iter().zip(&b.per_node) {
            assert_eq!(x.time_us, y.time_us);
            assert_eq!(x.wait_us, y.wait_us);
        }
    }
}
