//! Per-processor execution handle.

use crate::collective::{CollOut, Contribution, SharedCollectives, SharedPosted};
use crate::cost::{CostModel, NetworkModel};
use crate::sched::EventShared;
use crate::stats::NodeStats;
use fortrand_trace::{Trace, PID_MACHINE};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// How long a real thread may block on a simulated receive before the run
/// is declared deadlocked. Generous: simulation work is microseconds.
/// Tests shrink it via [`crate::Machine::with_deadlock_timeout`] so the
/// deadlock path can be exercised without a 30-second stall.
pub(crate) const DEADLOCK_TIMEOUT: Duration = Duration::from_secs(30);

/// Machine-wide free list of `Vec<f64>` message buffers. Senders acquire a
/// buffer instead of allocating, and a [`Payload`] returns its buffer here
/// when the last reference drops (usually on the receiving rank), so steady
/// states — a loop sending the same-shaped message every iteration — stop
/// allocating entirely. Counters are aggregated into
/// [`crate::RunStats::pool_reuses`] after a run.
#[derive(Debug, Default)]
pub struct BufferPool {
    free: Mutex<Vec<Vec<f64>>>,
    reuses: AtomicU64,
    allocs: AtomicU64,
    bytes_reused: AtomicU64,
}

impl BufferPool {
    /// A fresh, shareable pool.
    pub fn new() -> Arc<BufferPool> {
        Arc::new(BufferPool::default())
    }

    /// Takes a cleared buffer from the free list, or allocates one.
    pub fn acquire(&self) -> Vec<f64> {
        if let Some(mut v) = self.free.lock().expect("buffer pool poisoned").pop() {
            self.reuses.fetch_add(1, Ordering::Relaxed);
            self.bytes_reused
                .fetch_add((v.capacity() * 8) as u64, Ordering::Relaxed);
            v.clear();
            v
        } else {
            self.allocs.fetch_add(1, Ordering::Relaxed);
            Vec::new()
        }
    }

    fn recycle(&self, v: Vec<f64>) {
        if v.capacity() > 0 {
            self.free.lock().expect("buffer pool poisoned").push(v);
        }
    }

    /// Wraps a buffer into a refcounted payload that recycles itself here
    /// on last drop.
    pub fn wrap(self: &Arc<Self>, data: Vec<f64>) -> Payload {
        Arc::new(PayloadBuf {
            data: Some(data),
            pool: Some(Arc::clone(self)),
        })
    }

    /// `(reuses, allocs, bytes_reused)` counters so far.
    pub fn counters(&self) -> (u64, u64, u64) {
        (
            self.reuses.load(Ordering::Relaxed),
            self.allocs.load(Ordering::Relaxed),
            self.bytes_reused.load(Ordering::Relaxed),
        )
    }
}

/// Refcounted message payload. Cloning a `Payload` shares the underlying
/// buffer (broadcast hands every waiter the same `Arc`); when the last
/// reference drops, a pooled buffer goes back to its [`BufferPool`].
pub type Payload = Arc<PayloadBuf>;

/// The buffer behind a [`Payload`]; derefs to `[f64]`.
#[derive(Debug)]
pub struct PayloadBuf {
    data: Option<Vec<f64>>,
    pool: Option<Arc<BufferPool>>,
}

impl PayloadBuf {
    /// A payload that frees (rather than recycles) its buffer.
    pub fn unpooled(data: Vec<f64>) -> Payload {
        Arc::new(PayloadBuf {
            data: Some(data),
            pool: None,
        })
    }

    fn take_data(&mut self) -> Vec<f64> {
        self.pool = None; // the caller owns the buffer now
        self.data.take().unwrap_or_default()
    }
}

impl std::ops::Deref for PayloadBuf {
    type Target = [f64];
    fn deref(&self) -> &[f64] {
        self.data.as_deref().unwrap_or(&[])
    }
}

impl Drop for PayloadBuf {
    fn drop(&mut self) {
        if let (Some(v), Some(pool)) = (self.data.take(), self.pool.take()) {
            pool.recycle(v);
        }
    }
}

/// One simulated message: a source, a tag, a payload of f64 words, and
/// the virtual time at which it becomes available to the receiver.
#[derive(Clone, Debug)]
pub struct Msg {
    /// Sending rank. The event machine's per-destination mailboxes
    /// dispatch on it; the threaded machine's pairwise channels imply it.
    pub src: usize,
    /// User tag; receives assert on it to catch compiler bugs early.
    pub tag: u64,
    /// Payload (Fortran REALs are simulated as f64 throughout). Shared,
    /// not copied: the channel moves one `Arc`.
    pub data: Payload,
    /// Virtual time at which the receiver may consume the message.
    pub avail_at_us: f64,
}

/// How a [`Node`] talks to its peers: free-running threads over pairwise
/// channels, or cooperatively scheduled tasks over the event scheduler's
/// mailboxes. All cost accounting lives in [`Node`] itself, outside this
/// enum — which is what makes the two machines' observables identical by
/// construction.
pub(crate) enum CommBackend {
    Threaded {
        /// Pairwise FIFO channels, indexed `[src * nprocs + dst]`.
        senders: Arc<Vec<Sender<Msg>>>,
        /// This rank's receive ends, indexed by source.
        receivers: Vec<Receiver<Msg>>,
        collectives: Arc<SharedCollectives>,
        posted: Arc<SharedPosted>,
        deadlock_timeout: Duration,
    },
    Event(Arc<EventShared>),
}

/// Handle given to each node of an SPMD program run under
/// [`crate::Machine::run`]. Provides message passing, collectives, and
/// explicit cost charging, all against this node's virtual clock.
pub struct Node {
    rank: usize,
    nprocs: usize,
    cost: CostModel,
    net: Arc<dyn NetworkModel>,
    clock_us: f64,
    comm: CommBackend,
    pool: Arc<BufferPool>,
    stats: NodeStats,
    trace: Trace,
    /// Posted-broadcast sequence counter. Every rank executes the same
    /// posts in the same order (the overlap optimizer only emits them
    /// under replicated guards), so these agree across ranks and key the
    /// shared in-flight table without a rendezvous.
    posted_seq: u64,
}

impl Node {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        rank: usize,
        nprocs: usize,
        cost: CostModel,
        net: Arc<dyn NetworkModel>,
        comm: CommBackend,
        pool: Arc<BufferPool>,
        trace: Trace,
    ) -> Self {
        if trace.on() {
            trace.name_track(PID_MACHINE, rank as u32, &format!("rank {rank}"));
        }
        Node {
            rank,
            nprocs,
            cost,
            net,
            clock_us: 0.0,
            comm,
            pool,
            stats: NodeStats::default(),
            trace,
            posted_seq: 0,
        }
    }

    /// Runs this rank's collective contribution through whichever backend
    /// is in effect; both paths share [`crate::collective::CollCore`], so
    /// completion times agree bit-for-bit.
    fn coll(&self, c: Contribution) -> CollOut {
        match &self.comm {
            CommBackend::Threaded { collectives, .. } => collectives.rendezvous(c),
            CommBackend::Event(shared) => shared.collective(self.rank, self.clock_us, c),
        }
    }

    /// The trace handle shared with the machine; engines use it to record
    /// execution slices on this rank's track (pid [`PID_MACHINE`],
    /// tid = rank) in *simulated* time.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// This node's rank, `0 ≤ rank < nprocs` (the paper's `my$p`).
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of processors (the paper's `n$proc`).
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    /// Current virtual clock in µs.
    pub fn clock(&self) -> f64 {
        self.clock_us
    }

    /// The cost model in effect.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Charges `n` floating-point operations to this node's clock.
    pub fn charge_flops(&mut self, n: u64) {
        self.stats.flops += n;
        self.clock_us += n as f64 * self.cost.flop_us;
    }

    /// Charges `n` scalar/control operations (guards, ownership tests,
    /// address arithmetic).
    pub fn charge_ops(&mut self, n: u64) {
        self.stats.ops += n;
        self.clock_us += n as f64 * self.cost.op_us;
    }

    /// Charges one remap library invocation (fixed overhead; data motion is
    /// charged separately as messages by the caller).
    pub fn charge_remap(&mut self) {
        self.stats.remaps += 1;
        self.clock_us += self.cost.remap_call_us;
    }

    /// The machine-wide message [`BufferPool`].
    pub fn buffer_pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Takes a cleared message buffer from the pool (see [`Node::send_buf`]).
    pub fn acquire_buf(&self) -> Vec<f64> {
        self.pool.acquire()
    }

    /// Sends `data` to `dst` with `tag`. Non-blocking in real time; charges
    /// the sender `α + β·bytes` of virtual time. The message becomes
    /// available to the receiver at the sender's post-send clock.
    ///
    /// Copies `data` into a pooled buffer; hot paths that build the payload
    /// themselves should fill an [`Node::acquire_buf`] buffer and hand it to
    /// [`Node::send_buf`] instead.
    pub fn send(&mut self, dst: usize, tag: u64, data: &[f64]) {
        let mut buf = self.acquire_buf();
        buf.extend_from_slice(data);
        self.send_buf(dst, tag, buf);
    }

    /// [`Node::send`] taking ownership of the payload buffer — zero-copy:
    /// the buffer travels as a refcounted [`Payload`] and returns to the
    /// pool when the receiver drops it.
    pub fn send_buf(&mut self, dst: usize, tag: u64, data: Vec<f64>) {
        assert!(dst < self.nprocs, "send to rank {dst} of {}", self.nprocs);
        assert_ne!(dst, self.rank, "self-send: rank {dst}");
        let bytes = (data.len() * 8) as u64;
        let t0 = self.clock_us;
        self.clock_us += self.cost.send_cost(bytes);
        self.stats.record_msgs(1, bytes, Some(tag));
        if self.trace.on() {
            self.trace.complete(
                PID_MACHINE,
                self.rank as u32,
                "msg",
                "send",
                t0,
                self.clock_us - t0,
                vec![
                    ("dst", (dst as i64).into()),
                    ("tag", (tag as i64).into()),
                    ("bytes", (bytes as i64).into()),
                ],
            );
        }
        let msg = Msg {
            src: self.rank,
            tag,
            data: self.pool.wrap(data),
            avail_at_us: self.clock_us
                + self.net.extra_latency_us(self.rank, dst, bytes, &self.cost),
        };
        match &self.comm {
            CommBackend::Threaded { senders, .. } => senders[self.rank * self.nprocs + dst]
                .send(msg)
                .expect("machine channel closed while sending"),
            CommBackend::Event(shared) => shared.send_msg(dst, msg),
        }
    }

    /// Receives the next message from `src`, asserting its tag. Blocks (in
    /// real time) until available; advances the virtual clock to at least
    /// the message's availability time and records the wait as idle time.
    ///
    /// # Panics
    /// Panics on tag mismatch or if no message arrives within the deadlock
    /// timeout.
    pub fn recv(&mut self, src: usize, tag: u64) -> Vec<f64> {
        let p = self.recv_payload(src, tag);
        match Arc::try_unwrap(p) {
            // Sole owner (the common point-to-point case): hand the buffer
            // to the caller without copying (it leaves pool custody).
            Ok(mut buf) => buf.take_data(),
            Err(shared) => shared.to_vec(),
        }
    }

    /// [`Node::recv`] returning the shared [`Payload`] — zero-copy: the
    /// buffer is recycled into the pool when the caller drops it.
    pub fn recv_payload(&mut self, src: usize, tag: u64) -> Payload {
        assert!(src < self.nprocs, "recv from rank {src} of {}", self.nprocs);
        let msg = match &self.comm {
            CommBackend::Threaded {
                receivers,
                deadlock_timeout,
                ..
            } => receivers[src]
                .recv_timeout(*deadlock_timeout)
                .unwrap_or_else(|_| {
                    panic!(
                        "deadlock: rank {} waited >{:?} for a message from {} (tag {})",
                        self.rank, deadlock_timeout, src, tag
                    )
                }),
            CommBackend::Event(shared) => shared.recv_msg(self.rank, src, tag, self.clock_us),
        };
        assert_eq!(
            msg.tag, tag,
            "tag mismatch on rank {} receiving from {}: expected {}, got {}",
            self.rank, src, tag, msg.tag
        );
        let t0 = self.clock_us;
        if msg.avail_at_us > self.clock_us {
            self.stats.wait_us += msg.avail_at_us - self.clock_us;
            self.clock_us = msg.avail_at_us;
        }
        if self.trace.on() {
            self.trace.complete(
                PID_MACHINE,
                self.rank as u32,
                "msg",
                "recv",
                t0,
                self.clock_us - t0,
                vec![
                    ("src", (src as i64).into()),
                    ("tag", (tag as i64).into()),
                    ("bytes", ((msg.data.len() * 8) as i64).into()),
                ],
            );
        }
        msg.data
    }

    /// Global barrier. Advances every node's clock to
    /// `max(entry clocks) + α·⌈log₂ P⌉`.
    pub fn barrier(&mut self) {
        let levels = log2_ceil(self.nprocs);
        let t0 = self.clock_us;
        let t = self
            .coll(Contribution::Barrier {
                clock: self.clock_us,
                sync_cost: self.cost.alpha_us * levels as f64,
            })
            .time;
        if t > self.clock_us {
            self.stats.wait_us += t - self.clock_us;
        }
        self.clock_us = t;
        if self.trace.on() {
            self.trace.complete(
                PID_MACHINE,
                self.rank as u32,
                "coll",
                "barrier",
                t0,
                self.clock_us - t0,
                Vec::new(),
            );
        }
    }

    /// Broadcast from `root`: every node returns the root's `data`.
    ///
    /// Modeled as a binomial tree: all nodes finish at
    /// `max(own clock, root clock + ⌈log₂ P⌉·(α + β·bytes))`. The `P−1`
    /// tree messages are attributed to the root for accounting.
    pub fn bcast(&mut self, root: usize, data: &[f64]) -> Vec<f64> {
        self.bcast_tagged(root, data, None)
    }

    /// [`Node::bcast`] with an optional accounting tag: the attributed tree
    /// messages are additionally recorded under `tag` in the per-tag stats,
    /// so callers can distinguish message classes (e.g. plain vs. coalesced
    /// broadcasts) after the run.
    pub fn bcast_tagged(&mut self, root: usize, data: &[f64], tag: Option<u64>) -> Vec<f64> {
        let buf = if self.rank == root {
            let mut b = self.acquire_buf();
            b.extend_from_slice(data);
            Some(b)
        } else {
            None
        };
        self.bcast_payload(root, buf, tag).to_vec()
    }

    /// [`Node::bcast_tagged`] taking (on the root) an owned payload buffer
    /// and returning the shared [`Payload`] — zero-copy: every rank clones
    /// one `Arc` instead of the buffer, and the pool reclaims it after the
    /// last rank drops its reference.
    pub fn bcast_payload(
        &mut self,
        root: usize,
        data: Option<Vec<f64>>,
        tag: Option<u64>,
    ) -> Payload {
        assert!(root < self.nprocs);
        if self.nprocs == 1 {
            return self.pool.wrap(data.expect("bcast: no root payload"));
        }
        let is_root = self.rank == root;
        let payload = data.map(|d| self.pool.wrap(d));
        let levels = log2_ceil(self.nprocs);
        let t0 = self.clock_us;
        let res = self.coll(Contribution::Bcast {
            clock: self.clock_us,
            payload,
            levels,
        });
        let (t, out) = (res.time, res.data.expect("bcast result payload"));
        if is_root {
            self.stats
                .record_msgs((self.nprocs - 1) as u64, (out.len() * 8) as u64, tag);
        }
        let t = t.max(self.clock_us);
        if t > self.clock_us {
            self.stats.wait_us += t - self.clock_us;
        }
        self.clock_us = t;
        if self.trace.on() {
            let mut args: fortrand_trace::Args = vec![
                ("root", (root as i64).into()),
                ("bytes", ((out.len() * 8) as i64).into()),
            ];
            if let Some(tag) = tag {
                args.push(("tag", (tag as i64).into()));
            }
            self.trace.complete(
                PID_MACHINE,
                self.rank as u32,
                "coll",
                "bcast",
                t0,
                self.clock_us - t0,
                args,
            );
        }
        out
    }

    /// All-reduce (sum) of one value; every node returns the global sum.
    /// Costs `2·⌈log₂ P⌉·α` beyond the slowest entrant (reduce + broadcast
    /// trees of 8-byte messages); the `2(P−1)` messages are attributed to
    /// rank 0.
    pub fn allreduce_sum(&mut self, v: f64) -> f64 {
        if self.nprocs == 1 {
            return v;
        }
        let levels = log2_ceil(self.nprocs);
        let extra = 2.0 * levels as f64 * self.cost.send_cost(8);
        let t0 = self.clock_us;
        let res = self.coll(Contribution::Sum {
            clock: self.clock_us,
            rank: self.rank,
            value: v,
            extra_cost: extra,
        });
        let (t, sum) = (res.time, res.sum);
        if self.rank == 0 {
            self.stats
                .record_msgs(2 * (self.nprocs - 1) as u64, 8, None);
        }
        if t > self.clock_us {
            self.stats.wait_us += t - self.clock_us;
        }
        self.clock_us = t;
        if self.trace.on() {
            self.trace.complete(
                PID_MACHINE,
                self.rank as u32,
                "coll",
                "allreduce_sum",
                t0,
                self.clock_us - t0,
                Vec::new(),
            );
        }
        sum
    }

    /// All-reduce computing `(max value, payload of the max contributor)` —
    /// the pattern dgefa's pivot search needs (`idamax` across the owners).
    /// Ties break toward the lower rank, keeping results deterministic.
    pub fn allreduce_maxloc(&mut self, v: f64, payload: &[f64]) -> (f64, Vec<f64>) {
        if self.nprocs == 1 {
            return (v, payload.to_vec());
        }
        let levels = log2_ceil(self.nprocs);
        let bytes = (payload.len() * 8 + 8) as u64;
        let extra = 2.0 * levels as f64 * self.cost.send_cost(bytes);
        let t0 = self.clock_us;
        let res = self.coll(Contribution::MaxLoc {
            clock: self.clock_us,
            rank: self.rank,
            value: v,
            payload: payload.to_vec(),
            extra_cost: extra,
        });
        let (t, value, data) = (
            res.time,
            res.sum,
            res.data.expect("maxloc result payload").to_vec(),
        );
        if self.rank == 0 {
            self.stats
                .record_msgs(2 * (self.nprocs - 1) as u64, bytes, None);
        }
        if t > self.clock_us {
            self.stats.wait_us += t - self.clock_us;
        }
        self.clock_us = t;
        if self.trace.on() {
            self.trace.complete(
                PID_MACHINE,
                self.rank as u32,
                "coll",
                "allreduce_maxloc",
                t0,
                self.clock_us - t0,
                vec![("bytes", (bytes as i64).into())],
            );
        }
        (value, data)
    }

    /// Nonblocking send (overlap comm level): the payload leaves now, but
    /// the sender is charged only the message startup α — the per-byte
    /// transfer overlaps with subsequent compute. The message's
    /// availability time at the receiver is identical to a blocking
    /// [`Node::send_buf`] issued at the same point, so the receiver cannot
    /// observe the difference; only the sender's stall shrinks.
    pub fn post_send(&mut self, dst: usize, tag: u64, data: Vec<f64>) {
        assert!(dst < self.nprocs, "send to rank {dst} of {}", self.nprocs);
        assert_ne!(dst, self.rank, "self-send: rank {dst}");
        let bytes = (data.len() * 8) as u64;
        let full = self.cost.send_cost(bytes);
        let t0 = self.clock_us;
        self.clock_us += self.cost.alpha_us;
        self.stats.record_msgs(1, bytes, Some(tag));
        self.stats.overlap_posts += 1;
        self.stats.overlap_hidden_us += full - self.cost.alpha_us;
        if self.trace.on() {
            self.trace.complete(
                PID_MACHINE,
                self.rank as u32,
                "msg",
                "post_send",
                t0,
                self.clock_us - t0,
                vec![
                    ("dst", (dst as i64).into()),
                    ("tag", (tag as i64).into()),
                    ("bytes", (bytes as i64).into()),
                ],
            );
        }
        let msg = Msg {
            src: self.rank,
            tag,
            data: self.pool.wrap(data),
            avail_at_us: t0 + full + self.net.extra_latency_us(self.rank, dst, bytes, &self.cost),
        };
        match &self.comm {
            CommBackend::Threaded { senders, .. } => senders[self.rank * self.nprocs + dst]
                .send(msg)
                .expect("machine channel closed while sending"),
            CommBackend::Event(shared) => shared.send_msg(dst, msg),
        }
    }

    /// Completion point of a [`Node::post_send`]. The payload was captured
    /// and shipped at the post, so this is pure bookkeeping.
    pub fn wait_send(&mut self) {
        self.stats.overlap_waits += 1;
        if self.trace.on() {
            self.trace.instant(
                PID_MACHINE,
                self.rank as u32,
                "msg",
                "wait_send",
                self.clock_us,
                Vec::new(),
            );
        }
    }

    /// Bookkeeping for a nonblocking receive post. The receive itself
    /// costs nothing until its wait; posting just records the intent (the
    /// engine captures the matched source/tag at the post point).
    pub fn post_recv(&mut self, src: usize, tag: u64) {
        self.stats.overlap_posts += 1;
        if self.trace.on() {
            self.trace.instant(
                PID_MACHINE,
                self.rank as u32,
                "msg",
                "post_recv",
                self.clock_us,
                vec![("src", (src as i64).into()), ("tag", (tag as i64).into())],
            );
        }
    }

    /// Completion point of a posted receive: identical to
    /// [`Node::recv_payload`] except for the overlap accounting.
    pub fn wait_recv(&mut self, src: usize, tag: u64) -> Payload {
        self.stats.overlap_waits += 1;
        self.recv_payload(src, tag)
    }

    /// Nonblocking broadcast post (overlap comm level). The root gathers
    /// the payload now, is charged the startup α, and deposits the payload
    /// in the in-flight table with the same completion time a blocking
    /// [`Node::bcast_payload`] issued here would have pinned
    /// (`root clock + ⌈log₂ P⌉·(α + β·bytes)` — blocking broadcasts pin
    /// completion to the root's entry clock alone, which is exactly what
    /// lets posted ones skip the rendezvous). Non-roots only advance their
    /// posted-sequence counter. Returns the sequence number the matching
    /// [`Node::wait_bcast`] must pass back.
    pub fn post_bcast(&mut self, root: usize, data: Option<Vec<f64>>, tag: Option<u64>) -> u64 {
        assert!(root < self.nprocs);
        let seq = self.posted_seq;
        self.posted_seq += 1;
        self.stats.overlap_posts += 1;
        let is_root = self.rank == root;
        let t0 = self.clock_us;
        if is_root {
            let data = data.expect("post_bcast: no root payload");
            let bytes = (data.len() * 8) as u64;
            let levels = log2_ceil(self.nprocs);
            // Blocking broadcasts at P == 1 short-circuit without charges
            // or attributed messages; posted ones mirror that exactly.
            let completion = if self.nprocs > 1 {
                self.clock_us += self.cost.alpha_us;
                self.stats.record_msgs((self.nprocs - 1) as u64, bytes, tag);
                t0 + levels as f64 * self.cost.send_cost(bytes)
            } else {
                t0
            };
            let payload = self.pool.wrap(data);
            match &self.comm {
                CommBackend::Threaded { posted, .. } => posted.insert(seq, completion, payload),
                CommBackend::Event(shared) => shared.post_insert(seq, completion, payload),
            }
            if self.trace.on() {
                let mut args: fortrand_trace::Args = vec![
                    ("root", (root as i64).into()),
                    ("seq", (seq as i64).into()),
                    ("bytes", (bytes as i64).into()),
                ];
                if let Some(tag) = tag {
                    args.push(("tag", (tag as i64).into()));
                }
                self.trace.complete(
                    PID_MACHINE,
                    self.rank as u32,
                    "coll",
                    "post_bcast",
                    t0,
                    self.clock_us - t0,
                    args,
                );
            }
        } else if self.trace.on() {
            self.trace.instant(
                PID_MACHINE,
                self.rank as u32,
                "coll",
                "post_bcast",
                t0,
                vec![("root", (root as i64).into()), ("seq", (seq as i64).into())],
            );
        }
        seq
    }

    /// Completion point of a [`Node::post_bcast`]: blocks until the posted
    /// payload is available, advances the clock to
    /// `max(own clock, completion)`, and credits the latency that compute
    /// since `posted_at` hid. Every rank — root included — takes its copy
    /// here.
    pub fn wait_bcast(&mut self, seq: u64, posted_at: f64) -> Payload {
        self.stats.overlap_waits += 1;
        let (time, data) = match &self.comm {
            CommBackend::Threaded { posted, .. } => posted.wait(seq),
            CommBackend::Event(shared) => shared.posted_wait(self.rank, seq, self.clock_us),
        };
        let t0 = self.clock_us;
        // Latency hidden: the part of the in-flight window covered by this
        // rank's compute since the post (a blocking broadcast would have
        // stalled it at the post point instead).
        self.stats.overlap_hidden_us += (self.clock_us.min(time) - posted_at).max(0.0);
        if time > self.clock_us {
            self.stats.wait_us += time - self.clock_us;
            self.clock_us = time;
        }
        if self.trace.on() {
            self.trace.complete(
                PID_MACHINE,
                self.rank as u32,
                "coll",
                "wait_bcast",
                t0,
                self.clock_us - t0,
                vec![
                    ("seq", (seq as i64).into()),
                    ("bytes", ((data.len() * 8) as i64).into()),
                ],
            );
        }
        data
    }

    /// Final per-node statistics (consumes the node at the end of a run).
    pub(crate) fn into_stats(mut self) -> NodeStats {
        self.stats.time_us = self.clock_us;
        if self.trace.on() {
            self.trace.instant(
                PID_MACHINE,
                self.rank as u32,
                "vm",
                "rank done",
                self.clock_us,
                vec![
                    ("flops", (self.stats.flops as i64).into()),
                    ("ops", (self.stats.ops as i64).into()),
                    ("wait_us", self.stats.wait_us.into()),
                ],
            );
        }
        self.stats
    }
}

/// ⌈log₂ n⌉ for n ≥ 1.
pub(crate) fn log2_ceil(n: usize) -> u32 {
    debug_assert!(n >= 1);
    usize::BITS - (n - 1).leading_zeros().min(usize::BITS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2_ceil_values() {
        assert_eq!(log2_ceil(1), 0);
        assert_eq!(log2_ceil(2), 1);
        assert_eq!(log2_ceil(3), 2);
        assert_eq!(log2_ceil(4), 2);
        assert_eq!(log2_ceil(5), 3);
        assert_eq!(log2_ceil(32), 5);
    }
}
