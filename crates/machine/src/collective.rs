//! Rendezvous machinery for collective operations.
//!
//! Collectives (barrier, broadcast, reductions) need every participant's
//! virtual clock before the common completion time can be computed, so they
//! are implemented as a generation-counted rendezvous rather than with the
//! pairwise channels. The last arriver computes the result, bumps the
//! generation and wakes the rest; results are double-buffered by generation
//! parity so a fast node entering the *next* collective cannot clobber a
//! result a slow node has not yet read.
//!
//! The accounting core ([`CollCore`]) is machine-agnostic: the threaded
//! machine wraps it in a `Mutex`/`Condvar` rendezvous
//! ([`SharedCollectives`]), and the event-driven scheduler
//! ([`crate::sched`]) drives the same core under its own lock, which is
//! what keeps collective completion times bit-identical between the two
//! machines.

use crate::cost::CostModel;
use crate::node::{Payload, PayloadBuf};
use std::sync::{Condvar, Mutex};

/// One rank's input to the current collective. Every variant carries the
/// contributor's entry clock; completion is computed from the *maximum*
/// over contributions (and the maximum of the per-rank cost terms), so the
/// result is independent of arrival order.
pub(crate) enum Contribution {
    /// Barrier entry; `sync_cost` is the tree-synchronization charge.
    Barrier { clock: f64, sync_cost: f64 },
    /// Broadcast entry; the root passes `Some(payload)` and the binomial
    /// tree depth in `levels`.
    Bcast {
        clock: f64,
        payload: Option<Payload>,
        levels: u32,
    },
    /// Sum all-reduce entry. `rank` fixes the summation order so the
    /// floating-point result is independent of arrival order.
    Sum {
        clock: f64,
        rank: usize,
        value: f64,
        extra_cost: f64,
    },
    /// Maxloc all-reduce entry (dgefa's pivot search).
    MaxLoc {
        clock: f64,
        rank: usize,
        value: f64,
        payload: Vec<f64>,
        extra_cost: f64,
    },
}

/// Rendezvous result. `data` is a shared [`Payload`]: every waiter clones
/// the `Arc`, not the buffer.
#[derive(Clone, Default)]
pub(crate) struct CollOut {
    pub(crate) time: f64,
    pub(crate) data: Option<Payload>,
    pub(crate) sum: f64,
}

/// Machine-agnostic collective accounting: accumulates [`Contribution`]s,
/// computes the shared [`CollOut`] when the last participant arrives, and
/// double-buffers results by generation parity.
pub(crate) struct CollCore {
    nprocs: usize,
    cost: CostModel,
    generation: u64,
    arrived: usize,
    max_clock: f64,
    extra: f64,
    levels: u32,
    payload: Option<Payload>,
    payload_clock: f64,
    addends: Vec<(usize, f64)>,
    best_val: f64,
    best_rank: usize,
    best_payload: Vec<f64>,
    results: [Option<CollOut>; 2],
}

impl CollCore {
    pub(crate) fn new(nprocs: usize, cost: CostModel) -> Self {
        CollCore {
            nprocs,
            cost,
            generation: 0,
            arrived: 0,
            max_clock: f64::NEG_INFINITY,
            extra: f64::NEG_INFINITY,
            levels: 0,
            payload: None,
            payload_clock: 0.0,
            addends: Vec::new(),
            best_val: f64::NEG_INFINITY,
            best_rank: usize::MAX,
            best_payload: Vec::new(),
            results: [None, None],
        }
    }

    /// Current collective generation (increments when one completes).
    pub(crate) fn generation(&self) -> u64 {
        self.generation
    }

    /// Folds one rank's contribution in. Returns `true` when this was the
    /// last participant — the caller must then invoke [`CollCore::finish`].
    pub(crate) fn contribute(&mut self, c: Contribution) -> bool {
        match c {
            Contribution::Barrier { clock, sync_cost } => {
                self.max_clock = self.max_clock.max(clock);
                self.extra = self.extra.max(sync_cost);
            }
            Contribution::Bcast {
                clock,
                payload,
                levels,
            } => {
                self.max_clock = self.max_clock.max(clock);
                self.levels = levels;
                if let Some(p) = payload {
                    self.payload = Some(p);
                    self.payload_clock = clock;
                }
            }
            Contribution::Sum {
                clock,
                rank,
                value,
                extra_cost,
            } => {
                self.max_clock = self.max_clock.max(clock);
                self.extra = self.extra.max(extra_cost);
                self.addends.push((rank, value));
            }
            Contribution::MaxLoc {
                clock,
                rank,
                value,
                payload,
                extra_cost,
            } => {
                self.max_clock = self.max_clock.max(clock);
                self.extra = self.extra.max(extra_cost);
                if self.best_rank == usize::MAX
                    || value > self.best_val
                    || (value == self.best_val && rank < self.best_rank)
                {
                    self.best_val = value;
                    self.best_rank = rank;
                    self.best_payload = payload;
                }
            }
        }
        self.arrived += 1;
        self.arrived == self.nprocs
    }

    /// Computes the collective's result, stores it in the parity slot,
    /// resets the accumulator, and bumps the generation. Call exactly once
    /// per collective, when [`CollCore::contribute`] returns `true`.
    pub(crate) fn finish(&mut self) -> CollOut {
        let out = if self.payload.is_some() {
            // Broadcast: completion is pinned to the *root's* clock plus
            // the tree depth, independent of the other entry clocks.
            let data = self.payload.take().expect("bcast: no root payload");
            let bytes = (data.len() * 8) as u64;
            CollOut {
                time: self.payload_clock + self.levels as f64 * self.cost.send_cost(bytes),
                data: Some(data),
                sum: 0.0,
            }
        } else if !self.addends.is_empty() {
            // Sum in rank order: bit-exact regardless of arrival order.
            self.addends.sort_unstable_by_key(|&(r, _)| r);
            let sum = self.addends.drain(..).map(|(_, v)| v).sum();
            CollOut {
                time: self.max_clock + self.extra,
                data: None,
                sum,
            }
        } else if self.best_rank != usize::MAX {
            CollOut {
                time: self.max_clock + self.extra,
                data: Some(PayloadBuf::unpooled(std::mem::take(&mut self.best_payload))),
                sum: self.best_val,
            }
        } else {
            CollOut {
                time: self.max_clock + self.extra,
                data: None,
                sum: 0.0,
            }
        };
        self.results[(self.generation % 2) as usize] = Some(out.clone());
        // Retire the previous generation: finishing this collective means
        // every rank contributed to it, which it could only do after
        // reading the previous result — so no reader remains, and
        // dropping the slot releases its payload buffer to the pool
        // instead of pinning it for another whole generation.
        self.results[((self.generation + 1) % 2) as usize] = None;
        self.arrived = 0;
        self.max_clock = f64::NEG_INFINITY;
        self.extra = f64::NEG_INFINITY;
        self.levels = 0;
        self.payload = None;
        self.addends.clear();
        self.best_val = f64::NEG_INFINITY;
        self.best_rank = usize::MAX;
        self.best_payload.clear();
        self.generation += 1;
        out
    }

    /// The stored result of generation `gen` (must be one of the two most
    /// recent completed generations).
    pub(crate) fn result(&self, gen: u64) -> CollOut {
        self.results[(gen % 2) as usize]
            .clone()
            .expect("collective result missing")
    }
}

/// One posted (nonblocking) broadcast in flight: its virtual completion
/// time and the shared payload. Retired once every rank has taken its copy.
pub(crate) struct PostedEntry {
    pub(crate) time: f64,
    pub(crate) data: Payload,
    reads: usize,
}

/// Machine-agnostic in-flight table for posted broadcasts.
///
/// Unlike the synchronous rendezvous above, a posted broadcast never blocks
/// the root: completion time depends only on the root's clock at the post
/// (the same pinning [`CollCore::finish`] applies to synchronous
/// broadcasts), so the root computes it up front and deposits the payload
/// here. Entries are keyed by the SPMD-uniform per-rank posted-sequence
/// number — every rank executes the same posts in the same order, so the
/// sequence numbers agree across ranks without any rendezvous.
pub(crate) struct PostedCore {
    nprocs: usize,
    map: std::collections::BTreeMap<u64, PostedEntry>,
}

impl PostedCore {
    pub(crate) fn new(nprocs: usize) -> Self {
        PostedCore {
            nprocs,
            map: std::collections::BTreeMap::new(),
        }
    }

    /// Root deposits the payload of posted broadcast `seq`, complete at
    /// virtual time `time`.
    pub(crate) fn insert(&mut self, seq: u64, time: f64, data: Payload) {
        let prev = self.map.insert(
            seq,
            PostedEntry {
                time,
                data,
                reads: 0,
            },
        );
        debug_assert!(prev.is_none(), "posted bcast #{seq} inserted twice");
    }

    /// One rank takes its copy of posted broadcast `seq`; `None` while the
    /// root has not deposited it yet. The entry is retired after the
    /// `nprocs`-th take — the returned flag is `true` on that final take,
    /// so the event scheduler can retire the broadcast from its queue
    /// accounting.
    pub(crate) fn try_take(&mut self, seq: u64) -> Option<(f64, Payload, bool)> {
        let e = self.map.get_mut(&seq)?;
        e.reads += 1;
        let out = (e.time, e.data.clone());
        let retired = e.reads >= self.nprocs;
        if retired {
            self.map.remove(&seq);
        }
        Some((out.0, out.1, retired))
    }
}

/// Threaded-machine wrapper for [`PostedCore`]: a `Mutex`/`Condvar` pair so
/// a rank reaching the wait before the root has posted can sleep. The
/// event-driven scheduler drives the same core under its own lock
/// ([`crate::sched`]), keeping posted completion times bit-identical
/// between the two machines.
pub struct SharedPosted {
    state: Mutex<PostedCore>,
    cv: Condvar,
}

impl SharedPosted {
    /// Creates the in-flight table for `nprocs` participants.
    pub fn new(nprocs: usize) -> Self {
        SharedPosted {
            state: Mutex::new(PostedCore::new(nprocs)),
            cv: Condvar::new(),
        }
    }

    /// Root-side deposit (never blocks).
    pub(crate) fn insert(&self, seq: u64, time: f64, data: Payload) {
        let mut g = self.state.lock().expect("posted lock poisoned");
        g.insert(seq, time, data);
        self.cv.notify_all();
    }

    /// Blocks until posted broadcast `seq` is available, then takes this
    /// rank's copy. The bounded wait turns a crashed root into a
    /// diagnosable panic (mirrors [`SharedCollectives::rendezvous`]).
    pub(crate) fn wait(&self, seq: u64) -> (f64, Payload) {
        let mut g = self.state.lock().expect("posted lock poisoned");
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        loop {
            if let Some((time, data, _retired)) = g.try_take(seq) {
                return (time, data);
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                panic!("posted-bcast timeout: root never posted #{seq} (crashed rank?)");
            }
            // On timeout the next iteration re-checks the table and then
            // hits the deadline panic above if the entry is still absent.
            let (g2, _res) = self
                .cv
                .wait_timeout(g, deadline - now)
                .expect("posted lock poisoned");
            g = g2;
        }
    }
}

/// Shared state for all collectives of one threaded machine run.
pub struct SharedCollectives {
    nprocs: usize,
    state: Mutex<CollCore>,
    cv: Condvar,
}

impl SharedCollectives {
    /// Creates rendezvous state for `nprocs` participants under `cost`.
    pub fn new(nprocs: usize, cost: CostModel) -> Self {
        SharedCollectives {
            nprocs,
            state: Mutex::new(CollCore::new(nprocs, cost)),
            cv: Condvar::new(),
        }
    }

    /// Blocking rendezvous: folds this rank's contribution in, and either
    /// completes the collective (last arriver) or waits for a peer to.
    pub(crate) fn rendezvous(&self, c: Contribution) -> CollOut {
        let mut g = self.state.lock().expect("collective lock poisoned");
        let gen = g.generation();
        if g.contribute(c) {
            let out = g.finish();
            self.cv.notify_all();
            return out;
        }
        // A bounded wait turns a peer's crash (which would otherwise
        // strand this thread in the rendezvous forever) into a
        // diagnosable panic.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        while g.generation() == gen {
            let now = std::time::Instant::now();
            if now >= deadline {
                panic!("collective timeout: a peer never arrived (crashed rank?)");
            }
            let (g2, res) = self
                .cv
                .wait_timeout(g, deadline - now)
                .expect("collective lock poisoned");
            g = g2;
            if res.timed_out() && g.generation() == gen {
                panic!("collective timeout: a peer never arrived (crashed rank?)");
            }
        }
        g.result(gen)
    }

    /// Barrier: returns the common exit clock
    /// `max(entry clocks) + sync_cost`.
    pub fn barrier(&self, my_clock: f64, sync_cost: f64) -> f64 {
        self.rendezvous(Contribution::Barrier {
            clock: my_clock,
            sync_cost,
        })
        .time
    }

    /// Broadcast: the root passes `Some(data)`; everyone receives
    /// `(arrival_time, data)` where arrival is the root's entry clock plus
    /// `levels` tree hops of `α + β·bytes`. Callers clamp with their own
    /// clock. The payload is shared: each participant gets a clone of the
    /// root's `Arc`.
    pub fn bcast(&self, my_clock: f64, payload: Option<Payload>, levels: u32) -> (f64, Payload) {
        let out = self.rendezvous(Contribution::Bcast {
            clock: my_clock,
            payload,
            levels,
        });
        (out.time, out.data.expect("bcast result payload"))
    }

    /// Sum all-reduce: returns `(completion_time, sum)` where completion is
    /// `max(entry clocks) + max(extra_cost)`. The sum is folded in rank
    /// order, so it is bit-exact regardless of arrival order.
    pub fn allreduce(&self, my_clock: f64, rank: usize, v: f64, extra_cost: f64) -> (f64, f64) {
        let out = self.rendezvous(Contribution::Sum {
            clock: my_clock,
            rank,
            value: v,
            extra_cost,
        });
        (out.time, out.sum)
    }

    /// Maxloc all-reduce: returns `(completion_time, max value, payload of
    /// the max contributor)`; ties break toward the lower rank.
    pub fn maxloc(
        &self,
        my_clock: f64,
        rank: usize,
        v: f64,
        payload: Vec<f64>,
        extra_cost: f64,
    ) -> (f64, f64, Vec<f64>) {
        let out = self.rendezvous(Contribution::MaxLoc {
            clock: my_clock,
            rank,
            value: v,
            payload,
            extra_cost,
        });
        let data = out.data.expect("maxloc result payload").to_vec();
        (out.time, out.sum, data)
    }

    /// Participant count this rendezvous was built for.
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn barrier_twice_in_a_row() {
        // Reusability across generations: two consecutive barriers from
        // multiple threads must not hang or cross-talk.
        let c = Arc::new(SharedCollectives::new(4, CostModel::ipsc860()));
        std::thread::scope(|s| {
            for r in 0..4 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    let t1 = c.barrier(r as f64, 1.0);
                    assert_eq!(t1, 4.0); // max(0..=3) + 1
                    let t2 = c.barrier(t1 + r as f64, 1.0);
                    assert_eq!(t2, 8.0); // max(4..=7) + 1
                });
            }
        });
    }

    #[test]
    fn maxloc_tie_breaks_low_rank() {
        let c = Arc::new(SharedCollectives::new(3, CostModel::ipsc860()));
        std::thread::scope(|s| {
            for r in 0..3 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    let (_, v, p) = c.maxloc(0.0, r, 5.0, vec![r as f64], 0.0);
                    assert_eq!(v, 5.0);
                    assert_eq!(p, vec![0.0]); // rank 0 wins ties
                });
            }
        });
    }

    #[test]
    fn sum_is_rank_ordered_not_arrival_ordered() {
        // Values chosen so that summation order changes the rounded
        // result; every thread must see the rank-order sum.
        let vals = [1.0e16, 1.0, -1.0e16];
        let expect: f64 = vals.iter().sum(); // ((1e16 + 1) - 1e16) = 0.0
        let c = Arc::new(SharedCollectives::new(3, CostModel::ipsc860()));
        std::thread::scope(|s| {
            for (r, &v) in vals.iter().enumerate() {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    let (_, sum) = c.allreduce(0.0, r, v, 0.0);
                    assert_eq!(sum.to_bits(), expect.to_bits());
                });
            }
        });
    }
}
