//! Rendezvous machinery for collective operations.
//!
//! Collectives (barrier, broadcast, reductions) need every participant's
//! virtual clock before the common completion time can be computed, so they
//! are implemented as a generation-counted rendezvous rather than with the
//! pairwise channels. The last arriver computes the result, bumps the
//! generation and wakes the rest; results are double-buffered by generation
//! parity so a fast node entering the *next* collective cannot clobber a
//! result a slow node has not yet read.

use crate::node::{Payload, PayloadBuf};
use std::sync::{Condvar, Mutex};

#[derive(Default)]
struct CollState {
    generation: u64,
    arrived: usize,
    clocks: Vec<f64>,
    payload: Option<Payload>,
    payload_clock: f64,
    sum: f64,
    best_val: f64,
    best_rank: usize,
    best_payload: Vec<f64>,
    results: [Option<CollOut>; 2],
}

/// Rendezvous result. `data` is a shared [`Payload`]: every waiter clones
/// the `Arc`, not the buffer.
#[derive(Clone, Default)]
struct CollOut {
    time: f64,
    data: Option<Payload>,
    sum: f64,
}

/// Shared state for all collectives of one machine run.
pub struct SharedCollectives {
    nprocs: usize,
    state: Mutex<CollState>,
    cv: Condvar,
}

impl SharedCollectives {
    /// Creates rendezvous state for `nprocs` participants.
    pub fn new(nprocs: usize) -> Self {
        let state = CollState {
            best_val: f64::NEG_INFINITY,
            best_rank: usize::MAX,
            ..CollState::default()
        };
        SharedCollectives {
            nprocs,
            state: Mutex::new(state),
            cv: Condvar::new(),
        }
    }

    /// Generic rendezvous: `contribute` runs under the lock for every
    /// participant; `compute` runs once, when the last participant arrives,
    /// and produces the shared result.
    fn rendezvous(
        &self,
        contribute: impl FnOnce(&mut CollState),
        compute: impl FnOnce(&mut CollState) -> CollOut,
    ) -> CollOut {
        let mut g = self.state.lock().expect("collective lock poisoned");
        let gen = g.generation;
        contribute(&mut g);
        g.arrived += 1;
        if g.arrived == self.nprocs {
            let out = compute(&mut g);
            g.results[(gen % 2) as usize] = Some(out);
            g.arrived = 0;
            g.clocks.clear();
            g.payload = None;
            g.sum = 0.0;
            g.best_val = f64::NEG_INFINITY;
            g.best_rank = usize::MAX;
            g.best_payload.clear();
            g.generation += 1;
            self.cv.notify_all();
        } else {
            // A bounded wait turns a peer's crash (which would otherwise
            // strand this thread in the rendezvous forever) into a
            // diagnosable panic.
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
            while g.generation == gen {
                let now = std::time::Instant::now();
                if now >= deadline {
                    panic!("collective timeout: a peer never arrived (crashed rank?)");
                }
                let (g2, res) = self
                    .cv
                    .wait_timeout(g, deadline - now)
                    .expect("collective lock poisoned");
                g = g2;
                if res.timed_out() && g.generation == gen {
                    panic!("collective timeout: a peer never arrived (crashed rank?)");
                }
            }
        }
        g.results[(gen % 2) as usize]
            .clone()
            .expect("collective result missing")
    }

    /// Barrier: returns the common exit clock
    /// `max(entry clocks) + sync_cost`.
    pub fn barrier(&self, my_clock: f64, sync_cost: f64) -> f64 {
        let out = self.rendezvous(
            |g| g.clocks.push(my_clock),
            |g| CollOut {
                time: g.clocks.iter().cloned().fold(f64::NEG_INFINITY, f64::max) + sync_cost,
                ..Default::default()
            },
        );
        out.time
    }

    /// Broadcast: the root passes `Some(data)`; everyone receives
    /// `(arrival_time, data)` where `arrival_time = finish(root_clock,
    /// bytes)`. Callers clamp with their own clock. The payload is shared:
    /// each participant gets a clone of the root's `Arc`.
    pub fn bcast(
        &self,
        my_clock: f64,
        payload: Option<Payload>,
        finish: impl FnOnce(f64, u64) -> f64,
    ) -> (f64, Payload) {
        let out = self.rendezvous(
            |g| {
                if let Some(p) = payload {
                    g.payload = Some(p);
                    g.payload_clock = my_clock;
                }
                g.clocks.push(my_clock);
            },
            |g| {
                let data = g.payload.take().expect("bcast: no root payload");
                let bytes = (data.len() * 8) as u64;
                CollOut {
                    time: finish(g.payload_clock, bytes),
                    data: Some(data),
                    sum: 0.0,
                }
            },
        );
        (out.time, out.data.expect("bcast result payload"))
    }

    /// Sum all-reduce: returns `(completion_time, sum)` where completion is
    /// `max(entry clocks) + extra_cost`.
    pub fn allreduce(&self, my_clock: f64, v: f64, extra_cost: f64) -> (f64, f64) {
        let out = self.rendezvous(
            |g| {
                g.clocks.push(my_clock);
                g.sum += v;
            },
            |g| CollOut {
                time: g.clocks.iter().cloned().fold(f64::NEG_INFINITY, f64::max) + extra_cost,
                data: None,
                sum: g.sum,
            },
        );
        (out.time, out.sum)
    }

    /// Maxloc all-reduce: returns `(completion_time, max value, payload of
    /// the max contributor)`; ties break toward the lower rank.
    pub fn maxloc(
        &self,
        my_clock: f64,
        rank: usize,
        v: f64,
        payload: Vec<f64>,
        extra_cost: f64,
    ) -> (f64, f64, Vec<f64>) {
        let out = self.rendezvous(
            |g| {
                g.clocks.push(my_clock);
                if g.best_rank == usize::MAX
                    || v > g.best_val
                    || (v == g.best_val && rank < g.best_rank)
                {
                    g.best_val = v;
                    g.best_rank = rank;
                    g.best_payload = payload;
                }
            },
            |g| CollOut {
                time: g.clocks.iter().cloned().fold(f64::NEG_INFINITY, f64::max) + extra_cost,
                data: Some(PayloadBuf::unpooled(std::mem::take(&mut g.best_payload))),
                sum: g.best_val,
            },
        );
        let data = out.data.expect("maxloc result payload").to_vec();
        (out.time, out.sum, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn barrier_twice_in_a_row() {
        // Reusability across generations: two consecutive barriers from
        // multiple threads must not hang or cross-talk.
        let c = Arc::new(SharedCollectives::new(4));
        std::thread::scope(|s| {
            for r in 0..4 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    let t1 = c.barrier(r as f64, 1.0);
                    assert_eq!(t1, 4.0); // max(0..=3) + 1
                    let t2 = c.barrier(t1 + r as f64, 1.0);
                    assert_eq!(t2, 8.0); // max(4..=7) + 1
                });
            }
        });
    }

    #[test]
    fn maxloc_tie_breaks_low_rank() {
        let c = Arc::new(SharedCollectives::new(3));
        std::thread::scope(|s| {
            for r in 0..3 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    let (_, v, p) = c.maxloc(0.0, r, 5.0, vec![r as f64], 0.0);
                    assert_eq!(v, 5.0);
                    assert_eq!(p, vec![0.0]); // rank 0 wins ties
                });
            }
        });
    }
}
