//! # fortrand-machine
//!
//! A deterministic simulator of a MIMD distributed-memory message-passing
//! machine — the execution substrate for programs produced by the Fortran D
//! compiler. It stands in for the Intel iPSC/860 the paper evaluated on
//! (see DESIGN.md §2 for the substitution argument).
//!
//! Each simulated processor runs as a real OS thread with its own *virtual
//! clock*. Communication uses pairwise FIFO channels; costs follow a
//! LogGP-style model ([`CostModel`]): a message of `m` bytes costs the
//! sender `α + β·m` and arrives at the receiver no earlier than the
//! sender's post-send clock. The receiver's clock advances to
//! `max(own clock, arrival time)`. Computation is charged explicitly by the
//! interpreter via [`Node::charge_flops`] / [`Node::charge_ops`].
//!
//! Because every receive names its source and channels are FIFO, execution
//! is deterministic: simulated times, message counts and message volumes
//! are exactly reproducible run to run, which is what lets the benchmark
//! harness regenerate the paper's performance comparisons stably.

mod collective;
mod cost;
mod node;
mod sched;
mod stats;

pub use collective::{SharedCollectives, SharedPosted};
pub use cost::{CostModel, DirectNet, HypercubeNet, NetworkModel, TorusNet};
pub use node::{BufferPool, Msg, Node, Payload, PayloadBuf};
pub use stats::{size_bucket, NodeStats, RunStats, HIST_BUCKETS, HIST_LABELS};

use fortrand_trace::{Trace, PID_MACHINE};
use std::sync::mpsc::channel as unbounded;
use std::sync::{Arc, Mutex};

/// Which execution substrate simulates the ranks.
///
/// Both machines charge identical costs through the same [`Node`] code, so
/// final arrays, message counts and `time_us` are bit-identical between
/// them (`tests/machines.rs` enforces this); they differ only in how rank
/// bodies are interleaved on the host.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum MachineKind {
    /// One free-running OS thread per rank over pairwise channels — the
    /// original substrate, kept as a differential reference. O(p²) channel
    /// state and real thread contention make it impractical past tens of
    /// ranks.
    Threaded,
    /// Deterministic discrete-event scheduler: ranks are cooperatively
    /// scheduled tasks advanced by a central virtual-clock event loop
    /// (see [`sched`]); scales to thousands of ranks.
    #[default]
    Event,
}

/// One simulated processor's body panicked during a [`Machine::try_run`].
/// Carries the lowest failing rank and that rank's panic message.
#[derive(Clone, Debug)]
pub struct RankFailure {
    /// The lowest-numbered rank whose body panicked.
    pub rank: usize,
    /// The panic payload, rendered as text.
    pub message: String,
}

impl std::fmt::Display for RankFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rank {} panicked: {}", self.rank, self.message)
    }
}

impl std::error::Error for RankFailure {}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A simulated distributed-memory machine with `nprocs` nodes.
#[derive(Clone)]
pub struct Machine {
    /// Number of processors.
    pub nprocs: usize,
    /// Communication/computation cost model.
    pub cost: CostModel,
    /// Execution substrate (default [`MachineKind::Event`]).
    pub kind: MachineKind,
    /// Interconnect topology model (default [`DirectNet`]).
    net: Arc<dyn NetworkModel>,
    /// Real-time budget a node may block on a receive before the run is
    /// declared deadlocked (default 30 s; see [`Node::recv`]). Only the
    /// threaded machine needs it — the event scheduler *detects* deadlock
    /// instead of timing out.
    deadlock_timeout: std::time::Duration,
    /// Trace handle shared with every node (off by default).
    trace: Trace,
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("nprocs", &self.nprocs)
            .field("cost", &self.cost)
            .field("kind", &self.kind)
            .field("net", &self.net.name())
            .field("deadlock_timeout", &self.deadlock_timeout)
            .finish_non_exhaustive()
    }
}

impl Machine {
    /// Creates a machine with the default (iPSC/860-flavoured) cost model
    /// on the event-driven substrate.
    pub fn new(nprocs: usize) -> Self {
        Self::with_cost(nprocs, CostModel::ipsc860())
    }

    /// Creates a machine with an explicit cost model.
    pub fn with_cost(nprocs: usize, cost: CostModel) -> Self {
        Machine {
            nprocs,
            cost,
            kind: MachineKind::default(),
            net: Arc::new(DirectNet),
            deadlock_timeout: node::DEADLOCK_TIMEOUT,
            trace: Trace::off(),
        }
    }

    /// [`Machine::new`] on the thread-per-rank substrate — the
    /// differential reference implementation.
    pub fn threaded(nprocs: usize) -> Self {
        Self::new(nprocs).with_kind(MachineKind::Threaded)
    }

    /// Selects the execution substrate.
    pub fn with_kind(mut self, kind: MachineKind) -> Self {
        self.kind = kind;
        self
    }

    /// Overrides the interconnect topology model. Messages then become
    /// available to receivers at the sender's post-send clock *plus* the
    /// model's route latency; both substrates honor it identically.
    pub fn with_network(mut self, net: impl NetworkModel + 'static) -> Self {
        self.net = Arc::new(net);
        self
    }

    /// The interconnect topology model in effect.
    pub fn network(&self) -> &Arc<dyn NetworkModel> {
        &self.net
    }

    /// Overrides the receive deadlock timeout. Intended for tests that
    /// exercise the deadlock diagnostic without the 30-second stall; the
    /// default is generous because simulation work is microseconds.
    /// No-op for the event machine, which detects deadlock structurally.
    pub fn with_deadlock_timeout(mut self, timeout: std::time::Duration) -> Self {
        self.deadlock_timeout = timeout;
        self
    }

    /// Attaches a trace handle: every node records its message traffic and
    /// execution slices (simulated time, pid [`PID_MACHINE`], tid = rank),
    /// and runs end with buffer-pool counter samples.
    pub fn with_trace(mut self, trace: Trace) -> Self {
        self.trace = trace;
        self
    }

    /// The machine's trace handle (off unless [`Machine::with_trace`] was
    /// used).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Runs one SPMD program: `body` is executed once per node, in parallel,
    /// each invocation receiving that node's [`Node`] handle. Returns the
    /// aggregated [`RunStats`] (program time = max over nodes of the final
    /// virtual clock).
    ///
    /// # Panics
    /// Propagates panics from node bodies (e.g. a receive that would
    /// deadlock times out and panics with a diagnostic). Use
    /// [`Machine::try_run`] to get the failure as a value instead.
    pub fn run<F>(&self, body: F) -> RunStats
    where
        F: Fn(&mut Node) + Send + Sync,
    {
        match self.run_inner(body) {
            Ok(stats) => stats,
            Err(mut failures) => std::panic::resume_unwind(failures.remove(0).payload),
        }
    }

    /// [`Machine::run`] that surfaces a rank panic as a [`RankFailure`]
    /// (lowest failing rank wins, deterministically) instead of unwinding.
    /// All ranks are joined either way, so no simulated state leaks.
    pub fn try_run<F>(&self, body: F) -> Result<RunStats, RankFailure>
    where
        F: Fn(&mut Node) + Send + Sync,
    {
        self.run_inner(body).map_err(|failures| {
            let first = &failures[0];
            RankFailure {
                rank: first.rank,
                message: panic_message(first.payload.as_ref()),
            }
        })
    }

    fn run_inner<F>(&self, body: F) -> Result<RunStats, Vec<Failure>>
    where
        F: Fn(&mut Node) + Send + Sync,
    {
        assert!(self.nprocs >= 1, "machine needs at least one processor");
        let wall_t0 = std::time::Instant::now();
        let pool = BufferPool::new();
        let result = match self.kind {
            MachineKind::Threaded => self.run_threaded(&body, &pool),
            MachineKind::Event => self.run_event(&body, &pool),
        };
        match result {
            Ok((node_stats, sched)) => {
                let mut stats = RunStats::aggregate(node_stats);
                if let Some(shared) = sched {
                    shared.export_counters(&mut stats);
                }
                let (reuses, allocs, bytes_reused) = pool.counters();
                stats.pool_reuses = reuses;
                stats.pool_allocs = allocs;
                stats.pool_bytes_reused = bytes_reused;
                stats.wall_us = wall_t0.elapsed().as_secs_f64() * 1e6;
                if self.trace.on() {
                    let t = stats.time_us;
                    self.trace
                        .counter(PID_MACHINE, 0, "pool_reuses", t, reuses as f64);
                    self.trace
                        .counter(PID_MACHINE, 0, "pool_allocs", t, allocs as f64);
                    self.trace
                        .counter(PID_MACHINE, 0, "pool_bytes_reused", t, bytes_reused as f64);
                    if stats.sched_switches > 0 {
                        self.trace.counter(
                            PID_MACHINE,
                            0,
                            "sched_switches",
                            t,
                            stats.sched_switches as f64,
                        );
                        self.trace.counter(
                            PID_MACHINE,
                            0,
                            "sched_msgs",
                            t,
                            stats.sched_msgs as f64,
                        );
                        self.trace.counter(
                            PID_MACHINE,
                            0,
                            "sched_ready_peak",
                            t,
                            stats.sched_ready_peak as f64,
                        );
                        self.trace.counter(
                            PID_MACHINE,
                            0,
                            "sched_queue_peak",
                            t,
                            stats.sched_queue_peak as f64,
                        );
                    }
                }
                Ok(stats)
            }
            Err(mut failures) => {
                // Genuine body panics outrank scheduler-induced unwinds
                // (a peer blocked on a crashed rank), lowest rank first —
                // so the reported failure is the root cause.
                failures.sort_by_key(|f| (f.induced, f.rank));
                Err(failures)
            }
        }
    }

    /// Thread-per-rank substrate: pairwise channels, free-running threads.
    #[allow(clippy::type_complexity)]
    fn run_threaded<F>(
        &self,
        body: &F,
        pool: &Arc<BufferPool>,
    ) -> Result<(Vec<NodeStats>, Option<Arc<sched::EventShared>>), Vec<Failure>>
    where
        F: Fn(&mut Node) + Send + Sync,
    {
        let p = self.nprocs;
        // Pairwise FIFO channels: index [src * p + dst].
        let mut senders = Vec::with_capacity(p * p);
        let mut receivers: Vec<Vec<_>> = (0..p).map(|_| Vec::with_capacity(p)).collect();
        for _src in 0..p {
            for dst_receivers in receivers.iter_mut() {
                let (tx, rx) = unbounded::<Msg>();
                senders.push(tx);
                dst_receivers.push(rx);
            }
        }
        let senders = Arc::new(senders);
        let collectives = Arc::new(SharedCollectives::new(p, self.cost.clone()));
        let posted = Arc::new(SharedPosted::new(p));
        let mut node_stats: Vec<Option<NodeStats>> = (0..p).map(|_| None).collect();
        let mut failures: Vec<Failure> = Vec::new();

        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(p);
            for (rank, my_receivers) in receivers.into_iter().enumerate() {
                let senders = Arc::clone(&senders);
                let collectives = Arc::clone(&collectives);
                let posted = Arc::clone(&posted);
                let pool = Arc::clone(pool);
                let cost = self.cost.clone();
                let net = Arc::clone(&self.net);
                let timeout = self.deadlock_timeout;
                let trace = self.trace.clone();
                handles.push(scope.spawn(move || {
                    let comm = node::CommBackend::Threaded {
                        senders,
                        receivers: my_receivers,
                        collectives,
                        posted,
                        deadlock_timeout: timeout,
                    };
                    let mut node = Node::new(rank, p, cost, net, comm, pool, trace);
                    // Catch here (not at join) so the panic payload is
                    // carried out as a value; `run` re-raises it verbatim.
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
                        body(&mut node);
                        node.into_stats()
                    }))
                }));
            }
            for (rank, h) in handles.into_iter().enumerate() {
                match h.join().expect("machine worker thread died outside body") {
                    Ok(s) => node_stats[rank] = Some(s),
                    Err(payload) => failures.push(Failure {
                        induced: false,
                        rank,
                        payload,
                    }),
                }
            }
        });

        if !failures.is_empty() {
            return Err(failures);
        }
        Ok((node_stats.into_iter().map(Option::unwrap).collect(), None))
    }

    /// Event-driven substrate: cooperatively scheduled rank tasks under a
    /// central deterministic event loop (see [`sched`]).
    #[allow(clippy::type_complexity)]
    fn run_event<F>(
        &self,
        body: &F,
        pool: &Arc<BufferPool>,
    ) -> Result<(Vec<NodeStats>, Option<Arc<sched::EventShared>>), Vec<Failure>>
    where
        F: Fn(&mut Node) + Send + Sync,
    {
        let p = self.nprocs;
        let shared = Arc::new(sched::EventShared::new(p, self.cost.clone()));
        let node_stats: Mutex<Vec<Option<NodeStats>>> = Mutex::new((0..p).map(|_| None).collect());
        let failures: Mutex<Vec<Failure>> = Mutex::new(Vec::new());

        std::thread::scope(|scope| {
            let carriers = sched::spawn_tasks(scope, p, |rank| {
                let shared = Arc::clone(&shared);
                let pool = Arc::clone(pool);
                let cost = self.cost.clone();
                let net = Arc::clone(&self.net);
                let trace = self.trace.clone();
                let node_stats = &node_stats;
                let failures = &failures;
                move || {
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        shared.wait_for_start(rank);
                        let comm = node::CommBackend::Event(Arc::clone(&shared));
                        let mut node = Node::new(rank, p, cost, net, comm, pool, trace);
                        body(&mut node);
                        node.into_stats()
                    }));
                    match result {
                        Ok(stats) => {
                            node_stats.lock().expect("stats lock")[rank] = Some(stats);
                            shared.finish_task(rank, None);
                        }
                        Err(payload) => {
                            let induced = shared.finish_task(rank, Some(payload.as_ref()));
                            failures.lock().expect("failures lock").push(Failure {
                                induced,
                                rank,
                                payload,
                            });
                        }
                    }
                }
            });
            shared.run_scheduler(carriers);
        });

        let failures = failures.into_inner().expect("failures lock");
        if !failures.is_empty() {
            return Err(failures);
        }
        let node_stats = node_stats.into_inner().expect("stats lock");
        Ok((
            node_stats.into_iter().map(Option::unwrap).collect(),
            Some(shared),
        ))
    }
}

/// One rank's panic, tagged with whether the scheduler induced it (a
/// deadlock-poison unwind) or the body failed on its own.
struct Failure {
    induced: bool,
    rank: usize,
    payload: Box<dyn std::any::Any + Send>,
}

// Compile-time thread-safety audit: the threaded substrate shares the
// machine, its network model, and the pooled message buffers across one
// OS thread per rank — none of these may silently lose Send/Sync.
const fn assert_send_sync<T: Send + Sync>() {}
const _: () = assert_send_sync::<Machine>();
const _: () = assert_send_sync::<node::BufferPool>();
const _: () = assert_send_sync::<CostModel>();
const _: () = assert_send_sync::<RunStats>();

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_node_pure_compute() {
        let m = Machine::new(1);
        let stats = m.run(|node| {
            node.charge_flops(1000);
        });
        assert_eq!(stats.total_msgs, 0);
        let expect = 1000.0 * m.cost.flop_us;
        assert!((stats.time_us - expect).abs() < 1e-9);
    }

    #[test]
    fn ping_message_timing() {
        let m = Machine::with_cost(
            2,
            CostModel {
                alpha_us: 100.0,
                beta_us_per_byte: 1.0,
                ..CostModel::ipsc860()
            },
        );
        let stats = m.run(|node| {
            if node.rank() == 0 {
                node.send(1, 7, &[1.0, 2.0]); // 16 bytes
            } else {
                let data = node.recv(0, 7);
                assert_eq!(data, vec![1.0, 2.0]);
            }
        });
        assert_eq!(stats.total_msgs, 1);
        assert_eq!(stats.total_bytes, 16);
        // Sender clock: 0 + α + 16β = 116; receiver waits until then.
        assert!(
            (stats.time_us - 116.0).abs() < 1e-9,
            "time {}",
            stats.time_us
        );
    }

    #[test]
    fn receiver_compute_overlaps_latency() {
        // If the receiver is already busy past the arrival time, the message
        // costs it nothing extra.
        let cost = CostModel {
            alpha_us: 10.0,
            beta_us_per_byte: 0.0,
            flop_us: 1.0,
            ..CostModel::ipsc860()
        };
        let m = Machine::with_cost(2, cost);
        let stats = m.run(|node| {
            if node.rank() == 0 {
                node.send(1, 0, &[0.0]);
            } else {
                node.charge_flops(1000); // clock = 1000 >> arrival (10)
                node.recv(0, 0);
                assert!((node.clock() - 1000.0).abs() < 1e-9);
            }
        });
        assert!((stats.time_us - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn fifo_order_preserved() {
        let m = Machine::new(2);
        m.run(|node| {
            if node.rank() == 0 {
                for i in 0..10 {
                    node.send(1, i, &[i as f64]);
                }
            } else {
                for i in 0..10 {
                    let d = node.recv(0, i);
                    assert_eq!(d[0], i as f64);
                }
            }
        });
    }

    #[test]
    fn ring_pipeline_time_accumulates() {
        // 0 -> 1 -> 2 -> 3: each hop adds α.
        let cost = CostModel {
            alpha_us: 50.0,
            beta_us_per_byte: 0.0,
            flop_us: 0.0,
            ..CostModel::ipsc860()
        };
        let m = Machine::with_cost(4, cost);
        let stats = m.run(|node| {
            let r = node.rank();
            if r == 0 {
                node.send(1, 0, &[42.0]);
            } else {
                let d = node.recv(r - 1, 0);
                if r < 3 {
                    node.send(r + 1, 0, &d);
                }
            }
        });
        assert!(
            (stats.time_us - 150.0).abs() < 1e-9,
            "time {}",
            stats.time_us
        );
        assert_eq!(stats.total_msgs, 3);
    }

    #[test]
    fn barrier_synchronizes_clocks() {
        let cost = CostModel {
            alpha_us: 10.0,
            flop_us: 1.0,
            ..CostModel::ipsc860()
        };
        let m = Machine::with_cost(4, cost.clone());
        m.run(|node| {
            node.charge_flops((node.rank() as u64 + 1) * 100);
            node.barrier();
            // Everyone is now at least at the slowest node's clock (400)
            // plus the barrier cost.
            let min = 400.0 + cost.alpha_us * (4f64).log2().ceil();
            assert!(node.clock() >= min, "clock {} < {min}", node.clock());
        });
    }

    #[test]
    fn broadcast_delivers_and_charges() {
        let m = Machine::new(4);
        let stats = m.run(|node| {
            let data = if node.rank() == 2 {
                vec![3.25; 8]
            } else {
                vec![]
            };
            let got = node.bcast(2, &data);
            assert_eq!(got, vec![3.25; 8]);
        });
        // Tree broadcast: P-1 logical messages.
        assert_eq!(stats.total_msgs, 3);
    }

    #[test]
    fn reduction_sums_across_nodes() {
        let m = Machine::new(5);
        m.run(|node| {
            let s = node.allreduce_sum(node.rank() as f64 + 1.0);
            assert!((s - 15.0).abs() < 1e-12);
        });
    }

    #[test]
    fn stats_per_node_recorded() {
        let m = Machine::new(3);
        let stats = m.run(|node| {
            if node.rank() == 0 {
                node.send(1, 0, &[1.0; 4]);
                node.send(2, 0, &[1.0; 4]);
            } else {
                node.recv(0, 0);
            }
        });
        assert_eq!(stats.per_node[0].msgs_sent, 2);
        assert_eq!(stats.per_node[1].msgs_sent, 0);
        assert_eq!(stats.per_node[0].bytes_sent, 64);
        assert_eq!(stats.total_msgs, 2);
    }

    #[test]
    fn determinism_across_runs() {
        let m = Machine::new(4);
        let run = || {
            m.run(|node| {
                let r = node.rank();
                node.charge_flops((r as u64 * 37 + 11) % 101);
                if r > 0 {
                    node.send(0, r as u64, &vec![r as f64; r]);
                } else {
                    for s in 1..4 {
                        node.recv(s, s as u64);
                    }
                }
                node.barrier();
            })
        };
        let a = run();
        let b = run();
        assert_eq!(a.time_us, b.time_us);
        assert_eq!(a.total_msgs, b.total_msgs);
        assert_eq!(a.total_bytes, b.total_bytes);
    }

    #[test]
    #[should_panic(expected = "tag mismatch")]
    fn tag_mismatch_panics() {
        let m = Machine::new(2);
        m.run(|node| {
            if node.rank() == 0 {
                node.send(1, 1, &[0.0]);
            } else {
                node.recv(0, 2);
            }
        });
    }
}
