//! Execution statistics.

use std::collections::BTreeMap;

/// Number of message-size histogram buckets (see [`size_bucket`]).
pub const HIST_BUCKETS: usize = 5;

/// Human-readable labels for the histogram buckets, aligned with
/// [`size_bucket`].
pub const HIST_LABELS: [&str; HIST_BUCKETS] = ["<=64B", "<=512B", "<=4KB", "<=32KB", ">32KB"];

/// Histogram bucket index for a message of `bytes` payload bytes.
pub fn size_bucket(bytes: u64) -> usize {
    match bytes {
        0..=64 => 0,
        65..=512 => 1,
        513..=4096 => 2,
        4097..=32768 => 3,
        _ => 4,
    }
}

/// Statistics for one simulated node.
#[derive(Clone, Debug, Default)]
pub struct NodeStats {
    /// Final virtual clock (µs).
    pub time_us: f64,
    /// Messages sent by this node.
    pub msgs_sent: u64,
    /// Bytes sent by this node.
    pub bytes_sent: u64,
    /// Floating-point operations charged.
    pub flops: u64,
    /// Scalar/control operations charged (incl. ownership tests).
    pub ops: u64,
    /// Remap library calls charged.
    pub remaps: u64,
    /// Time spent blocked waiting for messages (µs) — idle time.
    pub wait_us: f64,
    /// Message-size histogram over everything this node sent (point-to-point
    /// sends and the attributed messages of collectives alike).
    pub msg_hist: [u64; HIST_BUCKETS],
    /// `(messages, bytes)` per tag, for attributing message classes (e.g.
    /// plain vs. coalesced broadcasts) in `tables` output. Point-to-point
    /// sends always record under their tag; collectives only when the
    /// caller supplies one ([`crate::Node::bcast_tagged`]).
    pub msgs_by_tag: BTreeMap<u64, (u64, u64)>,
    /// Nonblocking operations posted by this node (sends + broadcasts).
    pub overlap_posts: u64,
    /// Completion waits executed by this node.
    pub overlap_waits: u64,
    /// µs of communication latency overlapped with compute: time the
    /// matching *blocking* operation would have stalled this node beyond
    /// what the posted form did.
    pub overlap_hidden_us: f64,
}

impl NodeStats {
    /// Records `msgs` messages of `bytes_each` payload bytes, optionally
    /// attributed to `tag`.
    pub(crate) fn record_msgs(&mut self, msgs: u64, bytes_each: u64, tag: Option<u64>) {
        self.msgs_sent += msgs;
        self.bytes_sent += msgs * bytes_each;
        self.msg_hist[size_bucket(bytes_each)] += msgs;
        if let Some(t) = tag {
            let e = self.msgs_by_tag.entry(t).or_insert((0, 0));
            e.0 += msgs;
            e.1 += msgs * bytes_each;
        }
    }
}

/// Aggregated statistics of one program run.
#[derive(Clone, Debug, Default)]
pub struct RunStats {
    /// Program execution time: max over nodes of the final clock (µs).
    pub time_us: f64,
    /// Total messages across all nodes.
    pub total_msgs: u64,
    /// Total bytes across all nodes.
    pub total_bytes: u64,
    /// Total flops across all nodes.
    pub total_flops: u64,
    /// Total scalar ops across all nodes.
    pub total_ops: u64,
    /// Total remap library calls.
    pub total_remaps: u64,
    /// Message-size histogram summed across nodes.
    pub msg_hist: [u64; HIST_BUCKETS],
    /// `(messages, bytes)` per tag summed across nodes.
    pub msgs_by_tag: BTreeMap<u64, (u64, u64)>,
    /// Nonblocking operations posted, summed across nodes.
    pub overlap_posts: u64,
    /// Completion waits executed, summed across nodes.
    pub overlap_waits: u64,
    /// µs of communication latency hidden behind compute, summed across
    /// nodes (see [`NodeStats::overlap_hidden_us`]).
    pub overlap_hidden_us: f64,
    /// Per-node detail.
    pub per_node: Vec<NodeStats>,
    /// Real (host) wall-clock time of `Machine::run`, in µs. Unlike the
    /// simulated metrics above this is *not* deterministic; it measures the
    /// execution engine itself, not the modeled machine.
    pub wall_us: f64,
    /// Bytecode-engine instructions retired across all ranks (0 for the
    /// tree engine and for raw `Machine::run` bodies).
    pub engine_instrs: u64,
    /// Bytecode-engine dispatches *saved* by superinstruction fusion:
    /// constituent instructions retired inside fused kernels and scalar
    /// superinstructions rather than individually dispatched. Fusion
    /// coverage is `fused_instrs / (engine_instrs + fused_instrs)`.
    pub fused_instrs: u64,
    /// Per-opcode dynamic dispatch counts of the bytecode engine, summed
    /// across ranks; only opcodes with nonzero counts appear. Sums to
    /// `engine_instrs`. Empty for the tree engine.
    pub instr_mix: Vec<(String, u64)>,
    /// Message buffers taken from the [`crate::BufferPool`] free list
    /// instead of allocated. Thread-interleaving dependent: which rank's
    /// drop races which rank's acquire varies run to run.
    pub pool_reuses: u64,
    /// Message buffers that had to be allocated (pool misses).
    pub pool_allocs: u64,
    /// Bytes of buffer capacity served from the pool free list.
    pub pool_bytes_reused: u64,
    /// Event-machine scheduler: task dispatches (baton handoffs). 0 under
    /// the threaded machine.
    pub sched_switches: u64,
    /// Event-machine scheduler: point-to-point messages routed through
    /// the mailboxes. 0 under the threaded machine.
    pub sched_msgs: u64,
    /// Event-machine scheduler: peak simultaneously-runnable ranks.
    pub sched_ready_peak: u64,
    /// Event-machine scheduler: peak undelivered messages queued across
    /// all mailboxes, counting pending collective contributions and
    /// in-flight posted broadcasts (held by the rendezvous / posted table
    /// until delivered) alongside point-to-point mailbox messages.
    pub sched_queue_peak: u64,
}

impl RunStats {
    /// Folds per-node statistics into a run summary.
    pub fn aggregate(per_node: Vec<NodeStats>) -> Self {
        let mut s = RunStats {
            per_node,
            ..Default::default()
        };
        for n in &s.per_node {
            s.time_us = s.time_us.max(n.time_us);
            s.total_msgs += n.msgs_sent;
            s.total_bytes += n.bytes_sent;
            s.total_flops += n.flops;
            s.total_ops += n.ops;
            s.total_remaps += n.remaps;
            for (b, c) in n.msg_hist.iter().enumerate() {
                s.msg_hist[b] += c;
            }
            for (&t, &(m, by)) in &n.msgs_by_tag {
                let e = s.msgs_by_tag.entry(t).or_insert((0, 0));
                e.0 += m;
                e.1 += by;
            }
            s.overlap_posts += n.overlap_posts;
            s.overlap_waits += n.overlap_waits;
            s.overlap_hidden_us += n.overlap_hidden_us;
        }
        s
    }

    /// Program time in milliseconds (convenience for reports).
    pub fn time_ms(&self) -> f64 {
        self.time_us / 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_takes_max_time_and_sums_counters() {
        let a = NodeStats {
            time_us: 10.0,
            msgs_sent: 2,
            bytes_sent: 16,
            flops: 5,
            ..Default::default()
        };
        let b = NodeStats {
            time_us: 30.0,
            msgs_sent: 1,
            bytes_sent: 8,
            flops: 7,
            ..Default::default()
        };
        let s = RunStats::aggregate(vec![a, b]);
        assert_eq!(s.time_us, 30.0);
        assert_eq!(s.total_msgs, 3);
        assert_eq!(s.total_bytes, 24);
        assert_eq!(s.total_flops, 12);
        assert_eq!(s.per_node.len(), 2);
    }

    #[test]
    fn empty_aggregate_is_zero() {
        let s = RunStats::aggregate(vec![]);
        assert_eq!(s.time_us, 0.0);
        assert_eq!(s.total_msgs, 0);
    }

    #[test]
    fn size_buckets_partition_sizes() {
        assert_eq!(size_bucket(0), 0);
        assert_eq!(size_bucket(64), 0);
        assert_eq!(size_bucket(65), 1);
        assert_eq!(size_bucket(512), 1);
        assert_eq!(size_bucket(4096), 2);
        assert_eq!(size_bucket(32768), 3);
        assert_eq!(size_bucket(32769), 4);
    }

    #[test]
    fn record_msgs_fills_histogram_and_tags() {
        let mut n = NodeStats::default();
        n.record_msgs(3, 8, Some(7));
        n.record_msgs(1, 1000, None);
        assert_eq!(n.msgs_sent, 4);
        assert_eq!(n.bytes_sent, 3 * 8 + 1000);
        assert_eq!(n.msg_hist[0], 3);
        assert_eq!(n.msg_hist[2], 1);
        assert_eq!(n.msgs_by_tag.get(&7), Some(&(3, 24)));
        let s = RunStats::aggregate(vec![n.clone(), n]);
        assert_eq!(s.msg_hist[0], 6);
        assert_eq!(s.msgs_by_tag.get(&7), Some(&(6, 48)));
    }
}
