//! Execution statistics.

/// Statistics for one simulated node.
#[derive(Clone, Debug, Default)]
pub struct NodeStats {
    /// Final virtual clock (µs).
    pub time_us: f64,
    /// Messages sent by this node.
    pub msgs_sent: u64,
    /// Bytes sent by this node.
    pub bytes_sent: u64,
    /// Floating-point operations charged.
    pub flops: u64,
    /// Scalar/control operations charged (incl. ownership tests).
    pub ops: u64,
    /// Remap library calls charged.
    pub remaps: u64,
    /// Time spent blocked waiting for messages (µs) — idle time.
    pub wait_us: f64,
}

/// Aggregated statistics of one program run.
#[derive(Clone, Debug, Default)]
pub struct RunStats {
    /// Program execution time: max over nodes of the final clock (µs).
    pub time_us: f64,
    /// Total messages across all nodes.
    pub total_msgs: u64,
    /// Total bytes across all nodes.
    pub total_bytes: u64,
    /// Total flops across all nodes.
    pub total_flops: u64,
    /// Total scalar ops across all nodes.
    pub total_ops: u64,
    /// Total remap library calls.
    pub total_remaps: u64,
    /// Per-node detail.
    pub per_node: Vec<NodeStats>,
}

impl RunStats {
    /// Folds per-node statistics into a run summary.
    pub fn aggregate(per_node: Vec<NodeStats>) -> Self {
        let mut s = RunStats {
            per_node,
            ..Default::default()
        };
        for n in &s.per_node {
            s.time_us = s.time_us.max(n.time_us);
            s.total_msgs += n.msgs_sent;
            s.total_bytes += n.bytes_sent;
            s.total_flops += n.flops;
            s.total_ops += n.ops;
            s.total_remaps += n.remaps;
        }
        s
    }

    /// Program time in milliseconds (convenience for reports).
    pub fn time_ms(&self) -> f64 {
        self.time_us / 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_takes_max_time_and_sums_counters() {
        let a = NodeStats {
            time_us: 10.0,
            msgs_sent: 2,
            bytes_sent: 16,
            flops: 5,
            ..Default::default()
        };
        let b = NodeStats {
            time_us: 30.0,
            msgs_sent: 1,
            bytes_sent: 8,
            flops: 7,
            ..Default::default()
        };
        let s = RunStats::aggregate(vec![a, b]);
        assert_eq!(s.time_us, 30.0);
        assert_eq!(s.total_msgs, 3);
        assert_eq!(s.total_bytes, 24);
        assert_eq!(s.total_flops, 12);
        assert_eq!(s.per_node.len(), 2);
    }

    #[test]
    fn empty_aggregate_is_zero() {
        let s = RunStats::aggregate(vec![]);
        assert_eq!(s.time_us, 0.0);
        assert_eq!(s.total_msgs, 0);
    }
}
