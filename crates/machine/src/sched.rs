//! Deterministic discrete-event scheduler for the event-driven machine.
//!
//! Instead of one free-running OS thread per rank racing over channels,
//! the event machine runs rank bodies as *cooperatively scheduled tasks*:
//! exactly one task executes at a time, and a central scheduler picks the
//! next runnable task by least `(virtual ready time, rank)`. Tasks run
//! until their next communication point — a receive with no matching
//! message queued, or a collective they are not the last to enter — then
//! yield back to the scheduler. Message delivery goes through per-rank
//! mailboxes rather than O(p²) channel pairs, so the machine scales to
//! thousands of ranks.
//!
//! Rank bodies are arbitrary re-entrant Rust closures (the tree walker
//! and the bytecode VM), so each task needs a real call stack. Tasks are
//! therefore carried by parked OS threads handing a baton around: at any
//! instant either the scheduler or exactly one task is running, and
//! everyone else is parked. The OS never makes a scheduling decision that
//! matters — order is fixed by the ready queue alone, which is what makes
//! runs bit-for-bit reproducible (see `tests/machines.rs`).
//!
//! Deadlock needs no wall-clock timeout here: if no task is runnable and
//! some are still blocked, the scheduler *proves* the deadlock, reports
//! every waiting rank and what it waits for, and poisons the run so all
//! blocked tasks unwind.

use crate::collective::{CollCore, CollOut, Contribution, PostedCore};
use crate::node::{Msg, Payload};
use crate::stats::RunStats;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::Thread;

/// Stack size for rank task threads. Rank bodies are interpreter loops
/// with shallow recursion; 2 MiB keeps thousands of ranks affordable.
const TASK_STACK: usize = 2 << 20;

/// `EvState::current` value meaning "the scheduler holds the baton".
const SCHED: isize = -1;

/// Why a task is not runnable.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Wait {
    /// Blocked in `recv` for a message from `src` with `tag`.
    Recv { src: usize, tag: u64 },
    /// Blocked in a collective, waiting for the last participant.
    Coll,
    /// Blocked waiting for posted broadcast `seq` (the root has not
    /// deposited it yet).
    Posted { seq: u64 },
}

#[derive(Clone, Copy, Debug)]
enum Status {
    /// In the ready queue (or about to be dispatched for the first time).
    Ready,
    /// Holds the baton.
    Running,
    /// Parked at a communication point.
    Blocked(Wait),
    /// Body returned normally.
    Done,
    /// Body panicked.
    Failed,
}

struct Task {
    /// Parked carrier thread; registered right after spawn.
    thread: Option<Thread>,
    status: Status,
    /// Virtual clock at the task's last yield.
    clock: f64,
    /// Lazy-deletion stamp: heap entries with a stale epoch are skipped.
    epoch: u64,
}

/// Ready-queue key: earliest virtual time first, rank breaking ties, so
/// the dispatch order is a deterministic function of the simulation state.
struct ReadyKey {
    at: f64,
    rank: usize,
    epoch: u64,
}

impl PartialEq for ReadyKey {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for ReadyKey {}
impl PartialOrd for ReadyKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for ReadyKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.at
            .total_cmp(&other.at)
            .then(self.rank.cmp(&other.rank))
            .then(self.epoch.cmp(&other.epoch))
    }
}

struct EvState {
    /// Baton holder: a rank, or [`SCHED`].
    current: isize,
    tasks: Vec<Task>,
    /// Per-destination message queues; FIFO per (src, dst) pair.
    mailbox: Vec<VecDeque<Msg>>,
    ready: BinaryHeap<Reverse<ReadyKey>>,
    /// Tasks currently in `Ready` state (the heap may hold stale extras).
    ready_count: usize,
    coll: CollCore,
    /// In-flight posted broadcasts (overlap comm level).
    posted: PostedCore,
    /// Set when the scheduler proves a deadlock; blocked tasks observe it
    /// and unwind with the diagnostic.
    poison: Option<Arc<String>>,
    /// Tasks not yet Done/Failed.
    live: usize,
    /// The scheduler's own thread handle, for handing the baton back.
    sched: Thread,
    // Scheduler counters, surfaced as `RunStats::sched_*`.
    switches: u64,
    msgs: u64,
    ready_peak: u64,
    queued: usize,
    queue_peak: u64,
}

/// Shared state of one event-machine run; every [`crate::Node`] of the
/// run holds an `Arc` to it.
pub(crate) struct EventShared {
    nprocs: usize,
    state: Mutex<EvState>,
}

impl EventShared {
    pub(crate) fn new(nprocs: usize, cost: crate::cost::CostModel) -> Self {
        let tasks = (0..nprocs)
            .map(|_| Task {
                thread: None,
                status: Status::Ready,
                clock: 0.0,
                epoch: 0,
            })
            .collect();
        let mut ready = BinaryHeap::with_capacity(nprocs);
        for rank in 0..nprocs {
            ready.push(Reverse(ReadyKey {
                at: 0.0,
                rank,
                epoch: 0,
            }));
        }
        EventShared {
            nprocs,
            state: Mutex::new(EvState {
                current: SCHED,
                tasks,
                mailbox: (0..nprocs).map(|_| VecDeque::new()).collect(),
                ready,
                ready_count: nprocs,
                coll: CollCore::new(nprocs, cost),
                posted: PostedCore::new(nprocs),
                poison: None,
                live: nprocs,
                sched: std::thread::current(),
                switches: 0,
                msgs: 0,
                ready_peak: nprocs as u64,
                queued: 0,
                queue_peak: 0,
            }),
        }
    }

    fn lock(&self) -> MutexGuard<'_, EvState> {
        self.state.lock().expect("event scheduler lock poisoned")
    }

    /// Marks `rank` runnable at virtual time `at`.
    fn make_ready(st: &mut EvState, rank: usize, at: f64) {
        let t = &mut st.tasks[rank];
        t.status = Status::Ready;
        t.epoch += 1;
        let epoch = t.epoch;
        st.ready.push(Reverse(ReadyKey { at, rank, epoch }));
        st.ready_count += 1;
        st.ready_peak = st.ready_peak.max(st.ready_count as u64);
    }

    /// Hands the baton to the scheduler and wakes it. Consumes the guard:
    /// the handoff must be the lock's last action.
    fn yield_to_sched(st: MutexGuard<'_, EvState>) {
        let mut st = st;
        st.current = SCHED;
        let sched = st.sched.clone();
        drop(st);
        sched.unpark();
    }

    /// Parks until this task holds the baton (or the run is poisoned, in
    /// which case it unwinds with the deadlock diagnostic).
    fn wait_for_baton(&self, me: usize) -> MutexGuard<'_, EvState> {
        loop {
            let st = self.lock();
            if st.current == me as isize {
                return st;
            }
            if let Some(p) = &st.poison {
                let diag = String::clone(p);
                drop(st);
                panic!("{diag}");
            }
            drop(st);
            std::thread::park();
        }
    }

    /// First dispatch: parks until the scheduler hands this task the
    /// baton for the first time.
    pub(crate) fn wait_for_start(&self, me: usize) {
        let st = self.wait_for_baton(me);
        drop(st);
    }

    /// Queues `msg` for `dst`, waking `dst` if it is blocked on exactly
    /// this source. Called by the sending task (which holds the baton).
    pub(crate) fn send_msg(&self, dst: usize, msg: Msg) {
        let mut st = self.lock();
        if let Status::Blocked(Wait::Recv { src, .. }) = st.tasks[dst].status {
            if src == msg.src {
                let at = st.tasks[dst].clock.max(msg.avail_at_us);
                Self::make_ready(&mut st, dst, at);
            }
        }
        st.mailbox[dst].push_back(msg);
        st.msgs += 1;
        st.queued += 1;
        st.queue_peak = st.queue_peak.max(st.queued as u64);
    }

    /// Takes the next message from `src`, yielding to the scheduler until
    /// one is queued. Per-(src, dst) FIFO order is preserved because the
    /// mailbox scan takes the *first* match.
    pub(crate) fn recv_msg(&self, me: usize, src: usize, tag: u64, my_clock: f64) -> Msg {
        let mut st = self.lock();
        loop {
            if let Some(pos) = st.mailbox[me].iter().position(|m| m.src == src) {
                let msg = st.mailbox[me].remove(pos).expect("scanned position");
                st.queued -= 1;
                return msg;
            }
            st.tasks[me].status = Status::Blocked(Wait::Recv { src, tag });
            st.tasks[me].clock = my_clock;
            Self::yield_to_sched(st);
            st = self.wait_for_baton(me);
        }
    }

    /// Enters a collective. The last arriver computes the result and
    /// makes every waiter runnable at `max(result time, its own clock)`;
    /// earlier arrivers yield and read the stored result on wake.
    pub(crate) fn collective(&self, me: usize, my_clock: f64, c: Contribution) -> CollOut {
        let mut st = self.lock();
        let gen = st.coll.generation();
        let last = st.coll.contribute(c);
        // Each contribution is an undelivered message held by the
        // rendezvous until the last arriver completes it, so it counts
        // toward the queue high-water mark like a mailbox message.
        st.queued += 1;
        st.queue_peak = st.queue_peak.max(st.queued as u64);
        if last {
            let out = st.coll.finish();
            st.queued -= self.nprocs;
            for rank in 0..self.nprocs {
                if matches!(st.tasks[rank].status, Status::Blocked(Wait::Coll)) {
                    let at = st.tasks[rank].clock.max(out.time);
                    Self::make_ready(&mut st, rank, at);
                }
            }
            return out;
        }
        st.tasks[me].status = Status::Blocked(Wait::Coll);
        st.tasks[me].clock = my_clock;
        Self::yield_to_sched(st);
        let st = self.wait_for_baton(me);
        st.coll.result(gen)
    }

    /// Root-side deposit of posted broadcast `seq`, complete at virtual
    /// time `time`. Wakes any rank already blocked on it (runnable at
    /// `max(completion, its own clock)`). Called by the posting task,
    /// which holds the baton and never blocks here.
    pub(crate) fn post_insert(&self, seq: u64, time: f64, data: Payload) {
        let mut st = self.lock();
        st.posted.insert(seq, time, data);
        // An in-flight posted broadcast is one undelivered message until
        // the last rank takes its copy (see `posted_wait`).
        st.queued += 1;
        st.queue_peak = st.queue_peak.max(st.queued as u64);
        for rank in 0..self.nprocs {
            if matches!(st.tasks[rank].status, Status::Blocked(Wait::Posted { seq: s }) if s == seq)
            {
                let at = st.tasks[rank].clock.max(time);
                Self::make_ready(&mut st, rank, at);
            }
        }
    }

    /// Takes this rank's copy of posted broadcast `seq`, yielding to the
    /// scheduler until the root deposits it.
    pub(crate) fn posted_wait(&self, me: usize, seq: u64, my_clock: f64) -> (f64, Payload) {
        let mut st = self.lock();
        loop {
            if let Some((time, data, retired)) = st.posted.try_take(seq) {
                if retired {
                    st.queued -= 1;
                }
                return (time, data);
            }
            st.tasks[me].status = Status::Blocked(Wait::Posted { seq });
            st.tasks[me].clock = my_clock;
            Self::yield_to_sched(st);
            st = self.wait_for_baton(me);
        }
    }

    /// Records the task's terminal state and hands the baton back if this
    /// task held it. `induced` is true when the panic payload *is* the
    /// scheduler's own deadlock diagnostic (as opposed to a genuine body
    /// panic).
    pub(crate) fn finish_task(
        &self,
        me: usize,
        payload: Option<&(dyn std::any::Any + Send)>,
    ) -> bool {
        let mut st = self.lock();
        let induced = match (payload, &st.poison) {
            (Some(p), Some(diag)) => p
                .downcast_ref::<String>()
                .is_some_and(|s| s == diag.as_ref()),
            _ => false,
        };
        st.tasks[me].status = if payload.is_some() {
            Status::Failed
        } else {
            Status::Done
        };
        st.live -= 1;
        if st.current == me as isize {
            Self::yield_to_sched(st);
        }
        induced
    }

    /// Registers the carrier threads, then runs the event loop until every
    /// task is Done or Failed (possibly via deadlock poisoning). Must be
    /// called from the thread that created this `EventShared`.
    pub(crate) fn run_scheduler(&self, carriers: Vec<Thread>) {
        {
            let mut st = self.lock();
            for (task, th) in st.tasks.iter_mut().zip(carriers) {
                task.thread = Some(th);
            }
        }
        loop {
            // Wait for the baton.
            let mut st = loop {
                let st = self.lock();
                if st.current == SCHED {
                    break st;
                }
                drop(st);
                std::thread::park();
            };
            if st.live == 0 {
                return;
            }
            // Next runnable task: least (ready_at, rank), skipping stale
            // heap entries.
            let next = loop {
                match st.ready.pop() {
                    Some(Reverse(key)) => {
                        let t = &st.tasks[key.rank];
                        if t.epoch == key.epoch && matches!(t.status, Status::Ready) {
                            break Some(key.rank);
                        }
                    }
                    None => break None,
                }
            };
            match next {
                Some(rank) => {
                    st.ready_count -= 1;
                    st.switches += 1;
                    st.tasks[rank].status = Status::Running;
                    st.current = rank as isize;
                    let th = st.tasks[rank]
                        .thread
                        .clone()
                        .expect("carrier thread registered");
                    drop(st);
                    th.unpark();
                }
                None => {
                    // Nothing runnable but tasks remain: a true deadlock.
                    let diag = deadlock_diag(&st);
                    st.poison = Some(Arc::new(diag));
                    let blocked: Vec<Thread> = st
                        .tasks
                        .iter()
                        .filter(|t| matches!(t.status, Status::Blocked(_)))
                        .filter_map(|t| t.thread.clone())
                        .collect();
                    drop(st);
                    for th in blocked {
                        th.unpark();
                    }
                    return;
                }
            }
        }
    }

    /// Copies the scheduler counters into `stats`.
    pub(crate) fn export_counters(&self, stats: &mut RunStats) {
        let st = self.lock();
        stats.sched_switches = st.switches;
        stats.sched_msgs = st.msgs;
        stats.sched_ready_peak = st.ready_peak;
        stats.sched_queue_peak = st.queue_peak;
    }
}

/// Renders the deadlock diagnostic: one clause per waiting rank, then the
/// waiting rank set. The per-rank clause matches the threaded machine's
/// timeout message closely enough that diagnostics stay grep-compatible.
fn deadlock_diag(st: &EvState) -> String {
    let mut clauses = Vec::new();
    let mut waiting = Vec::new();
    let mut failed = Vec::new();
    for (rank, task) in st.tasks.iter().enumerate() {
        match task.status {
            Status::Blocked(Wait::Recv { src, tag }) => {
                waiting.push(rank);
                clauses.push(format!(
                    "rank {rank} waited for a message from {src} (tag {tag})"
                ));
            }
            Status::Blocked(Wait::Coll) => {
                waiting.push(rank);
                clauses.push(format!("rank {rank} waited in a collective"));
            }
            Status::Blocked(Wait::Posted { seq }) => {
                waiting.push(rank);
                clauses.push(format!(
                    "rank {rank} waited for posted broadcast #{seq} (never posted)"
                ));
            }
            Status::Failed => failed.push(rank),
            _ => {}
        }
    }
    let mut diag = format!(
        "deadlock: {}; event queue empty with blocked ranks {waiting:?}",
        clauses.join("; ")
    );
    if !failed.is_empty() {
        diag.push_str(&format!(" (ranks {failed:?} previously panicked)"));
    }
    diag
}

/// Spawns one carrier thread per rank with a task-sized stack.
pub(crate) fn spawn_tasks<'scope, 'env, F>(
    scope: &'scope std::thread::Scope<'scope, 'env>,
    nprocs: usize,
    mut task: impl FnMut(usize) -> F,
) -> Vec<Thread>
where
    F: FnOnce() + Send + 'scope,
{
    let mut carriers = Vec::with_capacity(nprocs);
    for rank in 0..nprocs {
        let body = task(rank);
        let handle = std::thread::Builder::new()
            .name(format!("ev-rank{rank}"))
            .stack_size(TASK_STACK)
            .spawn_scoped(scope, body)
            .expect("spawn event-machine task");
        carriers.push(handle.thread().clone());
    }
    carriers
}
