//! Communication and computation cost model.

/// LogGP-style cost parameters, in microseconds.
///
/// The defaults approximate the Intel iPSC/860 the paper evaluated on:
/// message startup around 75µs, asymptotic bandwidth around 2.8 MB/s
/// (≈0.36µs/byte), and roughly 60ns per double-precision flop (the i860
/// rarely sustained more than a few MFLOPS on compiled code). The paper's
/// claims depend on the *ratios* (startup ≫ per-byte ≫ per-flop), not the
/// absolute values; EXPERIMENTS.md records shape comparisons only.
#[derive(Clone, Debug, PartialEq)]
pub struct CostModel {
    /// Message startup latency α (charged to the sender per message).
    pub alpha_us: f64,
    /// Per-byte transfer cost β.
    pub beta_us_per_byte: f64,
    /// Cost of one floating-point operation.
    pub flop_us: f64,
    /// Cost of one scalar/integer/control operation (guards, ownership
    /// tests, address arithmetic) — what run-time resolution pays per
    /// reference.
    pub op_us: f64,
    /// Fixed cost of one array remapping library call, *excluding* the data
    /// motion itself (which is charged as messages).
    pub remap_call_us: f64,
}

impl CostModel {
    /// iPSC/860-flavoured defaults (see type-level docs).
    pub fn ipsc860() -> Self {
        CostModel {
            alpha_us: 75.0,
            beta_us_per_byte: 0.36,
            flop_us: 0.06,
            op_us: 0.03,
            remap_call_us: 50.0,
        }
    }

    /// A cost model with free computation — isolates communication effects
    /// in ablation benchmarks.
    pub fn comm_only() -> Self {
        CostModel {
            flop_us: 0.0,
            op_us: 0.0,
            ..Self::ipsc860()
        }
    }

    /// Cost charged to a sender for a message of `bytes` bytes.
    pub fn send_cost(&self, bytes: u64) -> f64 {
        self.alpha_us + self.beta_us_per_byte * bytes as f64
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::ipsc860()
    }
}

/// Pluggable interconnect topology model.
///
/// The [`CostModel`] charges the *sender* `α + β·bytes` regardless of
/// topology; a `NetworkModel` adds the *in-flight* latency a message pays
/// before the receiver may consume it, on top of the sender's post-send
/// clock. The default [`DirectNet`] adds nothing, matching the paper's
/// iPSC/860 measurements (whose α already folds in the circuit-switched
/// routing overhead); [`HypercubeNet`] and [`TorusNet`] charge per-link
/// store-and-forward hops so topology experiments can be layered on the
/// same α/β parameters.
pub trait NetworkModel: Send + Sync {
    /// Short topology name for reports and traces.
    fn name(&self) -> &'static str;

    /// Extra in-flight latency (µs) for a `bytes`-byte message from `src`
    /// to `dst`, beyond the sender-side `α + β·bytes` charge. The first
    /// hop is considered part of α, so single-hop routes cost 0 extra.
    fn extra_latency_us(&self, src: usize, dst: usize, bytes: u64, cost: &CostModel) -> f64;
}

/// Fully-connected network: every message arrives at the sender's
/// post-send clock, exactly as the paper's α/β model assumes. This is the
/// default and the configuration under which the event-driven and
/// threaded machines are differentially tested.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DirectNet;

impl NetworkModel for DirectNet {
    fn name(&self) -> &'static str {
        "direct"
    }

    fn extra_latency_us(&self, _src: usize, _dst: usize, _bytes: u64, _cost: &CostModel) -> f64 {
        0.0
    }
}

/// Binary hypercube (the iPSC/860's physical topology): ranks are cube
/// corners, the route length is the Hamming distance of the rank labels,
/// and each hop past the first costs `per_hop_us`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HypercubeNet {
    /// Per-link forwarding cost (µs) for every hop after the first.
    pub per_hop_us: f64,
}

impl HypercubeNet {
    /// A hypercube with the given per-link hop cost.
    pub fn new(per_hop_us: f64) -> Self {
        HypercubeNet { per_hop_us }
    }

    /// Number of links on the route between two ranks (Hamming distance).
    pub fn hops(src: usize, dst: usize) -> u32 {
        (src ^ dst).count_ones()
    }
}

impl NetworkModel for HypercubeNet {
    fn name(&self) -> &'static str {
        "hypercube"
    }

    fn extra_latency_us(&self, src: usize, dst: usize, _bytes: u64, _cost: &CostModel) -> f64 {
        let hops = Self::hops(src, dst);
        self.per_hop_us * hops.saturating_sub(1) as f64
    }
}

/// 2-D torus of `rows × cols` nodes with wraparound links; ranks map
/// row-major onto the grid and messages take the Manhattan shortest path,
/// paying `per_hop_us` for every link after the first.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TorusNet {
    /// Grid height.
    pub rows: usize,
    /// Grid width.
    pub cols: usize,
    /// Per-link forwarding cost (µs) for every hop after the first.
    pub per_hop_us: f64,
}

impl TorusNet {
    /// A torus with the given shape and per-link hop cost.
    pub fn new(rows: usize, cols: usize, per_hop_us: f64) -> Self {
        assert!(rows >= 1 && cols >= 1, "torus needs a non-empty grid");
        TorusNet {
            rows,
            cols,
            per_hop_us,
        }
    }

    /// Wraparound Manhattan distance between two row-major ranks.
    pub fn hops(&self, src: usize, dst: usize) -> u32 {
        let ring = |a: usize, b: usize, n: usize| {
            let d = a.abs_diff(b) % n;
            d.min(n - d)
        };
        let (sr, sc) = (src / self.cols, src % self.cols);
        let (dr, dc) = (dst / self.cols, dst % self.cols);
        (ring(sr, dr, self.rows) + ring(sc, dc, self.cols)) as u32
    }
}

impl NetworkModel for TorusNet {
    fn name(&self) -> &'static str {
        "torus"
    }

    fn extra_latency_us(&self, src: usize, dst: usize, _bytes: u64, _cost: &CostModel) -> f64 {
        assert!(
            src < self.rows * self.cols && dst < self.rows * self.cols,
            "rank outside the {}x{} torus",
            self.rows,
            self.cols
        );
        let hops = self.hops(src, dst);
        self.per_hop_us * hops.saturating_sub(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn startup_dominates_small_messages() {
        let c = CostModel::ipsc860();
        // An 8-byte message is dominated by α…
        assert!(c.send_cost(8) < 1.1 * c.alpha_us);
        // …while a 100KB message is dominated by β.
        assert!(c.send_cost(100_000) > 10.0 * c.alpha_us);
    }

    #[test]
    fn comm_only_zeroes_compute() {
        let c = CostModel::comm_only();
        assert_eq!(c.flop_us, 0.0);
        assert_eq!(c.op_us, 0.0);
        assert!(c.alpha_us > 0.0);
    }

    #[test]
    fn direct_net_adds_nothing() {
        let c = CostModel::ipsc860();
        assert_eq!(DirectNet.extra_latency_us(0, 7, 4096, &c), 0.0);
    }

    #[test]
    fn hypercube_hops_are_hamming_distance() {
        assert_eq!(HypercubeNet::hops(0, 0), 0);
        assert_eq!(HypercubeNet::hops(0, 1), 1);
        assert_eq!(HypercubeNet::hops(0, 3), 2);
        assert_eq!(HypercubeNet::hops(5, 2), 3); // 101 ^ 010 = 111
        let net = HypercubeNet::new(5.0);
        let c = CostModel::ipsc860();
        // Neighbours (1 hop) pay nothing extra; 3 hops pay 2 forwards.
        assert_eq!(net.extra_latency_us(0, 1, 8, &c), 0.0);
        assert_eq!(net.extra_latency_us(5, 2, 8, &c), 10.0);
    }

    #[test]
    fn torus_wraps_both_axes() {
        let net = TorusNet::new(4, 4, 2.0);
        // (0,0) -> (3,3) wraps to 1+1 = 2 hops.
        assert_eq!(net.hops(0, 15), 2);
        // (0,0) -> (2,2) has no shortcut: 2+2 = 4 hops.
        assert_eq!(net.hops(0, 10), 4);
        let c = CostModel::ipsc860();
        assert_eq!(net.extra_latency_us(0, 10, 8, &c), 6.0);
        assert_eq!(net.extra_latency_us(0, 1, 8, &c), 0.0);
        assert_eq!(net.extra_latency_us(3, 3, 8, &c), 0.0);
    }
}
