//! Communication and computation cost model.

/// LogGP-style cost parameters, in microseconds.
///
/// The defaults approximate the Intel iPSC/860 the paper evaluated on:
/// message startup around 75µs, asymptotic bandwidth around 2.8 MB/s
/// (≈0.36µs/byte), and roughly 60ns per double-precision flop (the i860
/// rarely sustained more than a few MFLOPS on compiled code). The paper's
/// claims depend on the *ratios* (startup ≫ per-byte ≫ per-flop), not the
/// absolute values; EXPERIMENTS.md records shape comparisons only.
#[derive(Clone, Debug, PartialEq)]
pub struct CostModel {
    /// Message startup latency α (charged to the sender per message).
    pub alpha_us: f64,
    /// Per-byte transfer cost β.
    pub beta_us_per_byte: f64,
    /// Cost of one floating-point operation.
    pub flop_us: f64,
    /// Cost of one scalar/integer/control operation (guards, ownership
    /// tests, address arithmetic) — what run-time resolution pays per
    /// reference.
    pub op_us: f64,
    /// Fixed cost of one array remapping library call, *excluding* the data
    /// motion itself (which is charged as messages).
    pub remap_call_us: f64,
}

impl CostModel {
    /// iPSC/860-flavoured defaults (see type-level docs).
    pub fn ipsc860() -> Self {
        CostModel {
            alpha_us: 75.0,
            beta_us_per_byte: 0.36,
            flop_us: 0.06,
            op_us: 0.03,
            remap_call_us: 50.0,
        }
    }

    /// A cost model with free computation — isolates communication effects
    /// in ablation benchmarks.
    pub fn comm_only() -> Self {
        CostModel {
            flop_us: 0.0,
            op_us: 0.0,
            ..Self::ipsc860()
        }
    }

    /// Cost charged to a sender for a message of `bytes` bytes.
    pub fn send_cost(&self, bytes: u64) -> f64 {
        self.alpha_us + self.beta_us_per_byte * bytes as f64
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::ipsc860()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn startup_dominates_small_messages() {
        let c = CostModel::ipsc860();
        // An 8-byte message is dominated by α…
        assert!(c.send_cost(8) < 1.1 * c.alpha_us);
        // …while a 100KB message is dominated by β.
        assert!(c.send_cost(100_000) > 10.0 * c.alpha_us);
    }

    #[test]
    fn comm_only_zeroes_compute() {
        let c = CostModel::comm_only();
        assert_eq!(c.flop_us, 0.0);
        assert_eq!(c.op_us, 0.0);
        assert!(c.alpha_us > 0.0);
    }
}
