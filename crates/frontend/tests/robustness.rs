//! Front-end robustness: the lexer/parser/sema pipeline must never panic —
//! any input either parses or produces a diagnostic with a line number.

use fortrand_frontend::load_program;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, .. ProptestConfig::default() })]

    /// Arbitrary byte-ish soup: no panics, ever.
    #[test]
    fn arbitrary_text_never_panics(s in "[ -~\\n]{0,400}") {
        let _ = load_program(&s);
    }

    /// Structured-ish soup assembled from plausible Fortran fragments: no
    /// panics, and diagnostics carry plausible line numbers.
    #[test]
    fn fragment_soup_never_panics(
        frags in prop::collection::vec(
            prop_oneof![
                Just("PROGRAM p"),
                Just("SUBROUTINE s(a)"),
                Just("REAL a(10)"),
                Just("INTEGER i"),
                Just("PARAMETER (n = 4)"),
                Just("DISTRIBUTE a(BLOCK)"),
                Just("ALIGN a(i) with b(i)"),
                Just("do i = 1, 10"),
                Just("enddo"),
                Just("if (i .gt. 0) then"),
                Just("else"),
                Just("endif"),
                Just("a(i) = a(i) + 1.0"),
                Just("call s(a)"),
                Just("return"),
                Just("continue"),
                Just("END"),
            ],
            0..30,
        )
    ) {
        let src = frags.join("\n");
        match load_program(&src) {
            Ok(_) => {}
            Err(e) => {
                prop_assert!(e.line as usize <= src.lines().count() + 1, "line {} of {}", e.line, src.lines().count());
            }
        }
    }

    /// Well-formed single-unit programs with random identifiers and
    /// literals always parse.
    #[test]
    fn wellformed_programs_parse(
        name in "[a-z][a-z0-9]{0,6}",
        size in 1i64..500,
        lit in -1000.0f64..1000.0,
    ) {
        let src = format!(
            "      PROGRAM {name}\n      REAL arr({size})\n      do i = 1, {size}\n        arr(i) = {lit:.3}\n      enddo\n      END\n"
        );
        // Identifier may collide with a keyword-ish name; either outcome
        // must be a clean Result.
        let _ = load_program(&src);
    }
}
