//! Front-end diagnostics.

use std::fmt;

/// An error produced while lexing, parsing or semantically analyzing a
/// source program. Carries the 1-based source line where it was detected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FrontendError {
    /// 1-based source line, 0 if not attributable to a line.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

impl FrontendError {
    /// Creates an error at `line`.
    pub fn at(line: u32, message: impl Into<String>) -> Self {
        FrontendError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for FrontendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "line {}: {}", self.line, self.message)
        } else {
            write!(f, "{}", self.message)
        }
    }
}

impl std::error::Error for FrontendError {}

/// Front-end result type.
pub type Result<T> = std::result::Result<T, FrontendError>;
