//! Recursive-descent parser.
//!
//! Consumes the lexer's logical lines and builds the AST. Fortran has no
//! reserved words, so statement kinds are recognized contextually from the
//! leading identifier(s); anything unrecognized that contains a top-level
//! `=` is an assignment.

use crate::ast::*;
use crate::error::{FrontendError, Result};
use crate::lexer::{lex, Line, Tok};
use fortrand_ir::dist::DistKind;
use fortrand_ir::{Interner, Sym};

/// Parses a whole source file.
pub fn parse_program(source: &str) -> Result<SourceProgram> {
    let lines = lex(source)?;
    let mut p = Parser {
        interner: Interner::new(),
        next_id: 0,
    };
    let mut units = Vec::new();
    let mut i = 0;
    while i < lines.len() {
        let (unit, consumed) = p.parse_unit(&lines[i..])?;
        units.push(unit);
        i += consumed;
    }
    if units.is_empty() {
        return Err(FrontendError::at(0, "empty program"));
    }
    Ok(SourceProgram {
        units,
        interner: p.interner,
    })
}

struct Parser {
    interner: Interner,
    next_id: u32,
}

/// An open block while parsing a unit body.
enum Block {
    /// The unit body itself.
    Unit(Vec<Stmt>),
    /// An open DO loop: header info + collected body (+ closing label).
    Do {
        var: Sym,
        lo: Expr,
        hi: Expr,
        step: Option<Expr>,
        label: Option<u32>,
        line: u32,
        body: Vec<Stmt>,
    },
    /// An open IF: condition + then-branch (+ else once seen).
    If {
        cond: Expr,
        line: u32,
        then_body: Vec<Stmt>,
        else_body: Option<Vec<Stmt>>,
    },
}

impl Parser {
    fn fresh_id(&mut self) -> StmtId {
        let id = StmtId(self.next_id);
        self.next_id += 1;
        id
    }

    fn sym(&mut self, name: &str) -> Sym {
        self.interner.intern(name)
    }

    /// Parses one program unit starting at `lines[0]`; returns it and the
    /// number of lines consumed.
    fn parse_unit(&mut self, lines: &[Line]) -> Result<(ProcUnit, usize)> {
        let header = &lines[0];
        let (kind, name, formals) = self.parse_unit_header(header)?;
        let mut decls = Vec::new();
        let mut blocks: Vec<Block> = vec![Block::Unit(Vec::new())];
        let mut idx = 1;
        loop {
            if idx >= lines.len() {
                return Err(FrontendError::at(
                    header.number,
                    "unit not terminated by END",
                ));
            }
            let line = &lines[idx];
            idx += 1;
            let mut c = Cursor {
                toks: &line.toks,
                pos: 0,
                line: line.number,
            };
            let head = match c.peek_ident() {
                Some(w) => w.to_string(),
                None => String::new(),
            };
            // END variants.
            if head == "end" {
                c.bump();
                match c.peek_ident() {
                    Some("do") => {
                        self.close_do(&mut blocks, line.number)?;
                        continue;
                    }
                    Some("if") => {
                        self.close_if(&mut blocks, line.number)?;
                        continue;
                    }
                    None => {
                        // end of unit
                        if blocks.len() != 1 {
                            return Err(FrontendError::at(
                                line.number,
                                "END of unit with unterminated DO/IF block",
                            ));
                        }
                        let body = match blocks.pop().unwrap() {
                            Block::Unit(b) => b,
                            _ => unreachable!(),
                        };
                        let unit = ProcUnit {
                            kind,
                            name,
                            formals,
                            decls,
                            body,
                            line: header.number,
                        };
                        return Ok((unit, idx));
                    }
                    Some(other) => {
                        return Err(FrontendError::at(line.number, format!("END {other}?")));
                    }
                }
            }
            if head == "enddo" {
                self.close_do(&mut blocks, line.number)?;
                continue;
            }
            if head == "endif" {
                self.close_if(&mut blocks, line.number)?;
                continue;
            }
            if head == "else" {
                c.bump();
                if c.peek_ident() == Some("if") || c.peek_ident() == Some("elseif") {
                    return Err(FrontendError::at(
                        line.number,
                        "ELSE IF is not supported; nest an IF inside ELSE",
                    ));
                }
                match blocks.last_mut() {
                    Some(Block::If { else_body, .. }) if else_body.is_none() => {
                        *else_body = Some(Vec::new());
                    }
                    _ => return Err(FrontendError::at(line.number, "ELSE outside IF")),
                }
                continue;
            }
            if head == "elseif" {
                return Err(FrontendError::at(
                    line.number,
                    "ELSE IF is not supported; nest an IF inside ELSE",
                ));
            }

            // Declarations (only legal before executable statements have
            // appeared, which we do not enforce strictly — Fortran D's
            // DECOMPOSITION may be interleaved in real codes).
            if let Some(d) = self.try_parse_decl(&mut c)? {
                decls.extend(d);
                continue;
            }

            // Statements that open blocks.
            if head == "do" {
                let mut c2 = Cursor {
                    toks: &line.toks,
                    pos: 1,
                    line: line.number,
                };
                // Optional closing label: DO 10 i = …
                let label = match c2.peek() {
                    Some(Tok::Int(v)) => {
                        let v = *v as u32;
                        c2.bump();
                        Some(v)
                    }
                    _ => None,
                };
                let var_name = c2.expect_ident("loop index")?;
                let var = self.sym(&var_name);
                c2.expect(&Tok::Assign)?;
                let lo = self.parse_expr(&mut c2)?;
                c2.expect(&Tok::Comma)?;
                let hi = self.parse_expr(&mut c2)?;
                let step = if c2.eat(&Tok::Comma) {
                    Some(self.parse_expr(&mut c2)?)
                } else {
                    None
                };
                c2.expect_end()?;
                blocks.push(Block::Do {
                    var,
                    lo,
                    hi,
                    step,
                    label,
                    line: line.number,
                    body: Vec::new(),
                });
                continue;
            }
            if head == "if" {
                let mut c2 = Cursor {
                    toks: &line.toks,
                    pos: 1,
                    line: line.number,
                };
                c2.expect(&Tok::LParen)?;
                let cond = self.parse_expr(&mut c2)?;
                c2.expect(&Tok::RParen)?;
                if c2.peek_ident() == Some("then") {
                    c2.bump();
                    c2.expect_end()?;
                    blocks.push(Block::If {
                        cond,
                        line: line.number,
                        then_body: Vec::new(),
                        else_body: None,
                    });
                } else {
                    // Logical IF: the rest is a single simple statement.
                    let inner = self.parse_simple_stmt(&mut c2)?;
                    let id = self.fresh_id();
                    let stmt = Stmt {
                        id,
                        line: line.number,
                        kind: StmtKind::If {
                            cond,
                            then_body: vec![inner],
                            else_body: Vec::new(),
                        },
                    };
                    self.push_stmt(&mut blocks, stmt);
                }
                continue;
            }

            // Simple statement.
            let stmt = self.parse_simple_stmt(&mut c)?;
            let stmt_label = line.label;
            self.push_stmt(&mut blocks, stmt);
            // A labeled statement may close labeled DO loops.
            if let Some(l) = stmt_label {
                while matches!(blocks.last(), Some(Block::Do { label: Some(dl), .. }) if *dl == l) {
                    self.close_do(&mut blocks, line.number)?;
                }
            }
        }
    }

    fn parse_unit_header(&mut self, line: &Line) -> Result<(UnitKind, Sym, Vec<Sym>)> {
        let mut c = Cursor {
            toks: &line.toks,
            pos: 0,
            line: line.number,
        };
        let first = c.expect_ident("unit header")?;
        let (kind, name) = match first.as_str() {
            "program" => {
                let n = c.expect_ident("program name")?;
                (UnitKind::Program, self.sym(&n))
            }
            "subroutine" => {
                let n = c.expect_ident("subroutine name")?;
                (UnitKind::Subroutine, self.sym(&n))
            }
            "function" => {
                let n = c.expect_ident("function name")?;
                (UnitKind::Function(Type::Real), self.sym(&n))
            }
            ty @ ("real" | "integer" | "logical" | "double") => {
                let ty = match ty {
                    "real" => Type::Real,
                    "integer" => Type::Integer,
                    "logical" => Type::Logical,
                    _ => {
                        if c.peek_ident() == Some("precision") {
                            c.bump();
                        }
                        Type::Double
                    }
                };
                if c.peek_ident() != Some("function") {
                    return Err(FrontendError::at(
                        line.number,
                        "expected FUNCTION after type in unit header",
                    ));
                }
                c.bump();
                let n = c.expect_ident("function name")?;
                (UnitKind::Function(ty), self.sym(&n))
            }
            other => {
                return Err(FrontendError::at(
                    line.number,
                    format!("expected PROGRAM/SUBROUTINE/FUNCTION, found `{other}`"),
                ))
            }
        };
        let mut formals = Vec::new();
        if c.eat(&Tok::LParen) && !c.eat(&Tok::RParen) {
            loop {
                let f = c.expect_ident("formal parameter")?;
                formals.push(self.sym(&f));
                if c.eat(&Tok::RParen) {
                    break;
                }
                c.expect(&Tok::Comma)?;
            }
        }
        c.expect_end()?;
        Ok((kind, name, formals))
    }

    fn close_do(&mut self, blocks: &mut Vec<Block>, lineno: u32) -> Result<()> {
        match blocks.pop() {
            Some(Block::Do {
                var,
                lo,
                hi,
                step,
                body,
                line,
                ..
            }) => {
                let id = self.fresh_id();
                let stmt = Stmt {
                    id,
                    line,
                    kind: StmtKind::Do {
                        var,
                        lo,
                        hi,
                        step,
                        body,
                    },
                };
                self.push_stmt(blocks, stmt);
                Ok(())
            }
            other => {
                if let Some(b) = other {
                    blocks.push(b);
                }
                Err(FrontendError::at(lineno, "ENDDO without open DO"))
            }
        }
    }

    fn close_if(&mut self, blocks: &mut Vec<Block>, lineno: u32) -> Result<()> {
        match blocks.pop() {
            Some(Block::If {
                cond,
                line,
                then_body,
                else_body,
            }) => {
                let id = self.fresh_id();
                let stmt = Stmt {
                    id,
                    line,
                    kind: StmtKind::If {
                        cond,
                        then_body,
                        else_body: else_body.unwrap_or_default(),
                    },
                };
                self.push_stmt(blocks, stmt);
                Ok(())
            }
            other => {
                if let Some(b) = other {
                    blocks.push(b);
                }
                Err(FrontendError::at(lineno, "ENDIF without open IF"))
            }
        }
    }

    fn push_stmt(&mut self, blocks: &mut [Block], stmt: Stmt) {
        match blocks.last_mut().expect("block stack empty") {
            Block::Unit(b) | Block::Do { body: b, .. } => b.push(stmt),
            Block::If {
                then_body,
                else_body,
                ..
            } => match else_body {
                Some(e) => e.push(stmt),
                None => then_body.push(stmt),
            },
        }
    }

    /// Declarations: type decls, PARAMETER, DECOMPOSITION. Returns `None`
    /// if the line is not a declaration.
    fn try_parse_decl(&mut self, c: &mut Cursor) -> Result<Option<Vec<Decl>>> {
        let head = match c.peek_ident() {
            Some(h) => h.to_string(),
            None => return Ok(None),
        };
        let ty = match head.as_str() {
            "real" => Some(Type::Real),
            "integer" => Some(Type::Integer),
            "logical" => Some(Type::Logical),
            "double" => Some(Type::Double),
            _ => None,
        };
        if let Some(ty) = ty {
            // Could be a function header handled elsewhere; here inside a
            // body it is a declaration — unless it is an assignment like
            // `real = 1` (we do not support variables named after types).
            c.bump();
            if head == "double" && c.peek_ident() == Some("precision") {
                c.bump();
            }
            let mut out = Vec::new();
            loop {
                let name = c.expect_ident("declared name")?;
                let name = self.sym(&name);
                let mut dims = Vec::new();
                if c.eat(&Tok::LParen) {
                    loop {
                        let e = self.parse_extent(c)?;
                        dims.push(e);
                        if c.eat(&Tok::RParen) {
                            break;
                        }
                        c.expect(&Tok::Comma)?;
                    }
                }
                out.push(Decl::Var {
                    ty,
                    name,
                    dims,
                    line: c.line,
                });
                if !c.eat(&Tok::Comma) {
                    break;
                }
            }
            c.expect_end()?;
            return Ok(Some(out));
        }
        if head == "parameter" {
            c.bump();
            c.expect(&Tok::LParen)?;
            let mut out = Vec::new();
            loop {
                let name = c.expect_ident("parameter name")?;
                let name = self.sym(&name);
                c.expect(&Tok::Assign)?;
                let value = self.parse_expr(c)?;
                out.push(Decl::Parameter {
                    name,
                    value,
                    line: c.line,
                });
                if c.eat(&Tok::RParen) {
                    break;
                }
                c.expect(&Tok::Comma)?;
            }
            c.expect_end()?;
            return Ok(Some(out));
        }
        if head == "decomposition" {
            c.bump();
            let mut out = Vec::new();
            loop {
                let name = c.expect_ident("decomposition name")?;
                let name = self.sym(&name);
                c.expect(&Tok::LParen)?;
                let mut dims = Vec::new();
                loop {
                    dims.push(self.parse_extent(c)?);
                    if c.eat(&Tok::RParen) {
                        break;
                    }
                    c.expect(&Tok::Comma)?;
                }
                out.push(Decl::Decomposition {
                    name,
                    dims,
                    line: c.line,
                });
                if !c.eat(&Tok::Comma) {
                    break;
                }
            }
            c.expect_end()?;
            return Ok(Some(out));
        }
        Ok(None)
    }

    fn parse_extent(&mut self, c: &mut Cursor) -> Result<Extent> {
        let first = self.parse_expr(c)?;
        if c.eat(&Tok::Colon) {
            let hi = self.parse_expr(c)?;
            Ok(Extent { lo: first, hi })
        } else {
            Ok(Extent {
                lo: Expr::int(1),
                hi: first,
            })
        }
    }

    /// Simple (non-block) statements.
    fn parse_simple_stmt(&mut self, c: &mut Cursor) -> Result<Stmt> {
        let line = c.line;
        let id = self.fresh_id();
        let head = c.peek_ident().map(str::to_string);
        let kind = match head.as_deref() {
            Some("call") => {
                c.bump();
                let name = c.expect_ident("callee")?;
                let name = self.sym(&name);
                let mut args = Vec::new();
                if c.eat(&Tok::LParen) && !c.eat(&Tok::RParen) {
                    loop {
                        args.push(self.parse_expr(c)?);
                        if c.eat(&Tok::RParen) {
                            break;
                        }
                        c.expect(&Tok::Comma)?;
                    }
                }
                c.expect_end()?;
                StmtKind::Call { name, args }
            }
            Some("return") => {
                c.bump();
                c.expect_end()?;
                StmtKind::Return
            }
            Some("continue") => {
                c.bump();
                c.expect_end()?;
                StmtKind::Continue
            }
            Some("stop") => {
                c.bump();
                // optional stop code ignored
                while c.peek().is_some() {
                    c.bump();
                }
                StmtKind::Stop
            }
            Some("print") => {
                c.bump();
                c.expect(&Tok::Star)?;
                let mut args = Vec::new();
                while c.eat(&Tok::Comma) {
                    if let Some(Tok::Str(_)) = c.peek() {
                        c.bump(); // strings are display-only; drop them
                        continue;
                    }
                    args.push(self.parse_expr(c)?);
                }
                c.expect_end()?;
                StmtKind::Print { args }
            }
            Some("align") => {
                c.bump();
                self.parse_align(c)?
            }
            Some("distribute") => {
                c.bump();
                self.parse_distribute(c)?
            }
            _ => {
                // Assignment: lvalue = expr.
                let name = c.expect_ident("statement")?;
                let base = self.sym(&name);
                let lhs = if c.eat(&Tok::LParen) {
                    let mut subs = Vec::new();
                    loop {
                        subs.push(self.parse_expr(c)?);
                        if c.eat(&Tok::RParen) {
                            break;
                        }
                        c.expect(&Tok::Comma)?;
                    }
                    LValue::Element { array: base, subs }
                } else {
                    LValue::Scalar(base)
                };
                c.expect(&Tok::Assign)?;
                let rhs = self.parse_expr(c)?;
                c.expect_end()?;
                StmtKind::Assign { lhs, rhs }
            }
        };
        Ok(Stmt { id, line, kind })
    }

    /// `ALIGN Y(i,j) WITH X(j,i)` or `ALIGN Y WITH X`.
    fn parse_align(&mut self, c: &mut Cursor) -> Result<StmtKind> {
        let array = c.expect_ident("aligned array")?;
        let array = self.sym(&array);
        let mut dummies: Vec<Sym> = Vec::new();
        if c.eat(&Tok::LParen) {
            loop {
                let d = c.expect_ident("alignment dummy")?;
                dummies.push(self.sym(&d));
                if c.eat(&Tok::RParen) {
                    break;
                }
                c.expect(&Tok::Comma)?;
            }
        }
        if c.peek_ident() != Some("with") {
            return Err(FrontendError::at(c.line, "expected WITH in ALIGN"));
        }
        c.bump();
        let target = c.expect_ident("alignment target")?;
        let target = self.sym(&target);
        let mut perm = Vec::new();
        let mut offset = Vec::new();
        if c.eat(&Tok::LParen) {
            // Target subscripts: each must be dummy [± const].
            let mut tsubs: Vec<(Sym, i64)> = Vec::new();
            loop {
                let d = c.expect_ident("target subscript")?;
                let d = self.sym(&d);
                let mut off = 0i64;
                if c.eat(&Tok::Plus) {
                    off = c.expect_int("alignment offset")?;
                } else if c.eat(&Tok::Minus) {
                    off = -c.expect_int("alignment offset")?;
                }
                tsubs.push((d, off));
                if c.eat(&Tok::RParen) {
                    break;
                }
                c.expect(&Tok::Comma)?;
            }
            // perm[d] = position of dummy d in target subs.
            for &dummy in &dummies {
                let pos = tsubs.iter().position(|&(s, _)| s == dummy).ok_or_else(|| {
                    FrontendError::at(c.line, "alignment dummy missing from target")
                })?;
                perm.push(pos);
                offset.push(tsubs[pos].1);
            }
        } else {
            // Identity alignment; rank checked by sema.
            perm = (0..dummies.len()).collect();
            offset = vec![0; perm.len()];
        }
        c.expect_end()?;
        Ok(StmtKind::Align {
            array,
            target,
            perm,
            offset,
        })
    }

    /// `DISTRIBUTE D(BLOCK, :)`.
    fn parse_distribute(&mut self, c: &mut Cursor) -> Result<StmtKind> {
        let target = c.expect_ident("distribute target")?;
        let target = self.sym(&target);
        c.expect(&Tok::LParen)?;
        let mut kinds = Vec::new();
        loop {
            match c.peek() {
                Some(Tok::Colon) => {
                    c.bump();
                    kinds.push(DistKind::Serial);
                }
                Some(Tok::Ident(w)) => {
                    let w = w.clone();
                    c.bump();
                    match w.as_str() {
                        "block" => {
                            if c.eat(&Tok::LParen) {
                                // BLOCK(k) treated as BLOCK_CYCLIC(k)? No —
                                // plain BLOCK takes no argument in Fortran D.
                                return Err(FrontendError::at(c.line, "BLOCK takes no argument"));
                            }
                            kinds.push(DistKind::Block);
                        }
                        "cyclic" => {
                            if c.eat(&Tok::LParen) {
                                let k = c.expect_int("CYCLIC block size")?;
                                c.expect(&Tok::RParen)?;
                                kinds.push(DistKind::BlockCyclic(k));
                            } else {
                                kinds.push(DistKind::Cyclic);
                            }
                        }
                        "block_cyclic" => {
                            c.expect(&Tok::LParen)?;
                            let k = c.expect_int("BLOCK_CYCLIC block size")?;
                            c.expect(&Tok::RParen)?;
                            kinds.push(DistKind::BlockCyclic(k));
                        }
                        other => {
                            return Err(FrontendError::at(
                                c.line,
                                format!("unknown distribution kind `{other}`"),
                            ))
                        }
                    }
                }
                _ => return Err(FrontendError::at(c.line, "expected distribution kind")),
            }
            if c.eat(&Tok::RParen) {
                break;
            }
            c.expect(&Tok::Comma)?;
        }
        c.expect_end()?;
        Ok(StmtKind::Distribute { target, kinds })
    }

    // ----- expressions ---------------------------------------------------

    fn parse_expr(&mut self, c: &mut Cursor) -> Result<Expr> {
        self.parse_or(c)
    }

    fn parse_or(&mut self, c: &mut Cursor) -> Result<Expr> {
        let mut l = self.parse_and(c)?;
        while c.eat(&Tok::Or) {
            let r = self.parse_and(c)?;
            l = Expr::Bin {
                op: BinOp::Or,
                l: Box::new(l),
                r: Box::new(r),
            };
        }
        Ok(l)
    }

    fn parse_and(&mut self, c: &mut Cursor) -> Result<Expr> {
        let mut l = self.parse_not(c)?;
        while c.eat(&Tok::And) {
            let r = self.parse_not(c)?;
            l = Expr::Bin {
                op: BinOp::And,
                l: Box::new(l),
                r: Box::new(r),
            };
        }
        Ok(l)
    }

    fn parse_not(&mut self, c: &mut Cursor) -> Result<Expr> {
        if c.eat(&Tok::Not) {
            let e = self.parse_not(c)?;
            return Ok(Expr::Un {
                op: UnOp::Not,
                e: Box::new(e),
            });
        }
        self.parse_rel(c)
    }

    fn parse_rel(&mut self, c: &mut Cursor) -> Result<Expr> {
        let l = self.parse_addsub(c)?;
        let op = match c.peek() {
            Some(Tok::Lt) => Some(BinOp::Lt),
            Some(Tok::Le) => Some(BinOp::Le),
            Some(Tok::Gt) => Some(BinOp::Gt),
            Some(Tok::Ge) => Some(BinOp::Ge),
            Some(Tok::EqEq) => Some(BinOp::Eq),
            Some(Tok::Ne) => Some(BinOp::Ne),
            _ => None,
        };
        match op {
            Some(op) => {
                c.bump();
                let r = self.parse_addsub(c)?;
                Ok(Expr::Bin {
                    op,
                    l: Box::new(l),
                    r: Box::new(r),
                })
            }
            None => Ok(l),
        }
    }

    fn parse_addsub(&mut self, c: &mut Cursor) -> Result<Expr> {
        let mut l = self.parse_muldiv(c)?;
        loop {
            let op = match c.peek() {
                Some(Tok::Plus) => BinOp::Add,
                Some(Tok::Minus) => BinOp::Sub,
                _ => break,
            };
            c.bump();
            let r = self.parse_muldiv(c)?;
            l = Expr::Bin {
                op,
                l: Box::new(l),
                r: Box::new(r),
            };
        }
        Ok(l)
    }

    fn parse_muldiv(&mut self, c: &mut Cursor) -> Result<Expr> {
        let mut l = self.parse_unary(c)?;
        loop {
            let op = match c.peek() {
                Some(Tok::Star) => BinOp::Mul,
                Some(Tok::Slash) => BinOp::Div,
                _ => break,
            };
            c.bump();
            let r = self.parse_unary(c)?;
            l = Expr::Bin {
                op,
                l: Box::new(l),
                r: Box::new(r),
            };
        }
        Ok(l)
    }

    fn parse_unary(&mut self, c: &mut Cursor) -> Result<Expr> {
        if c.eat(&Tok::Minus) {
            let e = self.parse_unary(c)?;
            return Ok(Expr::Un {
                op: UnOp::Neg,
                e: Box::new(e),
            });
        }
        if c.eat(&Tok::Plus) {
            return self.parse_unary(c);
        }
        self.parse_power(c)
    }

    fn parse_power(&mut self, c: &mut Cursor) -> Result<Expr> {
        let base = self.parse_primary(c)?;
        if c.eat(&Tok::Pow) {
            // Right associative.
            let exp = self.parse_unary(c)?;
            return Ok(Expr::Bin {
                op: BinOp::Pow,
                l: Box::new(base),
                r: Box::new(exp),
            });
        }
        Ok(base)
    }

    fn parse_primary(&mut self, c: &mut Cursor) -> Result<Expr> {
        match c.peek().cloned() {
            Some(Tok::Int(v)) => {
                c.bump();
                Ok(Expr::Int(v))
            }
            Some(Tok::Real(v)) => {
                c.bump();
                Ok(Expr::Real(v))
            }
            Some(Tok::True) => {
                c.bump();
                Ok(Expr::Logical(true))
            }
            Some(Tok::False) => {
                c.bump();
                Ok(Expr::Logical(false))
            }
            Some(Tok::LParen) => {
                c.bump();
                let e = self.parse_expr(c)?;
                c.expect(&Tok::RParen)?;
                Ok(e)
            }
            Some(Tok::Ident(name)) => {
                c.bump();
                let sym = self.sym(&name);
                if c.eat(&Tok::LParen) {
                    let mut subs = Vec::new();
                    if !c.eat(&Tok::RParen) {
                        loop {
                            subs.push(self.parse_expr(c)?);
                            if c.eat(&Tok::RParen) {
                                break;
                            }
                            c.expect(&Tok::Comma)?;
                        }
                    }
                    // Array reference vs function/intrinsic call is decided
                    // by sema; default to Element here.
                    Ok(Expr::Element { array: sym, subs })
                } else {
                    Ok(Expr::Var(sym))
                }
            }
            other => Err(FrontendError::at(
                c.line,
                format!("expected expression, found {other:?}"),
            )),
        }
    }
}

/// Token cursor over one line.
struct Cursor<'a> {
    toks: &'a [Tok],
    pos: usize,
    line: u32,
}

impl Cursor<'_> {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }
    fn peek_ident(&self) -> Option<&str> {
        match self.peek() {
            Some(Tok::Ident(s)) => Some(s.as_str()),
            _ => None,
        }
    }
    fn bump(&mut self) {
        self.pos += 1;
    }
    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == Some(t) {
            self.bump();
            true
        } else {
            false
        }
    }
    fn expect(&mut self, t: &Tok) -> Result<()> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(FrontendError::at(
                self.line,
                format!("expected {t:?}, found {:?}", self.peek()),
            ))
        }
    }
    fn expect_ident(&mut self, what: &str) -> Result<String> {
        match self.peek() {
            Some(Tok::Ident(s)) => {
                let s = s.clone();
                self.bump();
                Ok(s)
            }
            other => Err(FrontendError::at(
                self.line,
                format!("expected {what}, found {other:?}"),
            )),
        }
    }
    fn expect_int(&mut self, what: &str) -> Result<i64> {
        match self.peek() {
            Some(Tok::Int(v)) => {
                let v = *v;
                self.bump();
                Ok(v)
            }
            other => Err(FrontendError::at(
                self.line,
                format!("expected {what}, found {other:?}"),
            )),
        }
    }
    fn expect_end(&mut self) -> Result<()> {
        if self.pos == self.toks.len() {
            Ok(())
        } else {
            Err(FrontendError::at(
                self.line,
                format!("unexpected trailing tokens: {:?}", &self.toks[self.pos..]),
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG1: &str = r#"
      PROGRAM P1
      REAL X(100)
      PARAMETER (n$proc = 4)
      DISTRIBUTE X(BLOCK)
      do i = 1,95
        X(i) = 0.5 * X(i+5)
      enddo
      call F1(X)
      END
      SUBROUTINE F1(X)
      REAL X(100)
      do i = 1,95
        X(i) = 0.5 * X(i+5)
      enddo
      END
"#;

    #[test]
    fn parses_fig1_shape() {
        let p = parse_program(FIG1).unwrap();
        assert_eq!(p.units.len(), 2);
        assert_eq!(p.units[0].kind, UnitKind::Program);
        assert_eq!(p.units[1].kind, UnitKind::Subroutine);
        let main = &p.units[0];
        assert_eq!(main.decls.len(), 2); // X decl + parameter
                                         // Body: DISTRIBUTE, DO, CALL.
        assert_eq!(main.body.len(), 3);
        assert!(matches!(main.body[0].kind, StmtKind::Distribute { .. }));
        assert!(matches!(main.body[1].kind, StmtKind::Do { .. }));
        assert!(matches!(main.body[2].kind, StmtKind::Call { .. }));
    }

    #[test]
    fn do_loop_body_nested() {
        let p = parse_program(FIG1).unwrap();
        if let StmtKind::Do { body, .. } = &p.units[0].body[1].kind {
            assert_eq!(body.len(), 1);
            assert!(matches!(body[0].kind, StmtKind::Assign { .. }));
        } else {
            panic!("expected DO");
        }
    }

    #[test]
    fn labeled_do_with_continue() {
        let src = "
      SUBROUTINE S(a, n)
      REAL a(100)
      INTEGER n
      do 10 i = 1, n
        a(i) = 0.0
 10   continue
      END
";
        let p = parse_program(src).unwrap();
        let body = &p.units[0].body;
        assert_eq!(body.len(), 1);
        if let StmtKind::Do { body, .. } = &body[0].kind {
            assert_eq!(body.len(), 2); // assign + continue
        } else {
            panic!("expected DO, got {:?}", body[0].kind);
        }
    }

    #[test]
    fn shared_closing_label_closes_nested_loops() {
        let src = "
      SUBROUTINE S(a)
      REAL a(10,10)
      do 20 i = 1, 10
      do 20 j = 1, 10
        a(i,j) = 0.0
 20   continue
      END
";
        let p = parse_program(src).unwrap();
        assert_eq!(p.units[0].body.len(), 1);
        if let StmtKind::Do { body, .. } = &p.units[0].body[0].kind {
            assert_eq!(body.len(), 1);
            assert!(matches!(body[0].kind, StmtKind::Do { .. }));
        } else {
            panic!("expected outer DO");
        }
    }

    #[test]
    fn block_if_else() {
        let src = "
      SUBROUTINE S(x)
      REAL x(10)
      if (x(1) .gt. 0.0) then
        x(2) = 1.0
      else
        x(2) = 2.0
      endif
      END
";
        let p = parse_program(src).unwrap();
        if let StmtKind::If {
            then_body,
            else_body,
            ..
        } = &p.units[0].body[0].kind
        {
            assert_eq!(then_body.len(), 1);
            assert_eq!(else_body.len(), 1);
        } else {
            panic!("expected IF");
        }
    }

    #[test]
    fn logical_if_desugars() {
        let src = "
      SUBROUTINE S(x, p)
      REAL x(10)
      INTEGER p
      if (p .gt. 0) x(1) = 3.0
      END
";
        let p = parse_program(src).unwrap();
        if let StmtKind::If {
            then_body,
            else_body,
            ..
        } = &p.units[0].body[0].kind
        {
            assert_eq!(then_body.len(), 1);
            assert!(else_body.is_empty());
        } else {
            panic!("expected IF");
        }
    }

    #[test]
    fn align_with_transpose() {
        let src = "
      PROGRAM P
      REAL X(100,100), Y(100,100)
      ALIGN Y(i,j) with X(j,i)
      END
";
        let p = parse_program(src).unwrap();
        if let StmtKind::Align { perm, offset, .. } = &p.units[0].body[0].kind {
            assert_eq!(perm, &vec![1, 0]);
            assert_eq!(offset, &vec![0, 0]);
        } else {
            panic!("expected ALIGN");
        }
    }

    #[test]
    fn align_with_offset() {
        let src = "
      PROGRAM P
      REAL X(100)
      DECOMPOSITION D(110)
      ALIGN X(i) with D(i+10)
      END
";
        let p = parse_program(src).unwrap();
        if let StmtKind::Align { perm, offset, .. } = &p.units[0].body[0].kind {
            assert_eq!(perm, &vec![0]);
            assert_eq!(offset, &vec![10]);
        } else {
            panic!("expected ALIGN");
        }
    }

    #[test]
    fn distribute_kinds() {
        let src = "
      PROGRAM P
      REAL X(100,100)
      DISTRIBUTE X(BLOCK,:)
      DISTRIBUTE X(:,CYCLIC)
      DISTRIBUTE X(BLOCK_CYCLIC(4),:)
      DISTRIBUTE X(CYCLIC(8),:)
      END
";
        let p = parse_program(src).unwrap();
        let kinds = |i: usize| -> Vec<DistKind> {
            if let StmtKind::Distribute { kinds, .. } = &p.units[0].body[i].kind {
                kinds.clone()
            } else {
                panic!("expected DISTRIBUTE")
            }
        };
        assert_eq!(kinds(0), vec![DistKind::Block, DistKind::Serial]);
        assert_eq!(kinds(1), vec![DistKind::Serial, DistKind::Cyclic]);
        assert_eq!(kinds(2), vec![DistKind::BlockCyclic(4), DistKind::Serial]);
        assert_eq!(kinds(3), vec![DistKind::BlockCyclic(8), DistKind::Serial]);
    }

    #[test]
    fn decomposition_declaration() {
        let src = "
      PROGRAM P
      DECOMPOSITION D(100,100)
      END
";
        let p = parse_program(src).unwrap();
        assert!(matches!(p.units[0].decls[0], Decl::Decomposition { .. }));
    }

    #[test]
    fn expression_precedence() {
        let src = "
      PROGRAM P
      INTEGER x
      x = 1 + 2 * 3
      END
";
        let p = parse_program(src).unwrap();
        if let StmtKind::Assign { rhs, .. } = &p.units[0].body[0].kind {
            // 1 + (2*3)
            if let Expr::Bin {
                op: BinOp::Add, r, ..
            } = rhs
            {
                assert!(matches!(**r, Expr::Bin { op: BinOp::Mul, .. }));
            } else {
                panic!("expected Add at top");
            }
        }
    }

    #[test]
    fn min_call_parses_as_element() {
        let src = "
      PROGRAM P
      INTEGER x
      x = min((my$p+1)*25, 95)
      END
";
        let p = parse_program(src).unwrap();
        if let StmtKind::Assign { rhs, .. } = &p.units[0].body[0].kind {
            assert!(matches!(rhs, Expr::Element { subs, .. } if subs.len() == 2));
        }
    }

    #[test]
    fn unterminated_unit_errors() {
        assert!(parse_program("PROGRAM P\n x = 1\n").is_err());
    }

    #[test]
    fn enddo_without_do_errors() {
        assert!(parse_program("PROGRAM P\n enddo\n END").is_err());
    }

    #[test]
    fn call_without_args() {
        let p = parse_program("PROGRAM P\n call init\n END").unwrap();
        assert!(
            matches!(p.units[0].body[0].kind, StmtKind::Call { ref args, .. } if args.is_empty())
        );
    }

    #[test]
    fn print_statement() {
        let p = parse_program("PROGRAM P\n INTEGER i\n i = 1\n print *, 'x =', i\n END").unwrap();
        assert!(matches!(p.units[0].body[1].kind, StmtKind::Print { ref args } if args.len() == 1));
    }

    #[test]
    fn stmt_ids_are_unique() {
        let p = parse_program(FIG1).unwrap();
        let mut ids = std::collections::HashSet::new();
        for u in &p.units {
            for s in u.walk() {
                assert!(ids.insert(s.id), "duplicate id {:?}", s.id);
            }
        }
    }
}
