//! # fortrand-frontend
//!
//! Front end for the Fortran 77 + Fortran D subset the compiler accepts:
//!
//! * [`lexer`] — line-oriented tokenizer (case-insensitive keywords,
//!   `.LT.`-style and modern relational operators, `&` continuations,
//!   `C`/`!`/`*` comments).
//! * [`ast`] — the abstract syntax tree. Statements carry stable
//!   [`ast::StmtId`]s that analysis results are keyed on.
//! * [`parser`] — recursive-descent parser producing a [`ast::SourceProgram`].
//! * [`sema`] — semantic analysis: symbol tables, type checking, constant
//!   folding of `PARAMETER`s, array-extent resolution, call-arity checks,
//!   affine classification of subscripts, and the Fortran D legality rules
//!   (e.g. no dynamic decomposition of aliased variables, §6.4).
//!
//! The supported language is exactly what the paper's programs (Figures 1,
//! 4, 15), the dgefa case study and the benchmark generators need; see
//! DESIGN.md §2 for the subset argument.

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod sema;

pub use ast::{Decl, Expr, LValue, ProcUnit, SourceProgram, Stmt, StmtId, StmtKind, UnitKind};
pub use error::{FrontendError, Result};
pub use parser::parse_program;
pub use sema::{analyze, ProgramInfo};

/// Convenience: parse + analyze in one call.
pub fn load_program(source: &str) -> Result<(SourceProgram, ProgramInfo)> {
    let mut prog = parse_program(source)?;
    let info = analyze(&mut prog)?;
    Ok((prog, info))
}
