//! Semantic analysis.
//!
//! Builds per-unit symbol tables, folds `PARAMETER` constants, resolves
//! array extents, applies Fortran implicit typing to undeclared scalars,
//! disambiguates `name(…)` into array reference / intrinsic / user function
//! call (rewriting the AST in place), checks call arity against defined
//! units, validates Fortran D statements, and flags call-site aliasing
//! (needed for the §6.4 rule that aliased variables must not be dynamically
//! remapped).

use crate::ast::*;
use crate::error::{FrontendError, Result};
use fortrand_ir::dist::DistKind;
use fortrand_ir::{Affine, Sym};
use std::collections::BTreeMap;

/// Information about one declared (or implicitly declared) variable.
#[derive(Clone, Debug, PartialEq)]
pub struct VarInfo {
    /// Scalar type.
    pub ty: Type,
    /// Folded array extents (empty for scalars). Lower bounds are
    /// normalized to 1; a declared `a(0:n)` of extent `n+1` keeps `lo_off`.
    pub dims: Vec<i64>,
    /// Declared lower bounds (same length as `dims`), usually all 1.
    pub lower: Vec<i64>,
    /// True if the variable is a formal parameter of its unit.
    pub is_formal: bool,
}

impl VarInfo {
    /// Array rank (0 = scalar).
    pub fn rank(&self) -> usize {
        self.dims.len()
    }
    /// True for arrays.
    pub fn is_array(&self) -> bool {
        !self.dims.is_empty()
    }
}

/// A call site collected during analysis.
#[derive(Clone, Debug)]
pub struct CallSite {
    /// Statement id of the `CALL`.
    pub stmt: StmtId,
    /// Callee unit name.
    pub callee: Sym,
    /// Actual argument expressions.
    pub args: Vec<Expr>,
}

/// Per-unit analysis results.
#[derive(Clone, Debug, Default)]
pub struct UnitInfo {
    /// All variables (declared + implicit), keyed by symbol.
    pub vars: BTreeMap<Sym, VarInfo>,
    /// Folded `PARAMETER` constants.
    pub params: BTreeMap<Sym, i64>,
    /// Declared decompositions and their extents.
    pub decomps: BTreeMap<Sym, Vec<i64>>,
    /// Formal parameters in order.
    pub formals: Vec<Sym>,
    /// `CALL` sites in pre-order.
    pub calls: Vec<CallSite>,
    /// Variables that appear aliased at some call in this unit
    /// (same base passed through two actuals of one call).
    pub aliased_vars: Vec<Sym>,
}

impl UnitInfo {
    /// Looks up a variable.
    pub fn var(&self, s: Sym) -> Option<&VarInfo> {
        self.vars.get(&s)
    }
    /// True if `s` is an array here.
    pub fn is_array(&self, s: Sym) -> bool {
        self.vars.get(&s).map(|v| v.is_array()).unwrap_or(false)
    }
}

/// Whole-program analysis results.
#[derive(Clone, Debug, Default)]
pub struct ProgramInfo {
    /// Per-unit info, keyed by unit name.
    pub units: BTreeMap<Sym, UnitInfo>,
    /// Unit kinds, keyed by name (for callers that only have `ProgramInfo`).
    pub unit_kinds: BTreeMap<Sym, UnitKind>,
    /// Value of the `n$proc` parameter if declared anywhere.
    pub n_proc: Option<i64>,
}

impl ProgramInfo {
    /// Info for one unit.
    pub fn unit(&self, name: Sym) -> &UnitInfo {
        &self.units[&name]
    }
}

/// Runs semantic analysis, rewriting `Element` nodes that are actually
/// intrinsic or user-function calls.
pub fn analyze(prog: &mut SourceProgram) -> Result<ProgramInfo> {
    // Pass 0: unit name table.
    let mut unit_kinds: BTreeMap<Sym, UnitKind> = BTreeMap::new();
    let mut formal_counts: BTreeMap<Sym, usize> = BTreeMap::new();
    let mut n_programs = 0;
    for u in &prog.units {
        if unit_kinds.insert(u.name, u.kind).is_some() {
            return Err(FrontendError::at(
                u.line,
                format!("duplicate unit `{}`", prog.interner.name(u.name)),
            ));
        }
        formal_counts.insert(u.name, u.formals.len());
        if u.kind == UnitKind::Program {
            n_programs += 1;
        }
    }
    if n_programs > 1 {
        return Err(FrontendError::at(0, "more than one PROGRAM unit"));
    }

    let mut info = ProgramInfo {
        unit_kinds: unit_kinds.clone(),
        ..Default::default()
    };

    for u in &mut prog.units {
        let ui = analyze_unit(u, &prog.interner, &unit_kinds, &formal_counts)?;
        if let Some(&np) = ui
            .params
            .get(&prog.interner.get("n$proc").unwrap_or(Sym(u32::MAX)))
        {
            info.n_proc = Some(np);
        }
        info.units.insert(u.name, ui);
    }
    Ok(info)
}

fn implicit_type(name: &str) -> Type {
    match name.chars().next() {
        Some(c) if ('i'..='n').contains(&c) => Type::Integer,
        _ => Type::Real,
    }
}

fn analyze_unit(
    u: &mut ProcUnit,
    interner: &fortrand_ir::Interner,
    unit_kinds: &BTreeMap<Sym, UnitKind>,
    formal_counts: &BTreeMap<Sym, usize>,
) -> Result<UnitInfo> {
    let mut ui = UnitInfo {
        formals: u.formals.clone(),
        ..Default::default()
    };

    // Parameters first (extents may reference them).
    for d in &u.decls {
        if let Decl::Parameter { name, value, line } = d {
            let v = fold_const(value, &ui.params).ok_or_else(|| {
                FrontendError::at(
                    *line,
                    "PARAMETER value must be an integer constant expression",
                )
            })?;
            ui.params.insert(*name, v);
        }
    }

    // Declared variables and decompositions.
    for d in &u.decls {
        match d {
            Decl::Var {
                ty,
                name,
                dims,
                line,
            } => {
                let mut extents = Vec::new();
                let mut lower = Vec::new();
                for e in dims {
                    let lo = fold_const(&e.lo, &ui.params)
                        .ok_or_else(|| FrontendError::at(*line, "array bound must be constant"))?;
                    let hi = fold_const(&e.hi, &ui.params)
                        .ok_or_else(|| FrontendError::at(*line, "array bound must be constant"))?;
                    if hi < lo {
                        return Err(FrontendError::at(
                            *line,
                            "array upper bound below lower bound",
                        ));
                    }
                    extents.push(hi - lo + 1);
                    lower.push(lo);
                }
                let is_formal = u.formals.contains(name);
                if ui
                    .vars
                    .insert(
                        *name,
                        VarInfo {
                            ty: *ty,
                            dims: extents,
                            lower,
                            is_formal,
                        },
                    )
                    .is_some()
                {
                    return Err(FrontendError::at(
                        *line,
                        format!("duplicate declaration of `{}`", interner.name(*name)),
                    ));
                }
            }
            Decl::Decomposition { name, dims, line } => {
                let mut extents = Vec::new();
                for e in dims {
                    let lo = fold_const(&e.lo, &ui.params).ok_or_else(|| {
                        FrontendError::at(*line, "decomposition bound must be constant")
                    })?;
                    let hi = fold_const(&e.hi, &ui.params).ok_or_else(|| {
                        FrontendError::at(*line, "decomposition bound must be constant")
                    })?;
                    if lo != 1 {
                        return Err(FrontendError::at(
                            *line,
                            "decomposition lower bounds must be 1",
                        ));
                    }
                    extents.push(hi);
                }
                ui.decomps.insert(*name, extents);
            }
            Decl::Parameter { .. } => {}
        }
    }

    // Undeclared formals become implicitly-typed scalars.
    for &f in &u.formals {
        ui.vars.entry(f).or_insert_with(|| VarInfo {
            ty: implicit_type(interner.name(f)),
            dims: vec![],
            lower: vec![],
            is_formal: true,
        });
    }

    // Walk and rewrite the body.
    let mut ctx = UnitCtx {
        ui: &mut ui,
        interner,
        unit_kinds,
        formal_counts,
    };
    rewrite_body(&mut u.body, &mut ctx)?;

    Ok(ui)
}

struct UnitCtx<'a> {
    ui: &'a mut UnitInfo,
    interner: &'a fortrand_ir::Interner,
    unit_kinds: &'a BTreeMap<Sym, UnitKind>,
    formal_counts: &'a BTreeMap<Sym, usize>,
}

impl UnitCtx<'_> {
    fn declare_implicit(&mut self, s: Sym) {
        let name = self.interner.name(s);
        self.ui.vars.entry(s).or_insert_with(|| VarInfo {
            ty: implicit_type(name),
            dims: vec![],
            lower: vec![],
            is_formal: false,
        });
    }
}

fn rewrite_body(body: &mut [Stmt], ctx: &mut UnitCtx) -> Result<()> {
    for s in body.iter_mut() {
        let line = s.line;
        let sid = s.id;
        match &mut s.kind {
            StmtKind::Assign { lhs, rhs } => {
                rewrite_expr(rhs, ctx, line)?;
                match lhs {
                    LValue::Scalar(v) => {
                        if ctx.ui.params.contains_key(v) {
                            return Err(FrontendError::at(line, "assignment to PARAMETER"));
                        }
                        if ctx.ui.is_array(*v) {
                            return Err(FrontendError::at(
                                line,
                                format!(
                                    "whole-array assignment to `{}` is not supported",
                                    ctx.interner.name(*v)
                                ),
                            ));
                        }
                        ctx.declare_implicit(*v);
                    }
                    LValue::Element { array, subs } => {
                        for sub in subs.iter_mut() {
                            rewrite_expr(sub, ctx, line)?;
                        }
                        let vi = ctx.ui.vars.get(array).ok_or_else(|| {
                            FrontendError::at(
                                line,
                                format!(
                                    "assignment to undeclared array `{}`",
                                    ctx.interner.name(*array)
                                ),
                            )
                        })?;
                        if !vi.is_array() {
                            return Err(FrontendError::at(
                                line,
                                format!(
                                    "`{}` subscripted but is a scalar",
                                    ctx.interner.name(*array)
                                ),
                            ));
                        }
                        if vi.rank() != subs.len() {
                            return Err(FrontendError::at(
                                line,
                                format!(
                                    "`{}` has rank {}, got {} subscripts",
                                    ctx.interner.name(*array),
                                    vi.rank(),
                                    subs.len()
                                ),
                            ));
                        }
                    }
                }
            }
            StmtKind::Do {
                var,
                lo,
                hi,
                step,
                body,
            } => {
                ctx.declare_implicit(*var);
                rewrite_expr(lo, ctx, line)?;
                rewrite_expr(hi, ctx, line)?;
                if let Some(st) = step {
                    rewrite_expr(st, ctx, line)?;
                }
                rewrite_body(body, ctx)?;
            }
            StmtKind::If {
                cond,
                then_body,
                else_body,
            } => {
                rewrite_expr(cond, ctx, line)?;
                rewrite_body(then_body, ctx)?;
                rewrite_body(else_body, ctx)?;
            }
            StmtKind::Call { name, args } => {
                match ctx.unit_kinds.get(name) {
                    Some(UnitKind::Subroutine) => {}
                    Some(_) => {
                        return Err(FrontendError::at(
                            line,
                            format!("`{}` is not a subroutine", ctx.interner.name(*name)),
                        ))
                    }
                    None => {
                        return Err(FrontendError::at(
                            line,
                            format!(
                                "call to undefined subroutine `{}`",
                                ctx.interner.name(*name)
                            ),
                        ))
                    }
                }
                let expected = ctx.formal_counts[name];
                if *ctx.formal_counts.get(name).unwrap() != args.len() {
                    return Err(FrontendError::at(
                        line,
                        format!(
                            "`{}` expects {} argument(s), got {}",
                            ctx.interner.name(*name),
                            expected,
                            args.len()
                        ),
                    ));
                }
                for a in args.iter_mut() {
                    rewrite_expr(a, ctx, line)?;
                }
                // Alias detection: same base variable in two actuals.
                let mut bases: Vec<Sym> = Vec::new();
                for a in args.iter() {
                    match a {
                        Expr::Var(v) => bases.push(*v),
                        Expr::Element { array, .. } => bases.push(*array),
                        _ => {}
                    }
                }
                bases.sort();
                for w in bases.windows(2) {
                    if w[0] == w[1] && !ctx.ui.aliased_vars.contains(&w[0]) {
                        ctx.ui.aliased_vars.push(w[0]);
                    }
                }
                ctx.ui.calls.push(CallSite {
                    stmt: sid,
                    callee: *name,
                    args: args.clone(),
                });
            }
            StmtKind::Align {
                array,
                target,
                perm,
                offset,
            } => {
                let arr_rank = ctx
                    .ui
                    .vars
                    .get(array)
                    .filter(|v| v.is_array())
                    .map(|v| v.rank())
                    .ok_or_else(|| {
                        FrontendError::at(
                            line,
                            format!("ALIGN of non-array `{}`", ctx.interner.name(*array)),
                        )
                    })?;
                let tgt_rank = if let Some(d) = ctx.ui.decomps.get(target) {
                    d.len()
                } else if let Some(v) = ctx.ui.vars.get(target).filter(|v| v.is_array()) {
                    v.rank()
                } else {
                    return Err(FrontendError::at(
                        line,
                        format!(
                            "ALIGN target `{}` is neither decomposition nor array",
                            ctx.interner.name(*target)
                        ),
                    ));
                };
                if perm.is_empty() {
                    // `ALIGN A with B`: identity.
                    *perm = (0..arr_rank).collect();
                    *offset = vec![0; arr_rank];
                }
                if perm.len() != arr_rank {
                    return Err(FrontendError::at(
                        line,
                        "ALIGN dummy count differs from array rank",
                    ));
                }
                if perm.iter().any(|&p| p >= tgt_rank) {
                    return Err(FrontendError::at(line, "ALIGN maps past target rank"));
                }
            }
            StmtKind::Distribute { target, kinds } => {
                let tgt_rank = if let Some(d) = ctx.ui.decomps.get(target) {
                    d.len()
                } else if let Some(v) = ctx.ui.vars.get(target).filter(|v| v.is_array()) {
                    v.rank()
                } else {
                    return Err(FrontendError::at(
                        line,
                        format!(
                            "DISTRIBUTE target `{}` is neither decomposition nor array",
                            ctx.interner.name(*target)
                        ),
                    ));
                };
                if kinds.len() != tgt_rank {
                    return Err(FrontendError::at(
                        line,
                        "DISTRIBUTE kind count differs from rank",
                    ));
                }
                if let Some(DistKind::BlockCyclic(k)) = kinds
                    .iter()
                    .find(|k| matches!(k, DistKind::BlockCyclic(v) if *v < 1))
                {
                    return Err(FrontendError::at(
                        line,
                        format!("bad BLOCK_CYCLIC size {k:?}"),
                    ));
                }
            }
            StmtKind::Print { args } => {
                for a in args.iter_mut() {
                    rewrite_expr(a, ctx, line)?;
                }
            }
            StmtKind::Return | StmtKind::Continue | StmtKind::Stop => {}
        }
    }
    Ok(())
}

/// Rewrites one expression bottom-up: disambiguates `Element` into array
/// reference, intrinsic, or user-function call, and implicitly declares
/// mentioned scalars.
fn rewrite_expr(e: &mut Expr, ctx: &mut UnitCtx, line: u32) -> Result<()> {
    match e {
        Expr::Int(_) | Expr::Real(_) | Expr::Logical(_) => Ok(()),
        Expr::Var(v) => {
            if !ctx.ui.params.contains_key(v) {
                ctx.declare_implicit(*v);
            }
            Ok(())
        }
        Expr::Bin { l, r, .. } => {
            rewrite_expr(l, ctx, line)?;
            rewrite_expr(r, ctx, line)
        }
        Expr::Un { e, .. } => rewrite_expr(e, ctx, line),
        Expr::Intrinsic { args, .. } | Expr::FuncCall { args, .. } => {
            for a in args.iter_mut() {
                rewrite_expr(a, ctx, line)?;
            }
            Ok(())
        }
        Expr::Element { array, subs } => {
            for s in subs.iter_mut() {
                rewrite_expr(s, ctx, line)?;
            }
            let name_str = ctx.interner.name(*array).to_string();
            if let Some(vi) = ctx.ui.vars.get(array) {
                if vi.is_array() {
                    if vi.rank() != subs.len() {
                        return Err(FrontendError::at(
                            line,
                            format!(
                                "`{}` has rank {}, got {} subscripts",
                                name_str,
                                vi.rank(),
                                subs.len()
                            ),
                        ));
                    }
                    return Ok(());
                }
                // declared scalar subscripted: if it's also a unit name,
                // fall through; else error.
                if !ctx.unit_kinds.contains_key(array) {
                    return Err(FrontendError::at(
                        line,
                        format!("scalar `{name_str}` used with subscripts"),
                    ));
                }
            }
            // Intrinsic?
            if let Some(intr) = Intrinsic::from_name(&name_str) {
                let args = std::mem::take(subs);
                *e = Expr::Intrinsic { name: intr, args };
                return Ok(());
            }
            // User function?
            if let Some(UnitKind::Function(_)) = ctx.unit_kinds.get(array) {
                let expected = ctx.formal_counts[array];
                if expected != subs.len() {
                    return Err(FrontendError::at(
                        line,
                        format!(
                            "function `{name_str}` expects {expected} argument(s), got {}",
                            subs.len()
                        ),
                    ));
                }
                let args = std::mem::take(subs);
                let name = *array;
                *e = Expr::FuncCall { name, args };
                return Ok(());
            }
            Err(FrontendError::at(
                line,
                format!("`{name_str}` is not an array, intrinsic, or defined function"),
            ))
        }
    }
}

/// Folds an integer-constant expression using `params`.
pub fn fold_const(e: &Expr, params: &BTreeMap<Sym, i64>) -> Option<i64> {
    match e {
        Expr::Int(v) => Some(*v),
        Expr::Var(s) => params.get(s).copied(),
        Expr::Un { op: UnOp::Neg, e } => Some(-fold_const(e, params)?),
        Expr::Bin { op, l, r } => {
            let a = fold_const(l, params)?;
            let b = fold_const(r, params)?;
            Some(match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Div => {
                    if b == 0 {
                        return None;
                    }
                    a / b
                }
                BinOp::Pow => {
                    if b < 0 {
                        return None;
                    }
                    a.pow(b.min(31) as u32)
                }
                _ => return None,
            })
        }
        _ => None,
    }
}

/// Lowers an expression into the affine domain, folding `params`.
/// Returns `None` for non-affine expressions.
pub fn expr_affine(e: &Expr, params: &BTreeMap<Sym, i64>) -> Option<Affine> {
    match e {
        Expr::Int(v) => Some(Affine::konst(*v)),
        Expr::Var(s) => match params.get(s) {
            Some(&v) => Some(Affine::konst(v)),
            None => Some(Affine::sym(*s)),
        },
        Expr::Un { op: UnOp::Neg, e } => Some(-expr_affine(e, params)?),
        Expr::Bin { op, l, r } => {
            let a = expr_affine(l, params)?;
            let b = expr_affine(r, params)?;
            match op {
                BinOp::Add => Some(a + b),
                BinOp::Sub => Some(a - b),
                BinOp::Mul => {
                    if let Some(c) = a.as_const() {
                        Some(b.scale(c))
                    } else {
                        b.as_const().map(|c| a.scale(c))
                    }
                }
                BinOp::Div => {
                    let c = b.as_const()?;
                    let av = a.as_const()?;
                    if c == 0 {
                        None
                    } else {
                        Some(Affine::konst(av / c))
                    }
                }
                _ => None,
            }
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn load(src: &str) -> (SourceProgram, ProgramInfo) {
        let mut p = parse_program(src).unwrap();
        let info = analyze(&mut p).unwrap();
        (p, info)
    }

    fn load_err(src: &str) -> FrontendError {
        let mut p = parse_program(src).unwrap();
        analyze(&mut p).unwrap_err()
    }

    const FIG1: &str = r#"
      PROGRAM P1
      REAL X(100)
      PARAMETER (n$proc = 4)
      DISTRIBUTE X(BLOCK)
      do i = 1,95
        X(i) = 0.5 * X(i+5)
      enddo
      call F1(X)
      END
      SUBROUTINE F1(X)
      REAL X(100)
      do i = 1,95
        X(i) = 0.5 * X(i+5)
      enddo
      END
"#;

    #[test]
    fn fig1_analyzes() {
        let (p, info) = load(FIG1);
        let main = p.main_unit().unwrap();
        let ui = info.unit(main.name);
        let x = p.interner.get("x").unwrap();
        assert_eq!(ui.var(x).unwrap().dims, vec![100]);
        assert_eq!(info.n_proc, Some(4));
        // Implicit loop index i is an integer scalar.
        let i = p.interner.get("i").unwrap();
        assert_eq!(ui.var(i).unwrap().ty, Type::Integer);
        assert_eq!(ui.calls.len(), 1);
    }

    #[test]
    fn parameter_folding_in_extents() {
        let (p, info) = load(
            "
      PROGRAM P
      PARAMETER (n = 50)
      REAL A(n, 2*n)
      A(1,1) = 0.0
      END
",
        );
        let a = p.interner.get("a").unwrap();
        let main = p.main_unit().unwrap();
        assert_eq!(info.unit(main.name).var(a).unwrap().dims, vec![50, 100]);
    }

    #[test]
    fn intrinsic_rewrite() {
        let (p, _) = load(
            "
      PROGRAM P
      INTEGER u
      u = min(3, 5)
      END
",
        );
        if let StmtKind::Assign { rhs, .. } = &p.units[0].body[0].kind {
            assert!(matches!(
                rhs,
                Expr::Intrinsic {
                    name: Intrinsic::Min,
                    ..
                }
            ));
        } else {
            panic!()
        }
    }

    #[test]
    fn function_call_rewrite() {
        let (p, _) = load(
            "
      PROGRAM P
      REAL y
      y = f(2.0)
      END
      REAL FUNCTION f(x)
      REAL x
      f = x + 1.0
      END
",
        );
        if let StmtKind::Assign { rhs, .. } = &p.units[0].body[0].kind {
            assert!(matches!(rhs, Expr::FuncCall { .. }));
        } else {
            panic!()
        }
    }

    #[test]
    fn unknown_function_rejected() {
        let e = load_err(
            "
      PROGRAM P
      REAL y
      y = g(2.0)
      END
",
        );
        assert!(e.message.contains("not an array"), "{e}");
    }

    #[test]
    fn rank_mismatch_rejected() {
        let e = load_err(
            "
      PROGRAM P
      REAL A(10,10)
      A(1) = 0.0
      END
",
        );
        assert!(e.message.contains("rank"), "{e}");
    }

    #[test]
    fn call_arity_checked() {
        let e = load_err(
            "
      PROGRAM P
      call s(1)
      END
      SUBROUTINE s(a, b)
      INTEGER a, b
      END
",
        );
        assert!(e.message.contains("expects 2"), "{e}");
    }

    #[test]
    fn undefined_subroutine_rejected() {
        let e = load_err(
            "
      PROGRAM P
      call nosuch(1)
      END
",
        );
        assert!(e.message.contains("undefined subroutine"), "{e}");
    }

    #[test]
    fn alias_at_call_detected() {
        let (p, info) = load(
            "
      PROGRAM P
      REAL X(10)
      call s(X, X)
      END
      SUBROUTINE s(a, b)
      REAL a(10), b(10)
      END
",
        );
        let x = p.interner.get("x").unwrap();
        let main = p.main_unit().unwrap();
        assert_eq!(info.unit(main.name).aliased_vars, vec![x]);
    }

    #[test]
    fn distribute_rank_checked() {
        let e = load_err(
            "
      PROGRAM P
      REAL X(100,100)
      DISTRIBUTE X(BLOCK)
      END
",
        );
        assert!(e.message.contains("kind count"), "{e}");
    }

    #[test]
    fn align_transpose_rank_checked() {
        let (p, _) = load(
            "
      PROGRAM P
      REAL X(100,100), Y(100,100)
      ALIGN Y(i,j) with X(j,i)
      DISTRIBUTE X(BLOCK,:)
      END
",
        );
        assert!(matches!(p.units[0].body[0].kind, StmtKind::Align { .. }));
    }

    #[test]
    fn assignment_to_parameter_rejected() {
        let e = load_err(
            "
      PROGRAM P
      PARAMETER (n = 4)
      n = 5
      END
",
        );
        assert!(e.message.contains("PARAMETER"), "{e}");
    }

    #[test]
    fn expr_affine_lowering() {
        let (p, info) = load(
            "
      PROGRAM P
      PARAMETER (n = 10)
      INTEGER k
      k = 2*n + 3
      END
",
        );
        let main = p.main_unit().unwrap();
        let params = &info.unit(main.name).params;
        if let StmtKind::Assign { rhs, .. } = &p.units[0].body[0].kind {
            let a = expr_affine(rhs, params).unwrap();
            assert_eq!(a.as_const(), Some(23));
        }
    }

    #[test]
    fn expr_affine_symbolic() {
        let (p, _) = load(
            "
      PROGRAM P
      INTEGER k, i
      i = 1
      k = 3*i - 2
      END
",
        );
        if let StmtKind::Assign { rhs, .. } = &p.units[0].body[1].kind {
            let a = expr_affine(rhs, &BTreeMap::new()).unwrap();
            let i = p.interner.get("i").unwrap();
            assert_eq!(a.coeff(i), 3);
            assert_eq!(a.constant(), -2);
        }
    }

    #[test]
    fn nonaffine_returns_none() {
        let (p, _) = load(
            "
      PROGRAM P
      INTEGER k, i, j
      i = 1
      j = 2
      k = i*j
      END
",
        );
        if let StmtKind::Assign { rhs, .. } = &p.units[0].body[2].kind {
            assert!(expr_affine(rhs, &BTreeMap::new()).is_none());
        }
    }

    #[test]
    fn duplicate_unit_rejected() {
        let e = load_err(
            "
      SUBROUTINE s
      END
      SUBROUTINE s
      END
",
        );
        assert!(e.message.contains("duplicate unit"), "{e}");
    }

    #[test]
    fn lower_bound_declarations() {
        let (p, info) = load(
            "
      PROGRAM P
      REAL A(0:9)
      A(0) = 1.0
      END
",
        );
        let a = p.interner.get("a").unwrap();
        let main = p.main_unit().unwrap();
        let vi = info.unit(main.name).var(a).unwrap().clone();
        assert_eq!(vi.dims, vec![10]);
        assert_eq!(vi.lower, vec![0]);
    }
}
