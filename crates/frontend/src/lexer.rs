//! Line-oriented lexer.
//!
//! Fortran is statement-per-line; the lexer produces one token vector per
//! logical line (after gluing `&` continuations), together with the source
//! line number and any numeric statement label. Keywords are *not*
//! distinguished here — Fortran has no reserved words — so the parser
//! decides contextually whether `do` starts a loop or names a variable.

use crate::error::{FrontendError, Result};

/// One token.
#[derive(Clone, Debug, PartialEq)]
pub enum Tok {
    /// Identifier or keyword, lower-cased. May contain `$` (compiler names).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Real literal (both `E` and `D` exponents).
    Real(f64),
    /// String literal (single-quoted).
    Str(String),
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `**`
    Pow,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `=` (assignment / PARAMETER binding)
    Assign,
    /// `:`
    Colon,
    /// `.lt.` or `<`
    Lt,
    /// `.le.` or `<=`
    Le,
    /// `.gt.` or `>`
    Gt,
    /// `.ge.` or `>=`
    Ge,
    /// `.eq.` or `==`
    EqEq,
    /// `.ne.` or `/=`
    Ne,
    /// `.and.`
    And,
    /// `.or.`
    Or,
    /// `.not.`
    Not,
    /// `.true.`
    True,
    /// `.false.`
    False,
}

/// One logical source line of tokens.
#[derive(Clone, Debug, PartialEq)]
pub struct Line {
    /// 1-based source line number (of the first physical line).
    pub number: u32,
    /// Optional numeric statement label.
    pub label: Option<u32>,
    /// The tokens.
    pub toks: Vec<Tok>,
}

/// Lexes a whole source file into logical lines.
pub fn lex(source: &str) -> Result<Vec<Line>> {
    // Glue continuations and strip comments first.
    let mut logical: Vec<(u32, String)> = Vec::new();
    for (idx, raw) in source.lines().enumerate() {
        let lineno = idx as u32 + 1;
        let trimmed = raw.trim_start();
        // Whole-line comments: blank, C/c/* in column 1 style, or '!'
        if trimmed.is_empty() {
            continue;
        }
        // Column-1 comment markers: `*` always; `C`/`c` only when followed
        // by whitespace or nothing (so `CALL` in column 1 stays code).
        let mut chars = raw.chars();
        let first = chars.next().unwrap();
        let second = chars.next();
        if first == '*'
            || ((first == 'C' || first == 'c')
                && second.map(|c| c == ' ' || c == '\t').unwrap_or(true))
            || trimmed.starts_with('!')
        {
            continue;
        }
        // Trailing '!' comment (we have no strings containing '!').
        let mut text = match raw.find('!') {
            Some(p) => &raw[..p],
            None => raw,
        }
        .trim_end()
        .to_string();
        // Continuation: previous line ended with '&'.
        let continues_prev = logical
            .last()
            .map(|(_, t)| t.ends_with('&'))
            .unwrap_or(false);
        if continues_prev {
            let (_, prev) = logical.last_mut().unwrap();
            prev.pop(); // drop '&'
            prev.push(' ');
            prev.push_str(text.trim_start());
        } else {
            // Leading '&' style continuation also accepted.
            if let Some(stripped) = text.strip_prefix('&') {
                if let Some((_, prev)) = logical.last_mut() {
                    prev.push(' ');
                    prev.push_str(stripped.trim_start());
                    continue;
                }
            }
            logical.push((lineno, std::mem::take(&mut text)));
        }
    }

    let mut out = Vec::with_capacity(logical.len());
    for (lineno, text) in logical {
        let mut toks = lex_line(&text, lineno)?;
        // Leading integer label.
        let label = match toks.first() {
            Some(Tok::Int(v)) if *v >= 0 => {
                let v = *v as u32;
                toks.remove(0);
                Some(v)
            }
            _ => None,
        };
        if toks.is_empty() {
            continue;
        }
        out.push(Line {
            number: lineno,
            label,
            toks,
        });
    }
    Ok(out)
}

fn lex_line(text: &str, lineno: u32) -> Result<Vec<Tok>> {
    let b: Vec<char> = text.chars().collect();
    let n = b.len();
    let mut i = 0;
    let mut toks = Vec::new();
    while i < n {
        let c = b[i];
        match c {
            ' ' | '\t' | '\r' => i += 1,
            '+' => {
                toks.push(Tok::Plus);
                i += 1;
            }
            '-' => {
                toks.push(Tok::Minus);
                i += 1;
            }
            '*' => {
                if i + 1 < n && b[i + 1] == '*' {
                    toks.push(Tok::Pow);
                    i += 2;
                } else {
                    toks.push(Tok::Star);
                    i += 1;
                }
            }
            '/' => {
                if i + 1 < n && b[i + 1] == '=' {
                    toks.push(Tok::Ne);
                    i += 2;
                } else {
                    toks.push(Tok::Slash);
                    i += 1;
                }
            }
            '(' => {
                toks.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                toks.push(Tok::RParen);
                i += 1;
            }
            ',' => {
                toks.push(Tok::Comma);
                i += 1;
            }
            ':' => {
                toks.push(Tok::Colon);
                i += 1;
            }
            '<' => {
                if i + 1 < n && b[i + 1] == '=' {
                    toks.push(Tok::Le);
                    i += 2;
                } else {
                    toks.push(Tok::Lt);
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < n && b[i + 1] == '=' {
                    toks.push(Tok::Ge);
                    i += 2;
                } else {
                    toks.push(Tok::Gt);
                    i += 1;
                }
            }
            '=' => {
                if i + 1 < n && b[i + 1] == '=' {
                    toks.push(Tok::EqEq);
                    i += 2;
                } else {
                    toks.push(Tok::Assign);
                    i += 1;
                }
            }
            '\'' => {
                let start = i + 1;
                let mut j = start;
                while j < n && b[j] != '\'' {
                    j += 1;
                }
                if j >= n {
                    return Err(FrontendError::at(lineno, "unterminated string literal"));
                }
                toks.push(Tok::Str(b[start..j].iter().collect()));
                i = j + 1;
            }
            '.' => {
                // Dotted operator (.lt. etc) or a real literal like `.5`.
                if i + 1 < n && b[i + 1].is_ascii_alphabetic() {
                    let start = i + 1;
                    let mut j = start;
                    while j < n && b[j].is_ascii_alphabetic() {
                        j += 1;
                    }
                    if j < n && b[j] == '.' {
                        let word: String = b[start..j].iter().collect::<String>().to_lowercase();
                        let tok = match word.as_str() {
                            "lt" => Tok::Lt,
                            "le" => Tok::Le,
                            "gt" => Tok::Gt,
                            "ge" => Tok::Ge,
                            "eq" => Tok::EqEq,
                            "ne" => Tok::Ne,
                            "and" => Tok::And,
                            "or" => Tok::Or,
                            "not" => Tok::Not,
                            "true" => Tok::True,
                            "false" => Tok::False,
                            _ => {
                                return Err(FrontendError::at(
                                    lineno,
                                    format!("unknown dotted operator `.{word}.`"),
                                ))
                            }
                        };
                        toks.push(tok);
                        i = j + 1;
                        continue;
                    }
                }
                // Real literal starting with '.'
                if i + 1 < n && b[i + 1].is_ascii_digit() {
                    let (tok, len) = lex_number(&b[i..], lineno)?;
                    toks.push(tok);
                    i += len;
                } else {
                    return Err(FrontendError::at(lineno, "stray `.`"));
                }
            }
            c if c.is_ascii_digit() => {
                let (tok, len) = lex_number(&b[i..], lineno)?;
                toks.push(tok);
                i += len;
            }
            c if c.is_ascii_alphabetic() || c == '_' || c == '$' => {
                let start = i;
                let mut j = i;
                while j < n && (b[j].is_ascii_alphanumeric() || b[j] == '_' || b[j] == '$') {
                    j += 1;
                }
                let word: String = b[start..j].iter().collect::<String>().to_lowercase();
                toks.push(Tok::Ident(word));
                i = j;
            }
            other => {
                return Err(FrontendError::at(
                    lineno,
                    format!("unexpected character `{other}`"),
                ));
            }
        }
    }
    Ok(toks)
}

/// Lexes a numeric literal starting at `b[0]`; returns the token and length
/// consumed. Handles the `1.eq.2` ambiguity by refusing to absorb a `.`
/// that begins a dotted operator.
fn lex_number(b: &[char], lineno: u32) -> Result<(Tok, usize)> {
    let n = b.len();
    let mut j = 0;
    while j < n && b[j].is_ascii_digit() {
        j += 1;
    }
    let mut is_real = false;
    if j < n && b[j] == '.' {
        // Is this `.lt.`-style? Look ahead: letters then '.'.
        let mut k = j + 1;
        while k < n && b[k].is_ascii_alphabetic() {
            k += 1;
        }
        let dotted_op = k > j + 1 && k < n && b[k] == '.';
        if !dotted_op {
            is_real = true;
            j += 1;
            while j < n && b[j].is_ascii_digit() {
                j += 1;
            }
        }
    }
    // Exponent: e/d [+/-] digits.
    if j < n && matches!(b[j], 'e' | 'E' | 'd' | 'D') {
        let mut k = j + 1;
        if k < n && (b[k] == '+' || b[k] == '-') {
            k += 1;
        }
        if k < n && b[k].is_ascii_digit() {
            is_real = true;
            j = k;
            while j < n && b[j].is_ascii_digit() {
                j += 1;
            }
        }
    }
    let text: String = b[..j].iter().collect();
    if is_real {
        let norm = text.to_lowercase().replace('d', "e");
        norm.parse::<f64>()
            .map(|v| (Tok::Real(v), j))
            .map_err(|_| FrontendError::at(lineno, format!("bad real literal `{text}`")))
    } else {
        text.parse::<i64>()
            .map(|v| (Tok::Int(v), j))
            .map_err(|_| FrontendError::at(lineno, format!("bad integer literal `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        let lines = lex(src).unwrap();
        assert_eq!(lines.len(), 1, "expected one logical line");
        lines[0].toks.clone()
    }

    #[test]
    fn simple_assignment() {
        assert_eq!(
            toks("x(i) = f(i+5)"),
            vec![
                Tok::Ident("x".into()),
                Tok::LParen,
                Tok::Ident("i".into()),
                Tok::RParen,
                Tok::Assign,
                Tok::Ident("f".into()),
                Tok::LParen,
                Tok::Ident("i".into()),
                Tok::Plus,
                Tok::Int(5),
                Tok::RParen,
            ]
        );
    }

    #[test]
    fn dotted_operators() {
        assert_eq!(
            toks("if (my$p .gt. 0 .and. j .ne. k)"),
            vec![
                Tok::Ident("if".into()),
                Tok::LParen,
                Tok::Ident("my$p".into()),
                Tok::Gt,
                Tok::Int(0),
                Tok::And,
                Tok::Ident("j".into()),
                Tok::Ne,
                Tok::Ident("k".into()),
                Tok::RParen,
            ]
        );
    }

    #[test]
    fn modern_relationals() {
        assert_eq!(
            toks("a <= b >= c == d /= e < f > g"),
            vec![
                Tok::Ident("a".into()),
                Tok::Le,
                Tok::Ident("b".into()),
                Tok::Ge,
                Tok::Ident("c".into()),
                Tok::EqEq,
                Tok::Ident("d".into()),
                Tok::Ne,
                Tok::Ident("e".into()),
                Tok::Lt,
                Tok::Ident("f".into()),
                Tok::Gt,
                Tok::Ident("g".into()),
            ]
        );
    }

    #[test]
    fn number_then_dotted_op() {
        // `1.eq.2` must lex as Int(1) EqEq Int(2), not Real(1.0) …
        assert_eq!(toks("if (1.eq.2)")[2], Tok::Int(1));
        assert_eq!(toks("if (1.eq.2)")[3], Tok::EqEq);
    }

    #[test]
    fn real_literals() {
        assert_eq!(
            toks("x = 1.5e2"),
            vec![Tok::Ident("x".into()), Tok::Assign, Tok::Real(150.0)]
        );
        assert_eq!(toks("x = 1.0d0")[2], Tok::Real(1.0));
        assert_eq!(toks("x = .5")[2], Tok::Real(0.5));
        assert_eq!(toks("x = 2.")[2], Tok::Real(2.0));
        assert_eq!(toks("x = 1e3")[2], Tok::Real(1000.0));
    }

    #[test]
    fn comments_skipped() {
        let lines = lex("C a comment\n! another\n* old style\n  x = 1 ! trailing\n").unwrap();
        assert_eq!(lines.len(), 1);
        assert_eq!(
            lines[0].toks,
            vec![Tok::Ident("x".into()), Tok::Assign, Tok::Int(1)]
        );
        assert_eq!(lines[0].number, 4);
    }

    #[test]
    fn continuation_lines_glued() {
        let lines = lex("x = 1 + &\n    2\n").unwrap();
        assert_eq!(lines.len(), 1);
        assert_eq!(
            lines[0].toks,
            vec![
                Tok::Ident("x".into()),
                Tok::Assign,
                Tok::Int(1),
                Tok::Plus,
                Tok::Int(2)
            ]
        );
    }

    #[test]
    fn labels_extracted() {
        let lines = lex("10 continue").unwrap();
        assert_eq!(lines[0].label, Some(10));
        assert_eq!(lines[0].toks, vec![Tok::Ident("continue".into())]);
    }

    #[test]
    fn case_insensitive_identifiers() {
        assert_eq!(toks("CALL F1(X)")[0], Tok::Ident("call".into()));
        assert_eq!(toks("CALL F1(X)")[1], Tok::Ident("f1".into()));
    }

    #[test]
    fn power_operator() {
        assert_eq!(toks("y = x ** 2")[3], Tok::Pow);
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(lex("print *, 'oops").is_err());
    }

    #[test]
    fn logical_literals() {
        assert_eq!(toks("p = .true.")[2], Tok::True);
        assert_eq!(toks("p = .false.")[2], Tok::False);
    }
}
