//! Abstract syntax tree for the Fortran 77 + Fortran D subset.
//!
//! Every statement carries a program-unique [`StmtId`]; analyses key their
//! facts (reaching decompositions, iteration sets, dependence edges, …) on
//! these ids so the tree itself stays immutable through the pipeline.

use fortrand_ir::dist::DistKind;
use fortrand_ir::{Interner, Sym};

/// Program-unique statement identifier (also identifies call sites).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct StmtId(pub u32);

/// A whole source file: one or more program units sharing an interner.
#[derive(Debug, Clone)]
pub struct SourceProgram {
    /// Units in source order; the main `PROGRAM` unit may appear anywhere.
    pub units: Vec<ProcUnit>,
    /// Interner for all identifiers in the program.
    pub interner: Interner,
}

impl SourceProgram {
    /// Finds a unit by name.
    pub fn unit(&self, name: Sym) -> Option<&ProcUnit> {
        self.units.iter().find(|u| u.name == name)
    }

    /// Finds the main program unit.
    pub fn main_unit(&self) -> Option<&ProcUnit> {
        self.units.iter().find(|u| u.kind == UnitKind::Program)
    }

    /// Name lookup helper (panics if the symbol is foreign).
    pub fn name(&self, s: Sym) -> &str {
        self.interner.name(s)
    }
}

/// What kind of program unit this is.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum UnitKind {
    /// `PROGRAM name`.
    Program,
    /// `SUBROUTINE name(args)`.
    Subroutine,
    /// `type FUNCTION name(args)`.
    Function(Type),
}

/// A program unit: main program, subroutine or function.
#[derive(Debug, Clone)]
pub struct ProcUnit {
    /// Unit kind.
    pub kind: UnitKind,
    /// Unit name.
    pub name: Sym,
    /// Formal parameters in order.
    pub formals: Vec<Sym>,
    /// Declarations in source order.
    pub decls: Vec<Decl>,
    /// Executable statements.
    pub body: Vec<Stmt>,
    /// 1-based line of the unit header.
    pub line: u32,
}

impl ProcUnit {
    /// Iterates over every statement in the body, recursively, in source
    /// (pre-) order.
    pub fn walk(&self) -> StmtWalker<'_> {
        StmtWalker {
            stack: self.body.iter().rev().collect(),
        }
    }
}

/// Pre-order statement iterator (see [`ProcUnit::walk`]).
pub struct StmtWalker<'a> {
    stack: Vec<&'a Stmt>,
}

impl<'a> Iterator for StmtWalker<'a> {
    type Item = &'a Stmt;
    fn next(&mut self) -> Option<&'a Stmt> {
        let s = self.stack.pop()?;
        match &s.kind {
            StmtKind::Do { body, .. } => {
                self.stack.extend(body.iter().rev());
            }
            StmtKind::If {
                then_body,
                else_body,
                ..
            } => {
                self.stack.extend(else_body.iter().rev());
                self.stack.extend(then_body.iter().rev());
            }
            _ => {}
        }
        Some(s)
    }
}

/// Scalar types.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Type {
    /// `INTEGER`.
    Integer,
    /// `REAL`.
    Real,
    /// `DOUBLE PRECISION`.
    Double,
    /// `LOGICAL`.
    Logical,
}

/// One declared array extent: `lo:hi` (Fortran default `lo = 1`).
/// Bounds may reference `PARAMETER` names; sema folds them to constants.
#[derive(Clone, Debug, PartialEq)]
pub struct Extent {
    /// Lower bound expression (default literal 1).
    pub lo: Expr,
    /// Upper bound expression.
    pub hi: Expr,
}

/// Declarations.
#[derive(Clone, Debug)]
pub enum Decl {
    /// `REAL X(100,100)`, `INTEGER n` — one entry per declared name.
    Var {
        /// Declared type.
        ty: Type,
        /// Name.
        name: Sym,
        /// Array extents (empty for scalars).
        dims: Vec<Extent>,
        /// Source line.
        line: u32,
    },
    /// `PARAMETER (name = value)`.
    Parameter {
        /// Constant name.
        name: Sym,
        /// Value expression (must fold to an integer constant).
        value: Expr,
        /// Source line.
        line: u32,
    },
    /// `DECOMPOSITION D(100,100)`.
    Decomposition {
        /// Decomposition name.
        name: Sym,
        /// Extents.
        dims: Vec<Extent>,
        /// Source line.
        line: u32,
    },
}

/// An executable statement.
#[derive(Clone, Debug)]
pub struct Stmt {
    /// Program-unique id.
    pub id: StmtId,
    /// 1-based source line.
    pub line: u32,
    /// The statement proper.
    pub kind: StmtKind,
}

/// Statement kinds.
#[derive(Clone, Debug)]
pub enum StmtKind {
    /// `lhs = rhs`.
    Assign {
        /// Assignment target.
        lhs: LValue,
        /// Right-hand side.
        rhs: Expr,
    },
    /// `DO var = lo, hi [, step] … ENDDO`.
    Do {
        /// Loop index variable.
        var: Sym,
        /// Lower bound.
        lo: Expr,
        /// Upper bound (inclusive).
        hi: Expr,
        /// Step (None ⇒ 1).
        step: Option<Expr>,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `IF (cond) THEN … [ELSE …] ENDIF` (logical IF is desugared to this).
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_body: Vec<Stmt>,
        /// Else branch (possibly empty).
        else_body: Vec<Stmt>,
    },
    /// `CALL name(args)`.
    Call {
        /// Callee.
        name: Sym,
        /// Actual arguments.
        args: Vec<Expr>,
    },
    /// `RETURN`.
    Return,
    /// `CONTINUE` (no-op).
    Continue,
    /// `STOP`.
    Stop,
    /// `ALIGN array(i,j) WITH target(j,i+off)` — executable in Fortran D.
    Align {
        /// Array being (re)aligned.
        array: Sym,
        /// Decomposition or array aligned with.
        target: Sym,
        /// `perm[d]` = target dimension that array dimension `d` maps to.
        perm: Vec<usize>,
        /// Constant offsets per array dimension.
        offset: Vec<i64>,
    },
    /// `DISTRIBUTE target(BLOCK,:)` — executable in Fortran D.
    Distribute {
        /// Decomposition (or directly-distributed array).
        target: Sym,
        /// Per-dimension mapping.
        kinds: Vec<DistKind>,
    },
    /// `PRINT *, args` — executes as a no-op on non-zero ranks.
    Print {
        /// Items to print.
        args: Vec<Expr>,
    },
}

/// Assignment targets.
#[derive(Clone, Debug, PartialEq)]
pub enum LValue {
    /// Scalar variable.
    Scalar(Sym),
    /// Array element.
    Element {
        /// Array name.
        array: Sym,
        /// Subscript expressions.
        subs: Vec<Expr>,
    },
}

impl LValue {
    /// The defined variable.
    pub fn base(&self) -> Sym {
        match self {
            LValue::Scalar(s) => *s,
            LValue::Element { array, .. } => *array,
        }
    }
}

/// Binary operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[allow(missing_docs)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Pow,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    And,
    Or,
}

impl BinOp {
    /// True for `< ≤ > ≥ = ≠`.
    pub fn is_relational(self) -> bool {
        matches!(
            self,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne
        )
    }
    /// True for `.AND.` / `.OR.`.
    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }
}

/// Unary operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[allow(missing_docs)]
pub enum UnOp {
    Neg,
    Not,
}

/// Recognized intrinsic functions.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[allow(missing_docs)]
pub enum Intrinsic {
    Abs,
    Min,
    Max,
    Mod,
    Sqrt,
    Sign,
    Dble,
    Float,
    Int,
}

impl Intrinsic {
    /// Maps a (lower-case) source name to the intrinsic.
    pub fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "abs" | "dabs" => Intrinsic::Abs,
            "min" | "min0" | "amin1" | "dmin1" => Intrinsic::Min,
            "max" | "max0" | "amax1" | "dmax1" => Intrinsic::Max,
            "mod" => Intrinsic::Mod,
            "sqrt" | "dsqrt" => Intrinsic::Sqrt,
            "sign" | "dsign" => Intrinsic::Sign,
            "dble" => Intrinsic::Dble,
            "float" | "real" => Intrinsic::Float,
            "int" => Intrinsic::Int,
            _ => return None,
        })
    }
}

/// Expressions.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Real(f64),
    /// Logical literal (`.TRUE.` / `.FALSE.`).
    Logical(bool),
    /// Scalar variable reference (or whole-array actual argument).
    Var(Sym),
    /// Array element reference.
    Element {
        /// Array name.
        array: Sym,
        /// Subscripts.
        subs: Vec<Expr>,
    },
    /// Binary operation.
    Bin {
        /// Operator.
        op: BinOp,
        /// Left operand.
        l: Box<Expr>,
        /// Right operand.
        r: Box<Expr>,
    },
    /// Unary operation.
    Un {
        /// Operator.
        op: UnOp,
        /// Operand.
        e: Box<Expr>,
    },
    /// Intrinsic call.
    Intrinsic {
        /// Which intrinsic.
        name: Intrinsic,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// User function call (resolved from `Element` by sema when the base
    /// name is a declared `FUNCTION`).
    FuncCall {
        /// Callee.
        name: Sym,
        /// Arguments.
        args: Vec<Expr>,
    },
}

impl Expr {
    /// Integer literal helper.
    pub fn int(v: i64) -> Expr {
        Expr::Int(v)
    }

    /// Walks the expression tree, calling `f` on every node.
    pub fn visit(&self, f: &mut dyn FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Element { subs, .. } => {
                for s in subs {
                    s.visit(f);
                }
            }
            Expr::Bin { l, r, .. } => {
                l.visit(f);
                r.visit(f);
            }
            Expr::Un { e, .. } => e.visit(f),
            Expr::Intrinsic { args, .. } | Expr::FuncCall { args, .. } => {
                for a in args {
                    a.visit(f);
                }
            }
            _ => {}
        }
    }

    /// Collects every variable/array symbol mentioned.
    pub fn mentioned_syms(&self, out: &mut Vec<Sym>) {
        self.visit(&mut |e| match e {
            Expr::Var(s) => out.push(*s),
            Expr::Element { array, .. } => out.push(*array),
            Expr::FuncCall { name, .. } => out.push(*name),
            _ => {}
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walker_visits_nested_statements_in_order() {
        let mk = |id: u32, kind: StmtKind| Stmt {
            id: StmtId(id),
            line: 0,
            kind,
        };
        let inner = mk(2, StmtKind::Continue);
        let loop_stmt = mk(
            1,
            StmtKind::Do {
                var: Sym(0),
                lo: Expr::int(1),
                hi: Expr::int(10),
                step: None,
                body: vec![inner],
            },
        );
        let tail = mk(3, StmtKind::Return);
        let unit = ProcUnit {
            kind: UnitKind::Subroutine,
            name: Sym(1),
            formals: vec![],
            decls: vec![],
            body: vec![loop_stmt, tail],
            line: 1,
        };
        let ids: Vec<u32> = unit.walk().map(|s| s.id.0).collect();
        assert_eq!(ids, vec![1, 2, 3]);
    }

    #[test]
    fn mentioned_syms_collects_all() {
        let e = Expr::Bin {
            op: BinOp::Add,
            l: Box::new(Expr::Var(Sym(5))),
            r: Box::new(Expr::Element {
                array: Sym(6),
                subs: vec![Expr::Var(Sym(7))],
            }),
        };
        let mut out = vec![];
        e.mentioned_syms(&mut out);
        assert_eq!(out, vec![Sym(5), Sym(6), Sym(7)]);
    }

    #[test]
    fn intrinsic_names_resolve() {
        assert_eq!(Intrinsic::from_name("dabs"), Some(Intrinsic::Abs));
        assert_eq!(Intrinsic::from_name("min"), Some(Intrinsic::Min));
        assert_eq!(Intrinsic::from_name("nosuch"), None);
    }
}
