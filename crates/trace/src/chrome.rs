//! Chrome trace-event format validation.
//!
//! The core workspace's JSON module deliberately rejects floats (it
//! round-trips hashes and counts), but Chrome traces carry float
//! timestamps — so this module has its own small JSON parser, used to
//! check that an exported trace is well-formed *and* structurally a
//! trace-event document: a top-level `{"traceEvents": [...]}` whose
//! entries each carry `name`/`ph`/`ts`/`pid`/`tid` with the right types,
//! `ph` drawn from the phases we emit, `dur` on complete events, and
//! balanced B/E pairs per `(pid, tid)` track.

use std::collections::BTreeMap;
use std::collections::HashMap;

/// Minimal JSON value (floats allowed, unlike the core crate's parser).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as f64).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object (key order normalized).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    fn type_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Num(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }
}

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("json error at byte {}: {msg}", self.i)
    }

    fn skip_ws(&mut self) {
        while self.i < self.s.len() && self.s[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.s.get(self.i).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'n') => self.lit("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.s[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.i += 1;
        }
        if self.peek() == Some(b'.') {
            self.i += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.i += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        let text = std::str::from_utf8(&self.s[start..self.i]).map_err(|_| self.err("utf8"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.i + 4 >= self.s.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.s[self.i + 1..self.i + 5])
                                .map_err(|_| self.err("utf8 in \\u"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                            self.i += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Consume one full UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.s[self.i..])
                        .map_err(|_| self.err("invalid utf8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.i += 1;
                }
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.i += 1;
                }
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Parses a complete JSON document (floats allowed).
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        s: text.as_bytes(),
        i: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.i != p.s.len() {
        return Err(p.err("trailing content"));
    }
    Ok(v)
}

fn get<'a>(obj: &'a BTreeMap<String, Json>, key: &str, idx: usize) -> Result<&'a Json, String> {
    obj.get(key)
        .ok_or_else(|| format!("event {idx}: missing \"{key}\""))
}

fn num(v: &Json, key: &str, idx: usize) -> Result<f64, String> {
    match v {
        Json::Num(n) => Ok(*n),
        other => Err(format!(
            "event {idx}: \"{key}\" must be a number, got {}",
            other.type_name()
        )),
    }
}

fn string<'a>(v: &'a Json, key: &str, idx: usize) -> Result<&'a str, String> {
    match v {
        Json::Str(s) => Ok(s),
        other => Err(format!(
            "event {idx}: \"{key}\" must be a string, got {}",
            other.type_name()
        )),
    }
}

/// Summary of a validated trace, for quick assertions in tests and the
/// `tables --trace` self-check.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceSummary {
    /// Total events, including metadata.
    pub events: usize,
    /// Complete ("X") + matched B/E span count.
    pub spans: usize,
    /// Instant ("i") event count.
    pub instants: usize,
    /// Counter ("C") sample count.
    pub counters: usize,
    /// Distinct `(pid, tid)` tracks carrying non-metadata events, in
    /// order of first appearance.
    pub tracks: Vec<(i64, i64)>,
    /// Nonblocking post events (`post_send`/`post_recv`/`post_bcast`).
    pub posts: usize,
    /// Nonblocking completion events (`wait_send`/`wait_recv`/`wait_bcast`).
    pub waits: usize,
}

/// Validates `text` as a Chrome trace-event document and returns a
/// summary. Checks JSON well-formedness, the `traceEvents` envelope,
/// per-event required fields and types, known phases, `dur` on "X"
/// events, and that every "B" has a matching "E" per `(pid, tid)` track.
///
/// Nonblocking-communication events are checked for pairing discipline
/// per track: a `wait_send`/`wait_bcast` may never appear before its
/// matching post on the same track (events per track are in emission
/// order), and every posted send/broadcast must be waited for by the end
/// of the trace — an in-flight operation left open at exit is a bug in
/// the overlap transformation, not a rendering choice.
pub fn validate(text: &str) -> Result<TraceSummary, String> {
    let root = parse_json(text)?;
    let obj = match root {
        Json::Obj(o) => o,
        other => {
            return Err(format!(
                "top level must be an object, got {}",
                other.type_name()
            ))
        }
    };
    let events = match obj.get("traceEvents") {
        Some(Json::Arr(a)) => a,
        Some(other) => {
            return Err(format!(
                "\"traceEvents\" must be an array, got {}",
                other.type_name()
            ))
        }
        None => return Err("missing \"traceEvents\"".to_string()),
    };
    let mut summary = TraceSummary {
        events: events.len(),
        ..TraceSummary::default()
    };
    let mut open: HashMap<(i64, i64), Vec<String>> = HashMap::new();
    let mut tracks: Vec<(i64, i64)> = Vec::new();
    // Outstanding posted sends / broadcasts per track (post − wait).
    let mut in_flight: HashMap<(i64, i64), (i64, i64)> = HashMap::new();
    for (idx, ev) in events.iter().enumerate() {
        let e = match ev {
            Json::Obj(o) => o,
            other => {
                return Err(format!(
                    "event {idx}: must be an object, got {}",
                    other.type_name()
                ))
            }
        };
        let name = string(get(e, "name", idx)?, "name", idx)?.to_string();
        let ph = string(get(e, "ph", idx)?, "ph", idx)?;
        let ts = num(get(e, "ts", idx)?, "ts", idx)?;
        if !ts.is_finite() || ts < 0.0 {
            return Err(format!("event {idx}: non-finite or negative ts {ts}"));
        }
        let pid = num(get(e, "pid", idx)?, "pid", idx)? as i64;
        let tid = num(get(e, "tid", idx)?, "tid", idx)? as i64;
        let track = (pid, tid);
        if ph != "M" && ph != "E" {
            match name.as_str() {
                "post_send" | "post_recv" | "post_bcast" => {
                    summary.posts += 1;
                    let fl = in_flight.entry(track).or_default();
                    match name.as_str() {
                        "post_send" => fl.0 += 1,
                        "post_bcast" => fl.1 += 1,
                        _ => {}
                    }
                }
                "wait_send" | "wait_recv" | "wait_bcast" => {
                    summary.waits += 1;
                    let fl = in_flight.entry(track).or_default();
                    let outstanding = match name.as_str() {
                        "wait_send" => {
                            fl.0 -= 1;
                            fl.0
                        }
                        "wait_bcast" => {
                            fl.1 -= 1;
                            fl.1
                        }
                        _ => 0,
                    };
                    if outstanding < 0 {
                        return Err(format!(
                            "event {idx}: track {pid}.{tid} has \"{name}\" with no \
                             matching post"
                        ));
                    }
                }
                _ => {}
            }
        }
        match ph {
            "B" => {
                open.entry(track).or_default().push(name);
                if !tracks.contains(&track) {
                    tracks.push(track);
                }
            }
            "E" => {
                let stack = open.entry(track).or_default();
                match stack.pop() {
                    Some(opened) => {
                        if opened != name {
                            return Err(format!(
                                "event {idx}: track {pid}.{tid} closes \"{name}\" but \
                                 \"{opened}\" is open"
                            ));
                        }
                        summary.spans += 1;
                    }
                    None => {
                        return Err(format!(
                            "event {idx}: track {pid}.{tid} has \"E\" with no open span"
                        ))
                    }
                }
            }
            "X" => {
                let dur = num(get(e, "dur", idx)?, "dur", idx)?;
                if !dur.is_finite() || dur < 0.0 {
                    return Err(format!("event {idx}: bad dur {dur}"));
                }
                summary.spans += 1;
                if !tracks.contains(&track) {
                    tracks.push(track);
                }
            }
            "i" => {
                summary.instants += 1;
                if !tracks.contains(&track) {
                    tracks.push(track);
                }
            }
            "C" => {
                summary.counters += 1;
                if !tracks.contains(&track) {
                    tracks.push(track);
                }
            }
            "M" => {}
            other => return Err(format!("event {idx}: unknown phase \"{other}\"")),
        }
    }
    for ((pid, tid), stack) in &open {
        if let Some(name) = stack.last() {
            return Err(format!("track {pid}.{tid}: span \"{name}\" never closed"));
        }
    }
    for ((pid, tid), (sends, bcasts)) in &in_flight {
        if *sends != 0 || *bcasts != 0 {
            return Err(format!(
                "track {pid}.{tid}: {sends} posted send(s) and {bcasts} posted \
                 broadcast(s) still in flight at end of trace"
            ));
        }
    }
    summary.tracks = tracks;
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_floats_and_nesting() {
        let v = parse_json(r#"{"a":[1,2.5,-3e2],"b":{"c":null,"d":true}}"#).unwrap();
        match v {
            Json::Obj(o) => {
                assert_eq!(
                    o["a"],
                    Json::Arr(vec![Json::Num(1.0), Json::Num(2.5), Json::Num(-300.0)])
                );
            }
            _ => panic!("not an object"),
        }
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("{\"a\":1} x").is_err());
    }

    #[test]
    fn validates_minimal_trace() {
        let s = validate(
            r#"{"traceEvents":[
                {"name":"compile","cat":"driver","ph":"B","ts":0,"pid":1,"tid":0},
                {"name":"solve","cat":"solve","ph":"X","ts":1.5,"dur":2.5,"pid":1,"tid":0},
                {"name":"compile","cat":"driver","ph":"E","ts":10,"pid":1,"tid":0},
                {"name":"send","cat":"msg","ph":"i","ts":3,"pid":2,"tid":1,"s":"t"},
                {"name":"thread_name","ph":"M","ts":0,"pid":2,"tid":1,"args":{"name":"rank 1"}}
            ]}"#,
        )
        .unwrap();
        assert_eq!(s.spans, 2);
        assert_eq!(s.instants, 1);
        assert_eq!(s.tracks.len(), 2);
        assert_eq!(s.events, 5);
    }

    #[test]
    fn rejects_unbalanced_spans() {
        let err = validate(r#"{"traceEvents":[{"name":"a","ph":"B","ts":0,"pid":1,"tid":0}]}"#)
            .unwrap_err();
        assert!(err.contains("never closed"), "{err}");
        let err = validate(
            r#"{"traceEvents":[
                {"name":"a","ph":"B","ts":0,"pid":1,"tid":0},
                {"name":"b","ph":"E","ts":1,"pid":1,"tid":0}
            ]}"#,
        )
        .unwrap_err();
        assert!(err.contains("closes"), "{err}");
    }

    #[test]
    fn counts_and_pairs_post_wait_events() {
        let s = validate(
            r#"{"traceEvents":[
                {"name":"post_send","cat":"msg","ph":"X","ts":0,"dur":1,"pid":2,"tid":0},
                {"name":"wait_send","cat":"msg","ph":"i","ts":5,"pid":2,"tid":0},
                {"name":"post_bcast","cat":"coll","ph":"i","ts":6,"pid":2,"tid":1},
                {"name":"wait_bcast","cat":"coll","ph":"X","ts":9,"dur":2,"pid":2,"tid":1}
            ]}"#,
        )
        .unwrap();
        assert_eq!(s.posts, 2);
        assert_eq!(s.waits, 2);
    }

    #[test]
    fn rejects_wait_before_post() {
        let err = validate(
            r#"{"traceEvents":[
                {"name":"wait_bcast","cat":"coll","ph":"X","ts":0,"dur":1,"pid":2,"tid":0}
            ]}"#,
        )
        .unwrap_err();
        assert!(
            err.contains("no \u{22}wait_bcast\u{22}") || err.contains("matching post"),
            "{err}"
        );
    }

    #[test]
    fn rejects_unwaited_post() {
        let err = validate(
            r#"{"traceEvents":[
                {"name":"post_send","cat":"msg","ph":"X","ts":0,"dur":1,"pid":2,"tid":0}
            ]}"#,
        )
        .unwrap_err();
        assert!(err.contains("in flight"), "{err}");
    }

    #[test]
    fn rejects_missing_fields() {
        let err = validate(r#"{"traceEvents":[{"name":"a","ph":"X","ts":0,"pid":1,"tid":0}]}"#)
            .unwrap_err();
        assert!(err.contains("dur"), "{err}");
        let err = validate(r#"{"traceEvents":[{"ph":"i","ts":0,"pid":1,"tid":0}]}"#).unwrap_err();
        assert!(err.contains("name"), "{err}");
    }
}
