//! # fortrand-trace
//!
//! Zero-cost-when-off structured tracing for the Fortran D compiler and
//! the machine simulator. The whole stack — driver phases, dataflow
//! solves, per-unit code generation (including the wavefront-parallel
//! schedule), communication-optimizer passes, incremental cache
//! decisions, and the simulated machine's per-rank execution and message
//! traffic — reports into one [`Trace`] handle, which forwards events to
//! a pluggable [`TraceSink`].
//!
//! Two timebases share one timeline, separated by Chrome-trace *process*
//! ids:
//!
//! * [`PID_COMPILE`] — host wall-clock microseconds since the trace was
//!   created. Compilation spans live here; `tid` is 0 for the driver
//!   thread and `1 + worker` for wavefront codegen workers.
//! * [`PID_MACHINE`] — *simulated* microseconds (the machine's virtual
//!   clocks). Per-rank execution slices and message events live here;
//!   `tid` is the rank.
//!
//! A disabled handle ([`Trace::off`], the default everywhere) is a
//! `None`: every recording method starts with one branch and returns, so
//! the traced-off path stays unmeasurable and — because tracing is pure
//! observation — compiled programs and simulated results are byte-for-byte
//! identical with tracing on or off (asserted by `tests/trace.rs`).
//!
//! Exporters ([`sink`]): [`MemorySink`] (inspection + golden span trees),
//! [`JsonLinesSink`] (one JSON object per line), and [`ChromeTraceSink`]
//! (the Chrome trace-event format, loadable in `chrome://tracing` or
//! Perfetto; validated by [`chrome::validate`]).

pub mod chrome;
pub mod sink;

pub use sink::{ChromeTraceSink, JsonLinesSink, MemorySink, TraceSink};

use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Chrome-trace process id for compilation events (wall-clock timebase).
pub const PID_COMPILE: u32 = 1;
/// Chrome-trace process id for simulated-machine events (virtual-clock
/// timebase).
pub const PID_MACHINE: u32 = 2;

/// One argument value attached to an event.
#[derive(Clone, Debug, PartialEq)]
pub enum Arg {
    /// Integer.
    I(i64),
    /// Float.
    F(f64),
    /// String.
    S(String),
}

impl From<i64> for Arg {
    fn from(v: i64) -> Arg {
        Arg::I(v)
    }
}
impl From<usize> for Arg {
    fn from(v: usize) -> Arg {
        Arg::I(v as i64)
    }
}
impl From<u64> for Arg {
    fn from(v: u64) -> Arg {
        Arg::I(v as i64)
    }
}
impl From<f64> for Arg {
    fn from(v: f64) -> Arg {
        Arg::F(v)
    }
}
impl From<&str> for Arg {
    fn from(v: &str) -> Arg {
        Arg::S(v.to_string())
    }
}
impl From<String> for Arg {
    fn from(v: String) -> Arg {
        Arg::S(v)
    }
}

/// Event arguments: small ordered key/value list (rendered as the Chrome
/// `args` object).
pub type Args = Vec<(&'static str, Arg)>;

/// Event kind, mirroring the Chrome trace-event phases we emit.
#[derive(Clone, Debug, PartialEq)]
pub enum Phase {
    /// Span open (`ph: "B"`).
    Begin,
    /// Span close (`ph: "E"`).
    End,
    /// Self-contained span with a duration (`ph: "X"`).
    Complete {
        /// Span duration in µs (same timebase as `ts_us`).
        dur_us: f64,
    },
    /// Point event (`ph: "i"`).
    Instant,
    /// Counter sample (`ph: "C"`); the value rides in `args`.
    Counter,
    /// Track-name metadata (`ph: "M"`); the name is the track label.
    Meta,
}

/// One trace event.
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    /// Event (or span, or counter) name.
    pub name: String,
    /// Category tag (`cat` in Chrome traces), e.g. `"driver"`, `"solve"`,
    /// `"codegen"`, `"comm-opt"`, `"incremental"`, `"vm"`, `"msg"`.
    pub cat: &'static str,
    /// Process id: [`PID_COMPILE`] or [`PID_MACHINE`].
    pub pid: u32,
    /// Track within the process (worker index or rank).
    pub tid: u32,
    /// Timestamp in µs (wall for compile, simulated for machine).
    pub ts_us: f64,
    /// Event kind.
    pub phase: Phase,
    /// Attached key/value arguments.
    pub args: Args,
}

struct Inner {
    sink: Mutex<Box<dyn TraceSink + Send>>,
    t0: Instant,
}

/// Cheap clonable tracing handle. [`Trace::off`] (the [`Default`]) is
/// disabled: recording methods are a single branch. An enabled handle
/// forwards every event to its sink under a mutex (events from codegen
/// workers and simulator ranks interleave by arrival).
#[derive(Clone, Default)]
pub struct Trace {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Trace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.inner.is_some() {
            "Trace(on)"
        } else {
            "Trace(off)"
        })
    }
}

impl Trace {
    /// The disabled handle: records nothing, costs one branch per call.
    pub fn off() -> Trace {
        Trace::default()
    }

    /// An enabled handle forwarding events to `sink`.
    pub fn new(sink: impl TraceSink + Send + 'static) -> Trace {
        Trace {
            inner: Some(Arc::new(Inner {
                sink: Mutex::new(Box::new(sink)),
                t0: Instant::now(),
            })),
        }
    }

    /// True when events are being recorded. Hot paths may check this once
    /// and skip argument construction entirely.
    #[inline]
    pub fn on(&self) -> bool {
        self.inner.is_some()
    }

    /// Wall-clock µs since the trace was created (the [`PID_COMPILE`]
    /// timebase). 0.0 when disabled.
    #[inline]
    pub fn now_us(&self) -> f64 {
        match &self.inner {
            Some(i) => i.t0.elapsed().as_secs_f64() * 1e6,
            None => 0.0,
        }
    }

    /// Forwards one event to the sink (no-op when disabled).
    pub fn emit(&self, e: Event) {
        if let Some(inner) = &self.inner {
            inner
                .sink
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .event(&e);
        }
    }

    /// Opens a wall-clock span on `(pid, tid)`; the returned guard closes
    /// it on drop. Disabled handles return an inert guard.
    pub fn span(&self, pid: u32, tid: u32, cat: &'static str, name: &str) -> SpanGuard {
        if self.on() {
            self.emit(Event {
                name: name.to_string(),
                cat,
                pid,
                tid,
                ts_us: self.now_us(),
                phase: Phase::Begin,
                args: Vec::new(),
            });
            SpanGuard {
                trace: self.clone(),
                pid,
                tid,
                cat,
                name: name.to_string(),
            }
        } else {
            SpanGuard {
                trace: Trace::off(),
                pid,
                tid,
                cat,
                name: String::new(),
            }
        }
    }

    /// Records a self-contained span `[ts_us, ts_us + dur_us]`.
    #[allow(clippy::too_many_arguments)]
    pub fn complete(
        &self,
        pid: u32,
        tid: u32,
        cat: &'static str,
        name: &str,
        ts_us: f64,
        dur_us: f64,
        args: Args,
    ) {
        if self.on() {
            self.emit(Event {
                name: name.to_string(),
                cat,
                pid,
                tid,
                ts_us,
                phase: Phase::Complete { dur_us },
                args,
            });
        }
    }

    /// Opens a span at an explicit timestamp (simulated-time spans close
    /// with [`Trace::end_at`], not a guard).
    pub fn begin_at(
        &self,
        pid: u32,
        tid: u32,
        cat: &'static str,
        name: &str,
        ts_us: f64,
        args: Args,
    ) {
        if self.on() {
            self.emit(Event {
                name: name.to_string(),
                cat,
                pid,
                tid,
                ts_us,
                phase: Phase::Begin,
                args,
            });
        }
    }

    /// Closes the innermost open span on `(pid, tid)` at an explicit
    /// timestamp.
    pub fn end_at(&self, pid: u32, tid: u32, cat: &'static str, name: &str, ts_us: f64) {
        if self.on() {
            self.emit(Event {
                name: name.to_string(),
                cat,
                pid,
                tid,
                ts_us,
                phase: Phase::End,
                args: Vec::new(),
            });
        }
    }

    /// Records a point event.
    pub fn instant(
        &self,
        pid: u32,
        tid: u32,
        cat: &'static str,
        name: &str,
        ts_us: f64,
        args: Args,
    ) {
        if self.on() {
            self.emit(Event {
                name: name.to_string(),
                cat,
                pid,
                tid,
                ts_us,
                phase: Phase::Instant,
                args,
            });
        }
    }

    /// Records a counter sample.
    pub fn counter(&self, pid: u32, tid: u32, name: &str, ts_us: f64, value: f64) {
        if self.on() {
            self.emit(Event {
                name: name.to_string(),
                cat: "counter",
                pid,
                tid,
                ts_us,
                phase: Phase::Counter,
                args: vec![("value", Arg::F(value))],
            });
        }
    }

    /// Labels a `(pid, tid)` track (rendered as Chrome `thread_name`
    /// metadata).
    pub fn name_track(&self, pid: u32, tid: u32, name: &str) {
        if self.on() {
            self.emit(Event {
                name: name.to_string(),
                cat: "meta",
                pid,
                tid,
                ts_us: 0.0,
                phase: Phase::Meta,
                args: Vec::new(),
            });
        }
    }

    /// Flushes the sink (closes the Chrome JSON document, flushes
    /// writers). Safe to call on a disabled handle. IO errors collected
    /// by streaming sinks surface here.
    pub fn finish(&self) -> std::io::Result<()> {
        match &self.inner {
            Some(inner) => inner
                .sink
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .finish(),
            None => Ok(()),
        }
    }
}

/// Guard for a wall-clock span opened by [`Trace::span`]; emits the
/// matching [`Phase::End`] on drop.
pub struct SpanGuard {
    trace: Trace,
    pid: u32,
    tid: u32,
    cat: &'static str,
    name: String,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.trace.on() {
            let ts = self.trace.now_us();
            self.trace
                .end_at(self.pid, self.tid, self.cat, &self.name, ts);
        }
    }
}

/// Renders the span tree of `events` — names and nesting only, no
/// timestamps — grouped by `(pid, tid)` track in ascending order. This is
/// the deterministic projection `tests/trace.rs` pins as a golden: span
/// structure is stable run to run even though timings are not.
pub fn span_tree(events: &[Event]) -> String {
    let mut tracks: Vec<(u32, u32)> = events.iter().map(|e| (e.pid, e.tid)).collect();
    tracks.sort_unstable();
    tracks.dedup();
    let mut out = String::new();
    for (pid, tid) in tracks {
        let track: Vec<&Event> = events
            .iter()
            .filter(|e| e.pid == pid && e.tid == tid && e.phase != Phase::Meta)
            .collect();
        if track.is_empty() {
            continue;
        }
        out.push_str(&format!("track {pid}.{tid}\n"));
        let mut depth = 1usize;
        for e in track {
            match &e.phase {
                Phase::Begin => {
                    out.push_str(&format!("{}{} {}\n", "  ".repeat(depth), e.cat, e.name));
                    depth += 1;
                }
                Phase::End => depth = depth.saturating_sub(1).max(1),
                Phase::Complete { .. } => {
                    out.push_str(&format!("{}{} {}\n", "  ".repeat(depth), e.cat, e.name));
                }
                Phase::Instant => {
                    out.push_str(&format!("{}! {}\n", "  ".repeat(depth), e.name));
                }
                Phase::Counter => {
                    out.push_str(&format!("{}# {}\n", "  ".repeat(depth), e.name));
                }
                Phase::Meta => {}
            }
        }
    }
    out
}

// Compile-time thread-safety audit: traces are cloned into codegen pool
// workers and simulated ranks, and sinks aggregate events from all of
// them, so `Trace` and the bundled sinks must stay Send + Sync.
const fn assert_send_sync<T: Send + Sync>() {}
const _: () = assert_send_sync::<Trace>();
const _: () = assert_send_sync::<sink::MemorySink>();
const _: () = assert_send_sync::<sink::JsonLinesSink<std::io::Sink>>();
const _: () = assert_send_sync::<sink::ChromeTraceSink<std::io::Sink>>();

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_handle_records_nothing_and_is_cheap() {
        let t = Trace::off();
        assert!(!t.on());
        t.complete(PID_COMPILE, 0, "x", "y", 0.0, 1.0, vec![]);
        t.counter(PID_MACHINE, 0, "c", 0.0, 1.0);
        let _g = t.span(PID_COMPILE, 0, "x", "y");
        assert!(t.finish().is_ok());
    }

    #[test]
    fn memory_sink_collects_in_order() {
        let (sink, events) = MemorySink::new();
        let t = Trace::new(sink);
        {
            let _root = t.span(PID_COMPILE, 0, "driver", "compile");
            t.complete(PID_COMPILE, 0, "solve", "constants", 1.0, 2.0, vec![]);
        }
        t.instant(
            PID_MACHINE,
            3,
            "msg",
            "send",
            10.0,
            vec![("bytes", 16i64.into())],
        );
        let ev = events.lock().unwrap();
        let names: Vec<&str> = ev.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["compile", "constants", "compile", "send"]);
        assert!(matches!(ev[0].phase, Phase::Begin));
        assert!(matches!(ev[2].phase, Phase::End));
    }

    #[test]
    fn span_tree_nests_by_track() {
        let (sink, events) = MemorySink::new();
        let t = Trace::new(sink);
        {
            let _a = t.span(PID_COMPILE, 0, "driver", "compile");
            let _b = t.span(PID_COMPILE, 0, "driver", "parse");
        }
        t.begin_at(PID_MACHINE, 0, "vm", "rank 0", 0.0, vec![]);
        t.end_at(PID_MACHINE, 0, "vm", "rank 0", 5.0);
        let ev = events.lock().unwrap();
        let tree = span_tree(&ev);
        assert_eq!(
            tree,
            "track 1.0\n  driver compile\n    driver parse\ntrack 2.0\n  vm rank 0\n"
        );
    }

    #[test]
    fn guard_closes_in_reverse_order() {
        let (sink, events) = MemorySink::new();
        let t = Trace::new(sink);
        {
            let _a = t.span(PID_COMPILE, 0, "d", "outer");
            let _b = t.span(PID_COMPILE, 0, "d", "inner");
        }
        let ev = events.lock().unwrap();
        let seq: Vec<(String, bool)> = ev
            .iter()
            .map(|e| (e.name.clone(), matches!(e.phase, Phase::Begin)))
            .collect();
        assert_eq!(
            seq,
            vec![
                ("outer".into(), true),
                ("inner".into(), true),
                ("inner".into(), false),
                ("outer".into(), false)
            ]
        );
    }
}
