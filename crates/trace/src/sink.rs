//! Trace exporters: where [`Event`]s go.

use crate::{Arg, Event, Phase};
use std::io::Write;
use std::sync::{Arc, Mutex};

/// Receives every event from an enabled [`crate::Trace`] handle, in
/// arrival order. `finish` closes the output (called once, from
/// [`crate::Trace::finish`]).
pub trait TraceSink {
    /// One event.
    fn event(&mut self, e: &Event);
    /// Close the output and surface any deferred IO error.
    fn finish(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Collects events into a shared `Vec` for inspection (golden span
/// trees, unit tests).
pub struct MemorySink {
    events: Arc<Mutex<Vec<Event>>>,
}

impl MemorySink {
    /// Returns the sink and a shared handle to its event buffer.
    #[allow(clippy::new_ret_no_self)]
    pub fn new() -> (MemorySink, Arc<Mutex<Vec<Event>>>) {
        let events = Arc::new(Mutex::new(Vec::new()));
        (
            MemorySink {
                events: events.clone(),
            },
            events,
        )
    }
}

impl TraceSink for MemorySink {
    fn event(&mut self, e: &Event) {
        self.events
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(e.clone());
    }
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

fn fmt_f64(v: f64) -> String {
    if !v.is_finite() {
        return "0".to_string();
    }
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        let s = format!("{v}");
        debug_assert!(s.parse::<f64>().is_ok());
        s
    }
}

fn arg_json(out: &mut String, a: &Arg) {
    match a {
        Arg::I(v) => out.push_str(&format!("{v}")),
        Arg::F(v) => out.push_str(&fmt_f64(*v)),
        Arg::S(v) => {
            out.push('"');
            escape_into(out, v);
            out.push('"');
        }
    }
}

/// Renders one event as a Chrome trace-event JSON object (no trailing
/// newline). Shared by both streaming sinks.
pub fn event_json(e: &Event) -> String {
    let (ph, extra): (&str, String) = match &e.phase {
        Phase::Begin => ("B", String::new()),
        Phase::End => ("E", String::new()),
        Phase::Complete { dur_us } => ("X", format!(",\"dur\":{}", fmt_f64(*dur_us))),
        Phase::Instant => ("i", ",\"s\":\"t\"".to_string()),
        Phase::Counter => ("C", String::new()),
        Phase::Meta => ("M", String::new()),
    };
    let mut out = String::new();
    out.push_str("{\"name\":\"");
    if e.phase == Phase::Meta {
        out.push_str("thread_name");
    } else {
        escape_into(&mut out, &e.name);
    }
    out.push_str("\",\"cat\":\"");
    escape_into(&mut out, e.cat);
    out.push_str(&format!(
        "\",\"ph\":\"{ph}\",\"ts\":{},\"pid\":{},\"tid\":{}{extra}",
        fmt_f64(e.ts_us),
        e.pid,
        e.tid
    ));
    if e.phase == Phase::Meta {
        out.push_str(",\"args\":{\"name\":\"");
        escape_into(&mut out, &e.name);
        out.push_str("\"}");
    } else if !e.args.is_empty() {
        out.push_str(",\"args\":{");
        for (i, (k, v)) in e.args.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            escape_into(&mut out, k);
            out.push_str("\":");
            arg_json(&mut out, v);
        }
        out.push('}');
    }
    out.push('}');
    out
}

/// Streams one JSON object per line (newline-delimited JSON). Easy to
/// grep and post-process; not directly loadable by Chrome.
pub struct JsonLinesSink<W: Write> {
    w: W,
    err: Option<std::io::Error>,
}

impl<W: Write> JsonLinesSink<W> {
    /// Wraps a writer.
    pub fn new(w: W) -> JsonLinesSink<W> {
        JsonLinesSink { w, err: None }
    }
}

impl<W: Write> TraceSink for JsonLinesSink<W> {
    fn event(&mut self, e: &Event) {
        if self.err.is_some() {
            return;
        }
        if let Err(err) = writeln!(self.w, "{}", event_json(e)) {
            self.err = Some(err);
        }
    }

    fn finish(&mut self) -> std::io::Result<()> {
        if let Some(err) = self.err.take() {
            return Err(err);
        }
        self.w.flush()
    }
}

/// Streams the Chrome trace-event JSON array format
/// (`{"traceEvents":[...]}`), loadable in `chrome://tracing` and
/// Perfetto. IO errors are deferred to [`TraceSink::finish`].
pub struct ChromeTraceSink<W: Write> {
    w: W,
    first: bool,
    err: Option<std::io::Error>,
}

impl<W: Write> ChromeTraceSink<W> {
    /// Wraps a writer; the JSON document opens on the first event (or at
    /// finish if there were none).
    pub fn new(w: W) -> ChromeTraceSink<W> {
        ChromeTraceSink {
            w,
            first: true,
            err: None,
        }
    }

    fn write(&mut self, s: &str) {
        if self.err.is_some() {
            return;
        }
        if let Err(err) = self.w.write_all(s.as_bytes()) {
            self.err = Some(err);
        }
    }
}

impl<W: Write> TraceSink for ChromeTraceSink<W> {
    fn event(&mut self, e: &Event) {
        let json = event_json(e);
        if self.first {
            self.first = false;
            self.write("{\"traceEvents\":[\n");
        } else {
            self.write(",\n");
        }
        self.write(&json);
    }

    fn finish(&mut self) -> std::io::Result<()> {
        if self.first {
            self.first = false;
            self.write("{\"traceEvents\":[\n");
        }
        self.write("\n]}\n");
        if let Some(err) = self.err.take() {
            return Err(err);
        }
        self.w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Trace, PID_COMPILE, PID_MACHINE};

    #[test]
    fn chrome_sink_emits_valid_document() {
        let buf: Vec<u8> = Vec::new();
        let shared = Arc::new(Mutex::new(buf));
        struct SharedW(Arc<Mutex<Vec<u8>>>);
        impl Write for SharedW {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let t = Trace::new(ChromeTraceSink::new(SharedW(shared.clone())));
        {
            let _s = t.span(PID_COMPILE, 0, "driver", "compile");
        }
        t.complete(
            PID_MACHINE,
            2,
            "msg",
            "send",
            1.5,
            0.25,
            vec![("bytes", 128i64.into()), ("dst", 3i64.into())],
        );
        t.name_track(PID_MACHINE, 2, "rank 2");
        t.finish().unwrap();
        let text = String::from_utf8(shared.lock().unwrap().clone()).unwrap();
        crate::chrome::validate(&text).unwrap();
        assert!(text.contains("\"ph\":\"X\""));
        assert!(text.contains("\"thread_name\""));
    }

    #[test]
    fn jsonl_sink_one_object_per_line() {
        let shared = Arc::new(Mutex::new(Vec::new()));
        struct SharedW(Arc<Mutex<Vec<u8>>>);
        impl Write for SharedW {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let t = Trace::new(JsonLinesSink::new(SharedW(shared.clone())));
        t.instant(
            PID_COMPILE,
            0,
            "driver",
            "hit",
            3.0,
            vec![("unit", "dgefa".into())],
        );
        t.counter(PID_MACHINE, 1, "pool_reuses", 9.0, 42.0);
        t.finish().unwrap();
        let text = String::from_utf8(shared.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for l in lines {
            crate::chrome::parse_json(l).unwrap();
        }
    }

    #[test]
    fn floats_render_parseably() {
        assert_eq!(fmt_f64(2.0), "2");
        assert_eq!(fmt_f64(1.5), "1.5");
        assert_eq!(fmt_f64(f64::NAN), "0");
        let v: f64 = fmt_f64(0.1 + 0.2).parse().unwrap();
        assert!((v - 0.3).abs() < 1e-12);
    }

    #[test]
    fn escapes_strings() {
        let e = Event {
            name: "a\"b\\c\nd".to_string(),
            cat: "x",
            pid: 1,
            tid: 0,
            ts_us: 0.0,
            phase: Phase::Instant,
            args: vec![("k", Arg::S("\t".to_string()))],
        };
        let json = event_json(&e);
        crate::chrome::parse_json(&json).unwrap();
    }
}
