//! # fortrand-bench
//!
//! Experiment harness: every table and figure of the paper maps to a
//! function here (see DESIGN.md §5 for the index). The `tables` binary
//! prints the artifacts; the Criterion benches under `benches/` measure
//! the compiler and simulator themselves.
//!
//! Quantitative experiments report *simulated* machine metrics
//! (LogGP-model time, message counts, bytes) — the quantities the paper's
//! iPSC/860 measurements correspond to. See EXPERIMENTS.md for the
//! paper-vs-measured record.

use fortrand::corpus::{dgefa_matrix, dgefa_source, fig15_source, fig4_source, relax_source};
use fortrand::json::Json;
use fortrand::{CommOpt, CompileOptions, DynOptLevel, Strategy};
use fortrand_machine::{Machine, RunStats, HIST_LABELS};
use fortrand_spmd::{try_run_spmd, Bytecode, ExecOptions, ExecOutput, Native, SpmdProgram, Tree};
use std::collections::BTreeMap;
use std::time::Instant;

/// Clean compile through the `Session` facade — the harness-wide
/// replacement for the retired `fortrand::compile` wrapper (now gated
/// behind the `legacy` cargo feature). The corpus is known-good, so any
/// non-compile session error is a harness bug and panics.
pub fn compile(
    source: &str,
    opts: &CompileOptions,
) -> Result<fortrand::CompileOutput, fortrand::CompileError> {
    match fortrand::Session::new(source)
        .options(opts.clone())
        .compile()
    {
        Ok(compiled) => Ok(compiled.into_output()),
        Err(fortrand::Error::Compile(e)) => Err(e),
        Err(e) => panic!("compile-only session hit a non-compile error: {e}"),
    }
}

/// Panic-on-failure runner on the default backend (replaces the retired
/// `fortrand_spmd::run_spmd` wrapper for the harness).
pub fn run_spmd(
    prog: &SpmdProgram,
    machine: &Machine,
    init: &BTreeMap<fortrand_ir::Sym, Vec<f64>>,
) -> ExecOutput {
    run_spmd_opts(prog, machine, init, &ExecOptions::new())
}

/// [`run_spmd`] with explicit execution options (backend selection etc.).
pub fn run_spmd_opts(
    prog: &SpmdProgram,
    machine: &Machine,
    init: &BTreeMap<fortrand_ir::Sym, Vec<f64>>,
    opts: &ExecOptions,
) -> ExecOutput {
    try_run_spmd(prog, machine, init, opts).unwrap_or_else(|f| panic!("{f}"))
}

/// Compiles and simulates one program; panics on compile errors (the
/// corpus is known-good).
pub fn simulate(src: &str, strategy: Strategy, dyn_opt: DynOptLevel, nprocs: usize) -> RunStats {
    simulate_with(src, strategy, dyn_opt, nprocs, &BTreeMap::new())
}

/// Like [`simulate`] with named initial arrays (global row-major data).
pub fn simulate_with(
    src: &str,
    strategy: Strategy,
    dyn_opt: DynOptLevel,
    nprocs: usize,
    init_named: &BTreeMap<&str, Vec<f64>>,
) -> RunStats {
    simulate_comm(src, strategy, dyn_opt, nprocs, init_named, CommOpt::Full)
}

/// Like [`simulate_with`] with an explicit communication-optimization
/// level (the driver default is [`CommOpt::Full`]).
pub fn simulate_comm(
    src: &str,
    strategy: Strategy,
    dyn_opt: DynOptLevel,
    nprocs: usize,
    init_named: &BTreeMap<&str, Vec<f64>>,
    comm_opt: CommOpt,
) -> RunStats {
    let out = compile(
        src,
        &CompileOptions::builder()
            .strategy(strategy)
            .dyn_opt(dyn_opt)
            .nprocs(nprocs)
            .comm_opt(comm_opt)
            .build(),
    )
    .unwrap_or_else(|e| panic!("compile ({strategy:?}): {e}"));
    let machine = Machine::new(nprocs);
    let mut init = BTreeMap::new();
    for (name, data) in init_named {
        if let Some(s) = out.spmd.interner.get(name) {
            init.insert(s, data.clone());
        }
    }
    run_spmd(&out.spmd, &machine, &init).stats
}

/// One row of a strategy-comparison table.
#[derive(Debug, Clone)]
pub struct Row {
    /// Row label (e.g. problem size or processor count).
    pub label: String,
    /// Simulated execution time in milliseconds.
    pub time_ms: f64,
    /// Total messages.
    pub msgs: u64,
    /// Total bytes.
    pub bytes: u64,
    /// Remap library calls.
    pub remaps: u64,
}

impl Row {
    /// Builds a row from run statistics.
    pub fn from_stats(label: impl Into<String>, s: &RunStats) -> Row {
        Row {
            label: label.into(),
            time_ms: s.time_ms(),
            msgs: s.total_msgs,
            bytes: s.total_bytes,
            remaps: s.total_remaps,
        }
    }
}

/// Renders rows as a fixed-width table.
pub fn render_rows(title: &str, header: &str, rows: &[Row]) -> String {
    let mut out = format!("{title}\n{}\n", "-".repeat(title.len()));
    out.push_str(&format!(
        "{:<24} {:>12} {:>10} {:>12} {:>8}\n",
        header, "time (ms)", "msgs", "bytes", "remaps"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<24} {:>12.3} {:>10} {:>12} {:>8}\n",
            r.label, r.time_ms, r.msgs, r.bytes, r.remaps
        ));
    }
    out
}

/// Experiment `fig2-vs-fig3`: compile-time codegen vs run-time resolution
/// for the Fig. 1 pipeline pattern, over problem sizes.
pub fn exp_resolution(sizes: &[i64], nprocs: usize) -> Vec<(String, Row, Row)> {
    sizes
        .iter()
        .map(|&n| {
            let src = relax_source(n, 5, 1, nprocs);
            let a = simulate(&src, Strategy::Interprocedural, DynOptLevel::Kills, nprocs);
            let b = simulate(
                &src,
                Strategy::RuntimeResolution,
                DynOptLevel::Kills,
                nprocs,
            );
            (
                format!("n={n}"),
                Row::from_stats("compile-time", &a),
                Row::from_stats("run-time res", &b),
            )
        })
        .collect()
}

/// Experiment `fig10-vs-fig12`: delayed vs immediate instantiation over
/// the enclosing trip count (the paper's 1 vs 100 messages).
pub fn exp_delayed(trips: &[i64], nprocs: usize) -> Vec<(String, Row, Row)> {
    trips
        .iter()
        .map(|&t| {
            let src = fig4_source(t, nprocs);
            let a = simulate(&src, Strategy::Interprocedural, DynOptLevel::Kills, nprocs);
            let b = simulate(&src, Strategy::Immediate, DynOptLevel::Kills, nprocs);
            (
                format!("trips={t}"),
                Row::from_stats("interprocedural", &a),
                Row::from_stats("immediate", &b),
            )
        })
        .collect()
}

/// Experiment `fig16-perf`: remap counts/time per dynamic-decomposition
/// optimization level, over the time-step count.
pub fn exp_remap(tsteps: &[i64], nprocs: usize) -> Vec<(String, Vec<Row>)> {
    tsteps
        .iter()
        .map(|&t| {
            let src = fig15_source(t, nprocs);
            let rows = [
                ("16a none", DynOptLevel::None),
                ("16b live", DynOptLevel::Live),
                ("16c hoist", DynOptLevel::Hoist),
                ("16d kills", DynOptLevel::Kills),
            ]
            .iter()
            .map(|(label, lvl)| {
                let s = simulate(&src, Strategy::Interprocedural, *lvl, nprocs);
                Row::from_stats(*label, &s)
            })
            .collect();
            (format!("T={t}"), rows)
        })
        .collect()
}

/// Experiment `sec9`: dgefa under each strategy (the case study).
pub fn exp_dgefa(n: i64, procs: &[usize]) -> Vec<(usize, Vec<Row>)> {
    procs
        .iter()
        .map(|&p| {
            let src = dgefa_source(n, p);
            let mut init = BTreeMap::new();
            init.insert("a", dgefa_matrix(n));
            let rows = vec![
                Row::from_stats(
                    "interprocedural",
                    &simulate_with(
                        &src,
                        Strategy::Interprocedural,
                        DynOptLevel::Kills,
                        p,
                        &init,
                    ),
                ),
                Row::from_stats(
                    "interproc comm-off",
                    &simulate_comm(
                        &src,
                        Strategy::Interprocedural,
                        DynOptLevel::Kills,
                        p,
                        &init,
                        CommOpt::Off,
                    ),
                ),
                Row::from_stats(
                    "interproc overlap",
                    &simulate_comm(
                        &src,
                        Strategy::Interprocedural,
                        DynOptLevel::Kills,
                        p,
                        &init,
                        CommOpt::Overlap,
                    ),
                ),
                Row::from_stats(
                    "immediate",
                    &simulate_with(&src, Strategy::Immediate, DynOptLevel::Kills, p, &init),
                ),
                Row::from_stats(
                    "runtime-res",
                    &simulate_with(
                        &src,
                        Strategy::RuntimeResolution,
                        DynOptLevel::Kills,
                        p,
                        &init,
                    ),
                ),
                Row::from_stats("hand-coded", &hand_dgefa(n, p)),
            ];
            (p, rows)
        })
        .collect()
}

/// dgefa speedup curve for one strategy: time(1 proc) / time(p procs).
pub fn dgefa_speedups(n: i64, procs: &[usize], strategy: Strategy) -> Vec<(usize, f64)> {
    let src1 = dgefa_source(n, 1);
    let mut init = BTreeMap::new();
    init.insert("a", dgefa_matrix(n));
    let base = simulate_with(&src1, strategy, DynOptLevel::Kills, 1, &init).time_us;
    procs
        .iter()
        .map(|&p| {
            let src = dgefa_source(n, p);
            let t = simulate_with(&src, strategy, DynOptLevel::Kills, p, &init).time_us;
            (p, base / t)
        })
        .collect()
}

/// Ablation: sweep the message-startup cost α and report the
/// interprocedural-vs-immediate time ratio — showing that the delayed
/// instantiation win is precisely an α effect (equal bytes, fewer
/// messages), and where the strategies would converge.
pub fn ablation_alpha(alphas_us: &[f64], nprocs: usize) -> Vec<(f64, f64, f64)> {
    use fortrand::corpus::fig4_source;
    use fortrand_machine::CostModel;
    let src = fig4_source(100, nprocs);
    alphas_us
        .iter()
        .map(|&alpha| {
            let run = |strategy: Strategy| -> f64 {
                let out = compile(
                    &src,
                    &CompileOptions::builder()
                        .strategy(strategy)
                        .nprocs(nprocs)
                        .build(),
                )
                .unwrap();
                let cost = CostModel {
                    alpha_us: alpha,
                    ..CostModel::ipsc860()
                };
                let machine = Machine::with_cost(nprocs, cost);
                run_spmd(&out.spmd, &machine, &BTreeMap::new())
                    .stats
                    .time_us
            };
            let inter = run(Strategy::Interprocedural);
            let imm = run(Strategy::Immediate);
            (alpha, inter, imm)
        })
        .collect()
}

/// Host wall-clock comparison of the two execution engines on one
/// program, plus the shared simulated metrics (identical by construction
/// — [`EngineTiming::identical`] records whether they actually were).
#[derive(Debug, Clone)]
pub struct EngineTiming {
    /// Experiment label.
    pub label: String,
    /// Tree-walker wall-clock, min over reps (µs, host time).
    pub tree_wall_us: u64,
    /// Bytecode-VM wall-clock, min over reps (µs, host time, includes
    /// lowering — charged against the VM to keep the comparison honest).
    pub bytecode_wall_us: u64,
    /// Simulated LogGP time (identical across engines).
    pub model_time_us: f64,
    /// Total simulated messages.
    pub msgs: u64,
    /// Total simulated bytes.
    pub bytes: u64,
    /// VM instructions dispatched across all ranks.
    pub bytecode_instrs: u64,
    /// Pooled message buffers reused (from the bytecode run; varies with
    /// thread interleaving).
    pub pool_reuses: u64,
    /// Pooled message buffers allocated fresh (bytecode run).
    pub pool_allocs: u64,
    /// Whether every simulated observable (model time, message totals,
    /// histograms, per-tag counts, final arrays, printed output) was
    /// bit-identical between the engines.
    pub identical: bool,
}

impl EngineTiming {
    /// Wall-clock speedup of the bytecode engine over the tree-walker.
    pub fn speedup(&self) -> f64 {
        self.tree_wall_us as f64 / self.bytecode_wall_us.max(1) as f64
    }
}

/// True iff two runs agree on every *simulated* observable. Host-side
/// measurements (`wall_us`, pool counters, `engine_instrs`) are excluded:
/// they are nondeterministic or engine-specific by design.
pub fn outputs_identical(a: &ExecOutput, b: &ExecOutput) -> bool {
    a.stats.time_us == b.stats.time_us
        && a.stats.total_msgs == b.stats.total_msgs
        && a.stats.total_bytes == b.stats.total_bytes
        && a.stats.total_flops == b.stats.total_flops
        && a.stats.total_ops == b.stats.total_ops
        && a.stats.total_remaps == b.stats.total_remaps
        && a.stats.msg_hist == b.stats.msg_hist
        && a.stats.msgs_by_tag == b.stats.msgs_by_tag
        && a.arrays == b.arrays
        && a.printed == b.printed
}

/// Compiles `src` once, then runs it `reps` times under each engine,
/// timing each run with host wall-clock and keeping the minimum (the
/// usual benchmarking guard against scheduler noise).
#[allow(clippy::too_many_arguments)]
pub fn engine_experiment(
    label: &str,
    src: &str,
    strategy: Strategy,
    dyn_opt: DynOptLevel,
    comm_opt: CommOpt,
    nprocs: usize,
    init_named: &BTreeMap<&str, Vec<f64>>,
    reps: usize,
) -> EngineTiming {
    let out = compile(
        src,
        &CompileOptions::builder()
            .strategy(strategy)
            .dyn_opt(dyn_opt)
            .comm_opt(comm_opt)
            .nprocs(nprocs)
            .build(),
    )
    .unwrap_or_else(|e| panic!("compile ({strategy:?}): {e}"));
    let mut init = BTreeMap::new();
    for (name, data) in init_named {
        if let Some(s) = out.spmd.interner.get(name) {
            init.insert(s, data.clone());
        }
    }
    let run = |opts: &ExecOptions| -> (ExecOutput, u64) {
        let mut best = u64::MAX;
        let mut result = None;
        for _ in 0..reps.max(1) {
            let machine = Machine::new(nprocs);
            let t0 = Instant::now();
            let r = run_spmd_opts(&out.spmd, &machine, &init, opts);
            best = best.min(t0.elapsed().as_micros() as u64);
            result = Some(r);
        }
        (result.unwrap(), best.max(1))
    };
    let (tree, tree_wall_us) = run(&ExecOptions::new().backend(Tree));
    let (vm, bytecode_wall_us) = run(&ExecOptions::new().backend(Bytecode));
    EngineTiming {
        label: label.into(),
        tree_wall_us,
        bytecode_wall_us,
        model_time_us: vm.stats.time_us,
        msgs: vm.stats.total_msgs,
        bytes: vm.stats.total_bytes,
        bytecode_instrs: vm.stats.engine_instrs,
        pool_reuses: vm.stats.pool_reuses,
        pool_allocs: vm.stats.pool_allocs,
        identical: outputs_identical(&tree, &vm),
    }
}

/// One [`EngineTiming`] as a JSON object (one entry of the
/// `BENCH_sim.json` artifact; format documented in EXPERIMENTS.md).
fn timing_json(t: &EngineTiming) -> Json {
    Json::Obj(vec![
        ("experiment".into(), Json::str(&t.label)),
        ("tree_wall_us".into(), Json::Int(t.tree_wall_us as i128)),
        (
            "bytecode_wall_us".into(),
            Json::Int(t.bytecode_wall_us as i128),
        ),
        (
            "speedup_x100".into(),
            Json::Int((t.speedup() * 100.0) as i128),
        ),
        ("speedup".into(), Json::str(format!("{:.2}", t.speedup()))),
        (
            "model_time_us".into(),
            Json::str(format!("{:.3}", t.model_time_us)),
        ),
        ("msgs".into(), Json::Int(t.msgs as i128)),
        ("bytes".into(), Json::Int(t.bytes as i128)),
        (
            "bytecode_instrs".into(),
            Json::Int(t.bytecode_instrs as i128),
        ),
        ("pool_reuses".into(), Json::Int(t.pool_reuses as i128)),
        ("pool_allocs".into(), Json::Int(t.pool_allocs as i128)),
        ("identical".into(), Json::Bool(t.identical)),
    ])
}

/// The experiments behind `BENCH_sim.json`: the dgefa case study at two
/// scales (the large one both blocking and overlapped, so the engines'
/// agreement is also checked on posted operations) plus the Fig. 4
/// delayed-instantiation program (call-heavy, so it stresses frame
/// push/pop rather than array loops).
pub fn sim_experiments(reps: usize) -> Vec<EngineTiming> {
    let mut init = BTreeMap::new();
    init.insert("a", dgefa_matrix(64));
    let mut init256 = BTreeMap::new();
    init256.insert("a", dgefa_matrix(256));
    vec![
        engine_experiment(
            "dgefa n=64 p=4",
            &dgefa_source(64, 4),
            Strategy::Interprocedural,
            DynOptLevel::Kills,
            CommOpt::Full,
            4,
            &init,
            reps,
        ),
        engine_experiment(
            "dgefa n=256 p=8",
            &dgefa_source(256, 8),
            Strategy::Interprocedural,
            DynOptLevel::Kills,
            CommOpt::Full,
            8,
            &init256,
            reps,
        ),
        engine_experiment(
            "dgefa n=256 p=8 overlap",
            &dgefa_source(256, 8),
            Strategy::Interprocedural,
            DynOptLevel::Kills,
            CommOpt::Overlap,
            8,
            &init256,
            reps,
        ),
        engine_experiment(
            "fig4 trips=100 p=4",
            &fig4_source(100, 4),
            Strategy::Interprocedural,
            DynOptLevel::Kills,
            CommOpt::Full,
            4,
            &BTreeMap::new(),
            reps,
        ),
    ]
}

/// The `BENCH_sim.json` document: wall-clock of both execution engines,
/// the speedup of the bytecode VM, and the shared simulated metrics.
pub fn sim_report(reps: usize) -> Json {
    sim_report_of(&sim_experiments(reps))
}

/// [`sim_report`] over already-measured timings (so callers that need the
/// timings for gating don't run the experiments twice).
pub fn sim_report_of(timings: &[EngineTiming]) -> Json {
    Json::Obj(vec![
        ("version".into(), Json::Int(1)),
        (
            "experiments".into(),
            Json::Arr(timings.iter().map(timing_json).collect()),
        ),
    ])
}

/// Host wall-clock comparison of the bytecode VM against the native
/// codegen backend on one program (the `tables native` report). The VM
/// wall includes bytecode lowering; the native wall is the child
/// process's run time only — the `rustc` build is a compile-time cost
/// and is reported separately.
#[derive(Debug, Clone)]
pub struct NativeTiming {
    /// Experiment label.
    pub label: String,
    /// Bytecode-VM wall-clock, min over reps (µs, host time).
    pub vm_wall_us: u64,
    /// Native-process run wall-clock, min over reps (µs, host time,
    /// excludes the `rustc` build).
    pub native_wall_us: u64,
    /// Wall-clock of one emit + `rustc` build + run round trip (µs).
    pub build_wall_us: u64,
    /// Total messages (identical across backends by construction).
    pub msgs: u64,
    /// Total bytes.
    pub bytes: u64,
    /// Whether every shared observable (message totals, histogram,
    /// per-tag counts, final arrays bit for bit, printed output) matched
    /// between the VM and the native process. Simulated clock, flop and
    /// op counts are simulator-only and excluded.
    pub identical: bool,
}

impl NativeTiming {
    /// Wall-clock speedup of the native process over the bytecode VM.
    pub fn speedup(&self) -> f64 {
        self.vm_wall_us as f64 / self.native_wall_us.max(1) as f64
    }
}

/// True iff a simulator run and a native run agree on every observable
/// the two worlds share (traffic, arrays, printed output — not the
/// simulated clock, which the native process does not model).
pub fn native_outputs_identical(sim: &ExecOutput, nat: &ExecOutput) -> bool {
    sim.stats.total_msgs == nat.stats.total_msgs
        && sim.stats.total_bytes == nat.stats.total_bytes
        && sim.stats.total_remaps == nat.stats.total_remaps
        && sim.stats.msg_hist == nat.stats.msg_hist
        && sim.stats.msgs_by_tag == nat.stats.msgs_by_tag
        && sim.arrays.len() == nat.arrays.len()
        && sim.arrays.iter().all(|(name, sv)| {
            nat.arrays.get(name).is_some_and(|nv| {
                sv.len() == nv.len() && sv.iter().zip(nv).all(|(x, y)| x.to_bits() == y.to_bits())
            })
        })
        && sim.printed == nat.printed
}

/// Compiles `src` once, then runs it `reps` times under the bytecode VM
/// (timed externally, minimum kept) and `reps` times as a native
/// process (run time from the backend's own wall clock, which excludes
/// the `rustc` build; minimum kept).
pub fn native_experiment(
    label: &str,
    src: &str,
    nprocs: usize,
    init_named: &BTreeMap<&str, Vec<f64>>,
    reps: usize,
) -> NativeTiming {
    let out = compile(
        src,
        &CompileOptions::builder()
            .strategy(Strategy::Interprocedural)
            .dyn_opt(DynOptLevel::Kills)
            .comm_opt(CommOpt::Full)
            .nprocs(nprocs)
            .build(),
    )
    .unwrap_or_else(|e| panic!("compile: {e}"));
    let mut init = BTreeMap::new();
    for (name, data) in init_named {
        if let Some(s) = out.spmd.interner.get(name) {
            init.insert(s, data.clone());
        }
    }
    let mut vm_wall_us = u64::MAX;
    let mut vm = None;
    for _ in 0..reps.max(1) {
        let machine = Machine::new(nprocs);
        let t0 = Instant::now();
        let r = run_spmd_opts(
            &out.spmd,
            &machine,
            &init,
            &ExecOptions::new().backend(Bytecode),
        );
        vm_wall_us = vm_wall_us.min(t0.elapsed().as_micros() as u64);
        vm = Some(r);
    }
    let native_opts = ExecOptions::new().backend(Native {
        opt_level: 2,
        keep_artifacts: false,
    });
    let mut native_wall_us = u64::MAX;
    let mut build_wall_us = u64::MAX;
    let mut nat = None;
    for _ in 0..reps.max(1) {
        let machine = Machine::new(nprocs);
        let t0 = Instant::now();
        let r = run_spmd_opts(&out.spmd, &machine, &init, &native_opts);
        build_wall_us = build_wall_us.min(t0.elapsed().as_micros() as u64);
        native_wall_us = native_wall_us.min(r.stats.wall_us as u64);
        nat = Some(r);
    }
    let (vm, nat) = (vm.unwrap(), nat.unwrap());
    NativeTiming {
        label: label.into(),
        vm_wall_us: vm_wall_us.max(1),
        native_wall_us: native_wall_us.max(1),
        build_wall_us: build_wall_us.max(1),
        msgs: nat.stats.total_msgs,
        bytes: nat.stats.total_bytes,
        identical: native_outputs_identical(&vm, &nat),
    }
}

/// The `BENCH_native.json` document: dgefa n=256 p=8 under the bytecode
/// VM and as a compiled native process.
pub fn native_report(t: &NativeTiming) -> Json {
    Json::Obj(vec![
        ("version".into(), Json::Int(1)),
        ("experiment".into(), Json::str(&t.label)),
        ("vm_wall_us".into(), Json::Int(t.vm_wall_us as i128)),
        ("native_wall_us".into(), Json::Int(t.native_wall_us as i128)),
        ("build_wall_us".into(), Json::Int(t.build_wall_us as i128)),
        (
            "speedup_x100".into(),
            Json::Int((t.speedup() * 100.0) as i128),
        ),
        ("speedup".into(), Json::str(format!("{:.2}", t.speedup()))),
        ("msgs".into(), Json::Int(t.msgs as i128)),
        ("bytes".into(), Json::Int(t.bytes as i128)),
        ("arrays_match".into(), Json::Bool(t.identical)),
        (
            "rustc".into(),
            Json::str(fortrand_spmd::codegen::rustc_version().unwrap_or_default()),
        ),
    ])
}

/// Opcode-mix profile of one bytecode run (the `tables vmprof` report):
/// dynamic dispatch counts per opcode plus the dispatches that fused
/// kernels retired without entering the dispatch loop.
#[derive(Clone, Debug)]
pub struct VmProfile {
    /// Experiment label, e.g. `dgefa n=64 p=4`.
    pub label: String,
    /// `(opcode, dispatches)` for every opcode that executed at least
    /// once, descending by count.
    pub mix: Vec<(String, u64)>,
    /// Instructions actually dispatched (must equal the sum of `mix`).
    pub engine_instrs: u64,
    /// Dispatches retired inside fused superinstructions.
    pub fused_instrs: u64,
}

impl VmProfile {
    /// Fraction of would-be dispatches that fusion absorbed, in
    /// `[0, 1]`: `fused / (dispatched + fused)`.
    pub fn coverage(&self) -> f64 {
        let total = self.engine_instrs + self.fused_instrs;
        if total == 0 {
            0.0
        } else {
            self.fused_instrs as f64 / total as f64
        }
    }

    /// Sum of the per-opcode counts; the self-check compares this
    /// against `engine_instrs`.
    pub fn mix_total(&self) -> u64 {
        self.mix.iter().map(|(_, c)| c).sum()
    }
}

/// Runs dgefa under the bytecode engine and returns its opcode profile.
pub fn vmprof_dgefa(n: i64, p: usize) -> VmProfile {
    let out = compile(
        &dgefa_source(n, p),
        &CompileOptions::builder()
            .strategy(Strategy::Interprocedural)
            .nprocs(p)
            .dyn_opt(DynOptLevel::Kills)
            .build(),
    )
    .unwrap_or_else(|e| panic!("vmprof dgefa n={n} p={p}: {e}"));
    let mut init = BTreeMap::new();
    init.insert(out.spmd.interner.get("a").unwrap(), dgefa_matrix(n));
    let machine = Machine::new(p);
    let run = try_run_spmd(
        &out.spmd,
        &machine,
        &init,
        &ExecOptions::new().backend(Bytecode),
    )
    .unwrap_or_else(|f| panic!("vmprof dgefa n={n} p={p}: {f}"));
    let mut mix = run.stats.instr_mix.clone();
    mix.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    VmProfile {
        label: format!("dgefa n={n} p={p}"),
        mix,
        engine_instrs: run.stats.engine_instrs,
        fused_instrs: run.stats.fused_instrs,
    }
}

/// The `BENCH_vmprof.json` document for one profile.
pub fn vmprof_report(p: &VmProfile) -> Json {
    Json::Obj(vec![
        ("version".into(), Json::Int(1)),
        ("experiment".into(), Json::str(&p.label)),
        ("engine_instrs".into(), Json::Int(p.engine_instrs as i128)),
        ("fused_instrs".into(), Json::Int(p.fused_instrs as i128)),
        (
            "fusion_coverage_x100".into(),
            Json::Int((p.coverage() * 100.0) as i128),
        ),
        (
            "mix".into(),
            Json::Obj(
                p.mix
                    .iter()
                    .map(|(op, c)| (op.clone(), Json::Int(*c as i128)))
                    .collect(),
            ),
        ),
    ])
}

/// Communication metrics for one simulated run as a JSON object (one
/// entry of the `BENCH_comm.json` artifact; format documented in
/// EXPERIMENTS.md).
fn stats_json(experiment: &str, level: CommOpt, s: &RunStats) -> Json {
    let hist = Json::Obj(
        HIST_LABELS
            .iter()
            .zip(s.msg_hist.iter())
            .map(|(l, &c)| (l.to_string(), Json::Int(c as i128)))
            .collect(),
    );
    let by_tag = Json::Obj(
        s.msgs_by_tag
            .iter()
            .map(|(t, (m, b))| {
                (
                    format!("{t:#x}"),
                    Json::Obj(vec![
                        ("msgs".into(), Json::Int(*m as i128)),
                        ("bytes".into(), Json::Int(*b as i128)),
                    ]),
                )
            })
            .collect(),
    );
    Json::Obj(vec![
        ("experiment".into(), Json::str(experiment)),
        ("comm_opt".into(), Json::str(level.as_str())),
        ("msgs".into(), Json::Int(s.total_msgs as i128)),
        ("bytes".into(), Json::Int(s.total_bytes as i128)),
        // JSON numbers are integers here (see fortrand::json), so the
        // LogGP model time travels as a fixed-point string.
        (
            "model_time_us".into(),
            Json::str(format!("{:.3}", s.time_us)),
        ),
        ("overlap_posts".into(), Json::Int(s.overlap_posts as i128)),
        ("overlap_waits".into(), Json::Int(s.overlap_waits as i128)),
        (
            "overlap_hidden_us".into(),
            Json::str(format!("{:.3}", s.overlap_hidden_us)),
        ),
        ("msg_size_hist".into(), hist),
        ("msgs_by_tag".into(), by_tag),
    ])
}

/// Runs dgefa at `Full` and `Overlap` and returns both stat sets — the
/// input of the overlap-ratio entry in `BENCH_comm.json` and of the CI
/// `sec9-gate` improvement check.
pub fn overlap_comparison(n: i64, p: usize) -> (RunStats, RunStats) {
    let src = dgefa_source(n, p);
    let mut init = BTreeMap::new();
    init.insert("a", dgefa_matrix(n));
    let run = |level| {
        simulate_comm(
            &src,
            Strategy::Interprocedural,
            DynOptLevel::Kills,
            p,
            &init,
            level,
        )
    };
    (run(CommOpt::Full), run(CommOpt::Overlap))
}

/// Percentage of `Full`'s modeled time that `Overlap` shaves off.
pub fn overlap_improve_pct(full: &RunStats, ov: &RunStats) -> f64 {
    100.0 * (full.time_us - ov.time_us) / full.time_us
}

/// The overlap-ratio entry of `BENCH_comm.json` (integer fields are
/// fixed-point ×100 like the sim report's `speedup_x100`).
fn overlap_json(experiment: &str, full: &RunStats, ov: &RunStats) -> Json {
    let pct = overlap_improve_pct(full, ov);
    Json::Obj(vec![
        ("experiment".into(), Json::str(experiment)),
        (
            "full_time_us".into(),
            Json::str(format!("{:.3}", full.time_us)),
        ),
        (
            "overlap_time_us".into(),
            Json::str(format!("{:.3}", ov.time_us)),
        ),
        ("improve_pct_x100".into(), Json::Int((pct * 100.0) as i128)),
        ("improve_pct".into(), Json::str(format!("{pct:.2}"))),
        (
            "traffic_identical".into(),
            Json::Bool(full.total_msgs == ov.total_msgs && full.total_bytes == ov.total_bytes),
        ),
    ])
}

/// The `BENCH_comm.json` document: message counts, volumes and model
/// times for the communication-optimizer experiments — dgefa at each
/// processor count and the Fig. 4 delayed-instantiation program, each at
/// every [`CommOpt`] level — plus the `Overlap`-vs-`Full` modeled-time
/// ratio at the benchmark scale (dgefa n=256 p=8), the figure CI's
/// `sec9-gate` enforces.
pub fn comm_report(n: i64, procs: &[usize]) -> Json {
    const LEVELS: [CommOpt; 4] = [
        CommOpt::Off,
        CommOpt::Coalesce,
        CommOpt::Full,
        CommOpt::Overlap,
    ];
    let mut experiments = Vec::new();
    for &p in procs {
        let src = dgefa_source(n, p);
        let mut init = BTreeMap::new();
        init.insert("a", dgefa_matrix(n));
        for level in LEVELS {
            let s = simulate_comm(
                &src,
                Strategy::Interprocedural,
                DynOptLevel::Kills,
                p,
                &init,
                level,
            );
            experiments.push(stats_json(&format!("dgefa n={n} p={p}"), level, &s));
        }
    }
    let src = fig4_source(100, 4);
    for level in LEVELS {
        let s = simulate_comm(
            &src,
            Strategy::Interprocedural,
            DynOptLevel::Kills,
            4,
            &BTreeMap::new(),
            level,
        );
        experiments.push(stats_json("fig4 trips=100 p=4", level, &s));
    }
    let (full, ov) = overlap_comparison(256, 8);
    Json::Obj(vec![
        ("version".into(), Json::Int(2)),
        ("experiments".into(), Json::Arr(experiments)),
        (
            "overlap".into(),
            Json::Arr(vec![overlap_json("dgefa n=256 p=8", &full, &ov)]),
        ),
    ])
}

/// One point of a weak-scaling curve under the event-driven machine.
#[derive(Debug, Clone)]
pub struct ScalePoint {
    /// Simulated processor count.
    pub nprocs: usize,
    /// Problem size at this point.
    pub n: i64,
    /// Simulated LogGP time (µs).
    pub model_time_us: f64,
    /// Total simulated messages.
    pub msgs: u64,
    /// Total simulated bytes.
    pub bytes: u64,
    /// Event-scheduler task dispatches.
    pub sched_switches: u64,
    /// Peak undelivered messages across all mailboxes.
    pub sched_queue_peak: u64,
    /// Host wall-clock of the simulated run (ms; compile excluded). The
    /// only nondeterministic field — it is what the scale gate budgets.
    pub wall_ms: u64,
}

/// Compiles `src` and runs it once on the event-driven machine.
fn scale_point(
    src: &str,
    n: i64,
    nprocs: usize,
    init_named: &BTreeMap<&str, Vec<f64>>,
) -> ScalePoint {
    let out = compile(
        src,
        &CompileOptions::builder()
            .strategy(Strategy::Interprocedural)
            .dyn_opt(DynOptLevel::Kills)
            .nprocs(nprocs)
            .build(),
    )
    .unwrap_or_else(|e| panic!("compile (p={nprocs}): {e}"));
    let mut init = BTreeMap::new();
    for (name, data) in init_named {
        if let Some(s) = out.spmd.interner.get(name) {
            init.insert(s, data.clone());
        }
    }
    let machine = Machine::new(nprocs); // event-driven by default
    let s = run_spmd(&out.spmd, &machine, &init).stats;
    assert!(
        s.sched_switches > 0,
        "scale experiments must run on the event machine"
    );
    ScalePoint {
        nprocs,
        n,
        model_time_us: s.time_us,
        msgs: s.total_msgs,
        bytes: s.total_bytes,
        sched_switches: s.sched_switches,
        sched_queue_peak: s.sched_queue_peak,
        wall_ms: (s.wall_us / 1000.0) as u64,
    }
}

/// Default processor counts for the dgefa weak-scaling curve. dgefa at
/// n=p keeps one cyclic column per rank, so total simulated work grows
/// as p³ — the curve stops at 1024 to stay inside CI budgets.
pub const SCALE_DGEFA_PROCS: [usize; 4] = [128, 256, 512, 1024];

/// Default processor counts for the stencil weak-scaling curve
/// (constant 16 points per rank, so it reaches 4096 cheaply).
pub const SCALE_RELAX_PROCS: [usize; 6] = [128, 256, 512, 1024, 2048, 4096];

/// Experiment `weakscale/dgefa`: LU factorization with one cyclic
/// column per rank (n = p), far past the threaded machine's p=8
/// ceiling.
pub fn weakscale_dgefa(procs: &[usize]) -> Vec<ScalePoint> {
    procs
        .iter()
        .map(|&p| {
            let n = p as i64;
            let mut init = BTreeMap::new();
            init.insert("a", dgefa_matrix(n));
            scale_point(&dgefa_source(n, p), n, p, &init)
        })
        .collect()
}

/// Experiment `weakscale/relax`: the Fig. 1-style relaxation stencil at
/// a constant 16 points per rank (n = 16·p, BLOCK distributed) — true
/// weak scaling, two sweeps through a subroutine call per step.
pub fn weakscale_relax(procs: &[usize]) -> Vec<ScalePoint> {
    procs
        .iter()
        .map(|&p| {
            let n = 16 * p as i64;
            scale_point(&relax_source(n, 1, 2, p), n, p, &BTreeMap::new())
        })
        .collect()
}

/// One [`ScalePoint`] as a JSON object (one entry of the
/// `BENCH_scale.json` artifact; format documented in EXPERIMENTS.md).
fn scale_json(experiment: &str, pt: &ScalePoint) -> Json {
    Json::Obj(vec![
        ("experiment".into(), Json::str(experiment)),
        ("nprocs".into(), Json::Int(pt.nprocs as i128)),
        ("n".into(), Json::Int(pt.n as i128)),
        (
            "model_time_us".into(),
            Json::str(format!("{:.3}", pt.model_time_us)),
        ),
        ("msgs".into(), Json::Int(pt.msgs as i128)),
        ("bytes".into(), Json::Int(pt.bytes as i128)),
        (
            "sched_switches".into(),
            Json::Int(pt.sched_switches as i128),
        ),
        (
            "sched_queue_peak".into(),
            Json::Int(pt.sched_queue_peak as i128),
        ),
        ("wall_ms".into(), Json::Int(pt.wall_ms as i128)),
    ])
}

/// The `BENCH_scale.json` document: both weak-scaling curves under the
/// event-driven machine.
pub fn scale_report(dgefa: &[ScalePoint], relax: &[ScalePoint]) -> Json {
    let mut experiments = Vec::new();
    experiments.extend(dgefa.iter().map(|pt| scale_json("dgefa n=p cyclic", pt)));
    experiments.extend(relax.iter().map(|pt| scale_json("relax n=16p block", pt)));
    Json::Obj(vec![
        ("version".into(), Json::Int(1)),
        ("machine".into(), Json::str("event")),
        ("experiments".into(), Json::Arr(experiments)),
    ])
}

/// Renders a weak-scaling curve as a fixed-width table.
pub fn render_scale(title: &str, points: &[ScalePoint]) -> String {
    let mut out = format!("{title}\n{}\n", "-".repeat(title.len()));
    out.push_str(&format!(
        "{:<8} {:>8} {:>14} {:>10} {:>12} {:>12} {:>10} {:>9}\n",
        "p", "n", "model (ms)", "msgs", "bytes", "switches", "queue pk", "wall(ms)"
    ));
    for pt in points {
        out.push_str(&format!(
            "{:<8} {:>8} {:>14.3} {:>10} {:>12} {:>12} {:>10} {:>9}\n",
            pt.nprocs,
            pt.n,
            pt.model_time_us / 1000.0,
            pt.msgs,
            pt.bytes,
            pt.sched_switches,
            pt.sched_queue_peak,
            pt.wall_ms
        ));
    }
    out
}

/// Hand-written SPMD dgefa against the raw machine API — the paper's
/// hand-coded comparison point, the upper bound the compiler should
/// approach. One fused broadcast per elimination step (pivot index +
/// pivot column); every rank computes the multipliers redundantly from
/// the broadcast column (trading replicated flops for a second message),
/// updates only its own cyclic columns, and swaps rows locally.
pub fn hand_dgefa(n: i64, nprocs: usize) -> RunStats {
    use fortrand::corpus::dgefa_matrix;
    let machine = Machine::new(nprocs);
    let a0 = dgefa_matrix(n);
    let n = n as usize;
    machine.run(|node| {
        let me = node.rank();
        let p = node.nprocs();
        // Local column-major storage of the cyclic columns this rank owns.
        let my_cols: Vec<usize> = (0..n).filter(|j| j % p == me).collect();
        let mut cols: Vec<Vec<f64>> = my_cols
            .iter()
            .map(|&j| (0..n).map(|i| a0[i * n + j]).collect())
            .collect();
        for k in 0..n.saturating_sub(1) {
            let owner = k % p;
            // Owner searches the pivot in its copy of column k.
            let payload: Vec<f64> = if me == owner {
                let lc = k / p;
                let col = &cols[lc];
                let mut l = k;
                let mut best = col[k].abs();
                for (i, &v) in col.iter().enumerate().take(n).skip(k + 1) {
                    if v.abs() > best {
                        best = v.abs();
                        l = i;
                    }
                }
                node.charge_flops((n - k) as u64); // |.| compares
                let mut msg = Vec::with_capacity(n - k + 1);
                msg.push(l as f64);
                msg.extend_from_slice(&col[k..n]);
                msg
            } else {
                Vec::new()
            };
            // One fused broadcast: pivot index + raw column k rows k..n.
            let msg = node.bcast(owner, &payload);
            let l = msg[0] as usize;
            let mut piv = msg[1..].to_vec(); // column k, rows k..n, pre-swap
                                             // Everyone swaps rows l and k in their own columns…
            if l != k {
                for c in cols.iter_mut() {
                    c.swap(l, k);
                }
                node.charge_ops(cols.len() as u64 * 3);
                // …and applies the same swap to the broadcast column.
                piv.swap(l - k, 0);
            }
            // Replicated multipliers from the broadcast column.
            let akk = piv[0];
            let mult: Vec<f64> = piv[1..].iter().map(|v| v / akk).collect();
            node.charge_flops((n - k - 1) as u64);
            // Owner stores the multipliers into its column k.
            if me == owner {
                let lc = k / p;
                for (i, m) in mult.iter().enumerate() {
                    cols[lc][k + 1 + i] = *m;
                }
            }
            // Update owned columns j > k.
            for (ci, &j) in my_cols.iter().enumerate() {
                if j <= k {
                    continue;
                }
                let t = cols[ci][k];
                for (i, m) in mult.iter().enumerate() {
                    cols[ci][k + 1 + i] -= t * m;
                }
                node.charge_flops(2 * (n - k - 1) as u64);
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolution_gap_grows_with_n() {
        let rows = exp_resolution(&[64, 256], 4);
        for (label, ct, rt) in &rows {
            assert!(
                rt.time_ms > 5.0 * ct.time_ms,
                "{label}: run-time resolution must be much slower ({} vs {})",
                rt.time_ms,
                ct.time_ms
            );
        }
        // The gap ratio grows with n.
        let r0 = rows[0].2.time_ms / rows[0].1.time_ms;
        let r1 = rows[1].2.time_ms / rows[1].1.time_ms;
        assert!(r1 > r0, "gap must grow: {r0} -> {r1}");
    }

    #[test]
    fn delayed_scales_messages_with_trips() {
        let rows = exp_delayed(&[20, 100], 4);
        // Immediate: msgs grow linearly with trips; interprocedural: flat.
        assert_eq!(rows[0].1.msgs, rows[1].1.msgs, "interprocedural flat");
        assert!(rows[1].2.msgs > 4 * rows[0].2.msgs, "immediate grows");
    }

    #[test]
    fn hand_dgefa_bounds_the_compiler() {
        // The compiler's interprocedural code must be within a small
        // factor of the hand-written SPMD version (the paper's "closely
        // approach the quality of hand-written code").
        let n = 64;
        let p = 4;
        let src = dgefa_source(n, p);
        let mut init = BTreeMap::new();
        init.insert("a", dgefa_matrix(n));
        let compiled = simulate_with(
            &src,
            Strategy::Interprocedural,
            DynOptLevel::Kills,
            p,
            &init,
        );
        let hand = hand_dgefa(n, p);
        assert!(
            compiled.time_us < 6.0 * hand.time_us,
            "compiled {} µs vs hand {} µs",
            compiled.time_us,
            hand.time_us
        );
        assert!(
            hand.time_us <= compiled.time_us,
            "hand-coded is the lower bound"
        );
    }

    #[test]
    fn remap_levels_monotone() {
        let all = exp_remap(&[8], 4);
        let rows = &all[0].1;
        // Remap counts: none ≥ live ≥ hoist ≥ kills.
        assert!(rows[0].remaps > rows[1].remaps);
        assert!(rows[1].remaps >= rows[2].remaps);
        assert!(rows[2].remaps > rows[3].remaps);
        // 16a: 4 remaps per iteration per rank.
        assert_eq!(rows[0].remaps, 4 * 8 * 4);
        // 16d: one remap + one mark, once, per rank.
        assert_eq!(rows[3].remaps, 4);
    }
}
