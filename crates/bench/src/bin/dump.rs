//! Debug dump: pretty-prints the compiled SPMD program for a corpus entry.
//!
//! ```text
//! cargo run -p fortrand-bench --bin dump -- dgefa 8 4
//! ```

use fortrand::corpus::dgefa_source;
use fortrand::CompileOptions;
use fortrand_bench::compile;
use fortrand_spmd::print::pretty_all;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n: i64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(8);
    let p: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4);
    let src = dgefa_source(n, p);
    let out = compile(&src, &CompileOptions::default()).unwrap();
    println!("{}", pretty_all(&out.spmd));
    println!(
        "static: sends={} bcasts={} elem={}",
        out.report.static_sends, out.report.static_bcasts, out.report.static_elem_msgs
    );
}
