//! Regenerates every table and figure of the paper (DESIGN.md §5 index).
//!
//! ```text
//! cargo run -p fortrand-bench --bin tables -- all
//! cargo run -p fortrand-bench --bin tables -- fig2 fig3 tab1 sec9
//! ```
//!
//! `--trace out.json` additionally runs a traced dgefa n=256 p=8
//! compile-and-run and writes a Chrome trace-event file (load it at
//! `chrome://tracing` or <https://ui.perfetto.dev>) with the compile-phase
//! spans and the per-rank simulated message timeline; the file is
//! self-validated before exit.

use fortrand::corpus::{dgefa_matrix, dgefa_source};
use fortrand::recompile::{self, ModuleDb};
use fortrand::{
    record_exec_stats, rustc_available, Bytecode, CompileOptions, DynOptLevel, ExecOptions,
    Session, Strategy, Tree,
};
use fortrand_analysis::acg::build_acg;
use fortrand_analysis::fixtures::{FIG1, FIG15, FIG4};
use fortrand_analysis::reaching;
use fortrand_bench::{
    compile, exp_delayed, exp_dgefa, exp_remap, exp_resolution, render_rows, run_spmd_opts, Row,
};
use fortrand_spmd::print::{pretty, pretty_all};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let check = args.iter().any(|a| a == "--check");
    let args: Vec<String> = args
        .into_iter()
        .filter(|a| a != "--json" && a != "--check")
        .collect();
    let mut trace_path: Option<String> = None;
    let args: Vec<String> = {
        let mut filtered = Vec::new();
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            if a == "--trace" {
                trace_path = Some(it.next().unwrap_or_else(|| {
                    eprintln!("--trace requires a file path");
                    std::process::exit(2);
                }));
            } else {
                filtered.push(a);
            }
        }
        filtered
    };
    let all = args.is_empty() || args.iter().any(|a| a == "all");
    let want = |name: &str| all || args.iter().any(|a| a == name);

    if want("fig1") {
        banner("FIG 1 — input program");
        println!("{}", FIG1.trim());
    }
    if want("fig2") {
        banner("FIG 2 — Fortran D compiler output (interprocedural)");
        let out = Session::new(FIG1).compile().unwrap().into_output();
        println!("{}", pretty_all(&out.spmd));
    }
    if want("fig3") {
        banner("FIG 3 — run-time resolution output");
        let out = Session::new(FIG1)
            .strategy(Strategy::RuntimeResolution)
            .compile()
            .unwrap()
            .into_output();
        println!("{}", pretty_all(&out.spmd));
    }
    if want("tab1") {
        banner("TABLE 1 — interprocedural dataflow problems");
        println!("{}", fortrand_analysis::registry::render_table1());
        // Live solve statistics for the framework-backed rows, from a
        // compile of Fig. 4 (dynamic — not part of the golden table).
        let out = Session::new(FIG4).compile().unwrap().into_output();
        println!("framework solver runs (Fig. 4 compile):");
        for st in &out.report.pass_stats {
            println!("  {}", st.render());
        }
    }
    if want("passes") {
        banner("PASSES — framework solver statistics per compile");
        for (label, src, with_matrix, comm_opt) in [
            ("fig1", FIG1.to_string(), false, fortrand::CommOpt::Full),
            ("fig4", FIG4.to_string(), false, fortrand::CommOpt::Full),
            ("fig15", FIG15.to_string(), false, fortrand::CommOpt::Full),
            (
                "dgefa n=64 p=4",
                dgefa_source(64, 4),
                true,
                fortrand::CommOpt::Full,
            ),
            (
                "dgefa n=64 p=4 overlap",
                dgefa_source(64, 4),
                true,
                fortrand::CommOpt::Overlap,
            ),
        ] {
            let mut out = Session::new(src.as_str())
                .comm_opt(comm_opt)
                .compile()
                .unwrap()
                .into_output();
            // Execution cost rides along with the solver rows: one
            // simulated run per engine, folded into pass_stats.
            let mut init = std::collections::BTreeMap::new();
            if with_matrix {
                init.insert(out.spmd.interner.get("a").unwrap(), dgefa_matrix(64));
            }
            for opts in [
                ExecOptions::new().backend(Tree),
                ExecOptions::new().backend(Bytecode),
            ] {
                let machine = fortrand_machine::Machine::new(out.spmd.nprocs);
                let res = run_spmd_opts(&out.spmd, &machine, &init, &opts);
                record_exec_stats(&mut out.report, opts.backend.name(), &res.stats);
            }
            println!("{label}:");
            for st in &out.report.pass_stats {
                println!("  {}", st.render());
            }
        }
    }
    if want("fig4") {
        banner("FIG 4 — input program");
        println!("{}", FIG4.trim());
    }
    if want("fig5") {
        banner("FIG 5 — augmented call graph");
        let (prog, info) = fortrand_frontend::load_program(FIG4).unwrap();
        let acg = build_acg(&prog, &info).unwrap();
        for &u in &acg.topo {
            let name = prog.interner.name(u);
            println!("node {name}");
            for e in acg.calls.get(&u).into_iter().flatten() {
                let loops: Vec<String> = e
                    .loops
                    .iter()
                    .map(|l| format!("loop {}", prog.interner.name(l.var)))
                    .collect();
                println!(
                    "  call {} [{}]",
                    prog.interner.name(e.callee),
                    if loops.is_empty() {
                        "no enclosing loop".into()
                    } else {
                        loops.join(" > ")
                    }
                );
            }
        }
        println!("annotations:");
        for (&(u, f), &(lo, hi)) in &acg.formal_ranges {
            println!(
                "  formal {} of {} iterates {lo}:{hi}",
                prog.interner.name(f),
                prog.interner.name(u)
            );
        }
    }
    if want("fig7") {
        banner("FIG 7 — reaching decompositions for Fig. 4");
        let (prog, info) = fortrand_frontend::load_program(FIG4).unwrap();
        let acg = build_acg(&prog, &info).unwrap();
        let rd = reaching::compute(&prog, &info, &acg);
        for (unit, vars) in &rd.reaching {
            for (var, specs) in vars {
                let spellings: Vec<String> = specs.iter().map(|s| s.spelling()).collect();
                println!(
                    "Reaching({}) [{}] = {{ {} }}",
                    prog.interner.name(*unit),
                    prog.interner.name(*var),
                    spellings.join(", ")
                );
            }
        }
    }
    if want("fig8") {
        banner("FIG 8 — procedure cloning for Fig. 4");
        let out = Session::new(FIG4).compile().unwrap().into_output();
        for (orig, clones) in &out.report.clones {
            println!("{orig} -> {}", clones.join(", "));
        }
    }
    if want("fig10") {
        banner("FIG 10 — interprocedural compiler output for Fig. 4");
        let out = Session::new(FIG4).compile().unwrap().into_output();
        println!("{}", pretty_all(&out.spmd));
    }
    if want("fig11") {
        banner("FIG 11 — communication plan (static counts)");
        let out = Session::new(FIG4).compile().unwrap().into_output();
        println!(
            "vectorized section sends: {}   broadcasts: {}   element messages: {}",
            out.report.static_sends, out.report.static_bcasts, out.report.static_elem_msgs
        );
    }
    if want("fig12") {
        banner("FIG 12 — immediate instantiation output for Fig. 4");
        let out = Session::new(FIG4)
            .strategy(Strategy::Immediate)
            .compile()
            .unwrap()
            .into_output();
        println!("{}", pretty_all(&out.spmd));
    }
    if want("fig13") {
        banner("FIG 13 — overlap offsets for Fig. 4");
        let (prog, info) = fortrand_frontend::load_program(FIG4).unwrap();
        let acg = build_acg(&prog, &info).unwrap();
        let ov = fortrand::overlap::compute(&prog, &info, &acg);
        for ((unit, array), w) in &ov.widths {
            let w_str: Vec<String> = w.iter().map(|&(lo, hi)| format!("(-{lo},+{hi})")).collect();
            println!(
                "{}::{} overlap {}",
                prog.interner.name(*unit),
                prog.interner.name(*array),
                w_str.join(" x ")
            );
        }
    }
    if want("fig14") {
        banner("FIG 14 — parameterized overlaps (computed display form)");
        // The alternative of §5.6: instead of statically widened formal
        // declarations, pass each array's (lo, hi) bounds — known after
        // compiling the main program — as extra run-time arguments. We
        // render this view from the *computed* overlap table (the
        // underlying executable codegen uses statically widened bounds).
        let (prog, info) = fortrand_frontend::load_program(FIG1).unwrap();
        let acg = build_acg(&prog, &info).unwrap();
        let ov = fortrand::overlap::compute(&prog, &info, &acg);
        for u in &prog.units {
            let name = prog.interner.name(u.name).to_uppercase();
            let is_main = u.kind == fortrand_frontend::UnitKind::Program;
            for (&f, vi) in &info.unit(u.name).vars {
                if !vi.is_array() {
                    continue;
                }
                let fname = prog.interner.name(f).to_uppercase();
                let (lo_w, hi_w) = ov
                    .of(u.name, f)
                    .and_then(|w| w.first().copied())
                    .unwrap_or((0, 0));
                // Local block extent on 4 processors.
                let local = vi.dims[0] / 4;
                let (lo, hi) = (1 - lo_w, local + hi_w);
                if is_main {
                    println!("{name}: REAL {fname}({lo}:{hi}); call F1({fname},{lo},{hi})");
                } else if vi.is_formal {
                    println!(
                        "{name}: SUBROUTINE {name}({fname},{fname}lo,{fname}hi); \
                         REAL {fname}({fname}lo:{fname}hi)"
                    );
                }
            }
        }
    }
    if want("fig16") {
        banner("FIG 16 — dynamic decomposition optimization levels");
        for (label, lvl) in [
            ("16a no optimization", DynOptLevel::None),
            ("16b live decompositions", DynOptLevel::Live),
            ("16c loop-invariant", DynOptLevel::Hoist),
            ("16d array kills", DynOptLevel::Kills),
        ] {
            let out = Session::new(FIG15)
                .dyn_opt(lvl)
                .compile()
                .unwrap()
                .into_output();
            println!(
                "{label:<26} remap stmts: {}  mark-only: {}",
                out.report.static_remaps, out.report.static_marks
            );
            let main_text = pretty(&out.spmd, out.spmd.main);
            for line in main_text
                .lines()
                .filter(|l| l.contains("remap") || l.contains("mark"))
            {
                println!("    {}", line.trim());
            }
        }
    }
    if want("bench-resolution") {
        banner("EXP fig2-vs-fig3 — compile-time vs run-time resolution");
        for (label, ct, rt) in exp_resolution(&[64, 256, 1024], 4) {
            println!("{}", render_rows(&label, "strategy", &[ct, rt]));
        }
    }
    if want("bench-delayed") {
        banner("EXP fig10-vs-fig12 — delayed vs immediate instantiation");
        for (label, a, b) in exp_delayed(&[10, 50, 100], 4) {
            println!("{}", render_rows(&label, "strategy", &[a, b]));
        }
    }
    if want("bench-remap") {
        banner("EXP fig16-perf — remap optimization levels");
        for (label, rows) in exp_remap(&[4, 16], 4) {
            println!("{}", render_rows(&label, "level", &rows));
        }
    }
    if want("ablation-alpha") {
        banner("ABLATION — message startup cost α vs delayed instantiation win");
        println!(
            "{:<12} {:>16} {:>16} {:>8}",
            "alpha (us)", "interproc (us)", "immediate (us)", "ratio"
        );
        for (a, inter, imm) in fortrand_bench::ablation_alpha(&[0.0, 5.0, 25.0, 75.0, 300.0], 4) {
            println!(
                "{:<12} {:>16.1} {:>16.1} {:>8.2}",
                a,
                inter,
                imm,
                imm / inter
            );
        }
    }
    if want("sec8") {
        banner("SEC 8 — recompilation analysis scenarios");
        let base = Session::new(FIG4).compile().unwrap().into_output();
        let db0 = ModuleDb::from_report(&base.report);
        let scenarios = [
            ("no edit", FIG4.to_string()),
            ("local body edit in F2", FIG4.replace("0.5 *", "0.25 *")),
            (
                "stencil width edit in F2",
                FIG4.replace("Z(k+5,i)", "Z(k+7,i)")
                    .replace("do k = 1,95", "do k = 1,93"),
            ),
            (
                "distribution edit in P1",
                FIG4.replace("(BLOCK,:)", "(:,BLOCK)"),
            ),
        ];
        for (label, src) in scenarios {
            let out = Session::new(src.as_str()).compile().unwrap().into_output();
            let db1 = ModuleDb::from_report(&out.report);
            let plan = recompile::plan(&db0, &db1);
            println!(
                "{label:<28} recompiled {:>2}/{:<2} units  ({})",
                plan.recompile.len(),
                plan.recompile.len() + plan.skip.len(),
                plan.recompile
                    .iter()
                    .map(|(k, r)| format!("{k}:{r:?}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            );
        }
    }
    if want("compile-time") {
        banner("COMPILE TIME — sequential vs wavefront-parallel vs incremental");
        use fortrand::corpus::{wide_corpus, wide_corpus_edited};
        use fortrand::{CompileMode, IncrementalEngine};
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let procs = 24;
        let src = wide_corpus(procs, 512, 8);
        let edited = wide_corpus_edited(procs, 512, 8);
        println!("corpus: {procs} independent leaf procedures + root, host cores: {threads}");
        if threads == 1 {
            println!("(single-core host: the parallel schedule cannot beat sequential here)");
        }
        // Best-of-3 wall-clock for each mode.
        let best = |f: &mut dyn FnMut() -> std::time::Duration| (0..3).map(|_| f()).min().unwrap();
        let seq = best(&mut || {
            let t0 = std::time::Instant::now();
            compile(&src, &CompileOptions::default()).unwrap();
            t0.elapsed()
        });
        let par = best(&mut || {
            let t0 = std::time::Instant::now();
            compile(
                &src,
                &CompileOptions::builder()
                    .mode(CompileMode::Parallel(threads))
                    .build(),
            )
            .unwrap();
            t0.elapsed()
        });
        // Incremental: alternate base/edited so every timed compile is a
        // genuine one-leaf edit, not a no-op.
        let mut eng = IncrementalEngine::new();
        eng.compile(&src, &CompileOptions::default()).unwrap();
        let mut flip = false;
        let inc = best(&mut || {
            flip = !flip;
            let s: &str = if flip { &edited } else { &src };
            let t0 = std::time::Instant::now();
            eng.compile(s, &CompileOptions::default()).unwrap();
            t0.elapsed()
        });
        let last = eng
            .compile(
                if flip { &src } else { &edited },
                &CompileOptions::default(),
            )
            .unwrap();
        println!("sequential            {:>10.3} ms", seq.as_secs_f64() * 1e3);
        println!(
            "parallel (x{threads:<2})        {:>10.3} ms  ({:.2}x vs sequential)",
            par.as_secs_f64() * 1e3,
            seq.as_secs_f64() / par.as_secs_f64()
        );
        println!(
            "incremental edit      {:>10.3} ms  ({:.2}x vs sequential, {} recompiled / {} reused)",
            inc.as_secs_f64() * 1e3,
            seq.as_secs_f64() / inc.as_secs_f64(),
            last.recompiled.len(),
            last.reused.len()
        );
    }
    if want("sec9") {
        banner("SEC 9 — dgefa case study (n=64, strategies x processors)");
        for (p, rows) in exp_dgefa(64, &[1, 2, 4, 8]) {
            println!(
                "{}",
                render_rows(&format!("{p} processors"), "strategy", &rows)
            );
        }
        if json {
            let doc = fortrand_bench::comm_report(64, &[1, 2, 4, 8]);
            std::fs::write("BENCH_comm.json", doc.pretty()).expect("write BENCH_comm.json");
            println!("wrote BENCH_comm.json");
        }
        banner("SEC 9 — dgefa speedups (interprocedural, n=256)");
        for (p, s) in
            fortrand_bench::dgefa_speedups(256, &[1, 2, 4, 8, 16], Strategy::Interprocedural)
        {
            println!("p={p:<3} speedup {s:.2}");
        }
    }
    if want("sec9-gate") {
        banner("SEC 9 — dgefa communication-optimizer regression gate");
        let threshold_path = concat!(env!("CARGO_MANIFEST_DIR"), "/comm_threshold.json");
        let text = std::fs::read_to_string(threshold_path)
            .unwrap_or_else(|e| panic!("read {threshold_path}: {e}"));
        let limits = fortrand::json::parse(&text).expect("parse comm_threshold.json");
        let max_msgs = limits
            .get("dgefa_n64_p4_full_max_msgs")
            .and_then(|v| v.as_int())
            .expect("dgefa_n64_p4_full_max_msgs") as u64;
        let max_bytes = limits
            .get("dgefa_n64_p4_full_max_bytes")
            .and_then(|v| v.as_int())
            .expect("dgefa_n64_p4_full_max_bytes") as u64;
        let min_improve_x100 = limits
            .get("dgefa_n256_p8_overlap_min_improve_pct_x100")
            .and_then(|v| v.as_int())
            .expect("dgefa_n256_p8_overlap_min_improve_pct_x100");
        let n = 64;
        let p = 4;
        let src = dgefa_source(n, p);
        let mut init = std::collections::BTreeMap::new();
        init.insert("a", dgefa_matrix(n));
        let run = |level: fortrand::CommOpt| {
            fortrand_bench::simulate_comm(
                &src,
                Strategy::Interprocedural,
                DynOptLevel::Kills,
                p,
                &init,
                level,
            )
        };
        let off = run(fortrand::CommOpt::Off);
        let full = run(fortrand::CommOpt::Full);
        println!(
            "dgefa n={n} p={p}: off {} msgs / {} bytes, full {} msgs / {} bytes              (limits {max_msgs} msgs / {max_bytes} bytes)",
            off.total_msgs, off.total_bytes, full.total_msgs, full.total_bytes
        );
        let mut failed = false;
        if full.total_msgs > max_msgs {
            eprintln!(
                "GATE FAIL: full={} msgs exceeds threshold {max_msgs}",
                full.total_msgs
            );
            failed = true;
        }
        if full.total_bytes > max_bytes {
            eprintln!(
                "GATE FAIL: full={} bytes exceeds threshold {max_bytes}",
                full.total_bytes
            );
            failed = true;
        }
        if full.total_msgs > off.total_msgs || full.total_bytes > off.total_bytes {
            eprintln!("GATE FAIL: full must never exceed off");
            failed = true;
        }
        // Overlap gate, at benchmark scale: splitting operations into
        // post/wait pairs and pipelining the pivot broadcast must shave a
        // healthy fraction off the modeled time without touching traffic.
        let (ov_full, ov) = fortrand_bench::overlap_comparison(256, 8);
        let pct = fortrand_bench::overlap_improve_pct(&ov_full, &ov);
        println!(
            "dgefa n=256 p=8: full {:.1} us, overlap {:.1} us — {pct:.2}% faster              (minimum {:.2}%)",
            ov_full.time_us,
            ov.time_us,
            min_improve_x100 as f64 / 100.0
        );
        if ((pct * 100.0) as i128) < min_improve_x100 {
            eprintln!(
                "GATE FAIL: overlap improvement {pct:.2}% below threshold {:.2}%",
                min_improve_x100 as f64 / 100.0
            );
            failed = true;
        }
        if ov.total_msgs != ov_full.total_msgs || ov.total_bytes != ov_full.total_bytes {
            eprintln!(
                "GATE FAIL: overlap changed traffic ({} msgs / {} bytes vs full's {} / {})",
                ov.total_msgs, ov.total_bytes, ov_full.total_msgs, ov_full.total_bytes
            );
            failed = true;
        }
        if json {
            let doc = fortrand_bench::comm_report(64, &[4]);
            std::fs::write("BENCH_comm.json", doc.pretty()).expect("write BENCH_comm.json");
            println!("wrote BENCH_comm.json");
        }
        if failed {
            std::process::exit(1);
        }
        println!("gate passed");
    }
    if want("simtime") {
        banner("SIM TIME — bytecode VM vs tree-walker wall-clock");
        let timings = fortrand_bench::sim_experiments(3);
        print_timings(&timings);
        if json {
            let doc = fortrand_bench::sim_report_of(&timings);
            std::fs::write("BENCH_sim.json", doc.pretty()).expect("write BENCH_sim.json");
            println!("wrote BENCH_sim.json");
        }
    }
    if want("sim-gate") {
        banner("SIM TIME — bytecode engine speedup regression gate");
        let threshold_path = concat!(env!("CARGO_MANIFEST_DIR"), "/sim_threshold.json");
        let text = std::fs::read_to_string(threshold_path)
            .unwrap_or_else(|e| panic!("read {threshold_path}: {e}"));
        let limits = fortrand::json::parse(&text).expect("parse sim_threshold.json");
        let min_x100 = limits
            .get("dgefa_n256_p8_min_speedup_x100")
            .and_then(|v| v.as_int())
            .expect("dgefa_n256_p8_min_speedup_x100");
        let timings = fortrand_bench::sim_experiments(3);
        print_timings(&timings);
        let mut failed = false;
        for t in &timings {
            if !t.identical {
                eprintln!(
                    "GATE FAIL: {}: engines disagree on simulated output",
                    t.label
                );
                failed = true;
            }
        }
        let gate = timings
            .iter()
            .find(|t| t.label == "dgefa n=256 p=8")
            .expect("gate experiment");
        let x100 = (gate.speedup() * 100.0) as i128;
        println!(
            "dgefa n=256 p=8: bytecode speedup {:.2}x              (threshold {:.2}x)",
            gate.speedup(),
            min_x100 as f64 / 100.0
        );
        if x100 < min_x100 {
            eprintln!(
                "GATE FAIL: speedup {:.2}x below threshold {:.2}x",
                gate.speedup(),
                min_x100 as f64 / 100.0
            );
            failed = true;
        }
        if json {
            let doc = fortrand_bench::sim_report_of(&timings);
            std::fs::write("BENCH_sim.json", doc.pretty()).expect("write BENCH_sim.json");
            println!("wrote BENCH_sim.json");
        }
        if failed {
            std::process::exit(1);
        }
        println!("gate passed");
    }
    if want("vmprof") {
        banner("VM PROFILE — opcode mix and fusion coverage");
        let prof = fortrand_bench::vmprof_dgefa(64, 4);
        println!("{}:", prof.label);
        println!("{:<14} {:>12} {:>7}", "opcode", "dispatches", "%");
        for (op, count) in &prof.mix {
            println!(
                "{:<14} {:>12} {:>6.1}%",
                op,
                count,
                100.0 * *count as f64 / prof.engine_instrs.max(1) as f64
            );
        }
        println!(
            "dispatched {} + fused {} = {} retired; fusion coverage {:.1}%",
            prof.engine_instrs,
            prof.fused_instrs,
            prof.engine_instrs + prof.fused_instrs,
            100.0 * prof.coverage()
        );
        // Self-validation: the profiler counts every dispatch exactly
        // once, so the mix must sum to the engine's dispatch counter.
        if prof.mix_total() != prof.engine_instrs {
            eprintln!(
                "VMPROF SELF-CHECK FAIL: opcode mix sums to {} but the \
                 engine dispatched {}",
                prof.mix_total(),
                prof.engine_instrs
            );
            std::process::exit(1);
        }
        println!(
            "self-check passed: mix sums to engine_instrs ({})",
            prof.engine_instrs
        );
        if json {
            let doc = fortrand_bench::vmprof_report(&prof);
            std::fs::write("BENCH_vmprof.json", doc.pretty()).expect("write BENCH_vmprof.json");
            println!("wrote BENCH_vmprof.json");
        }
        if check {
            let threshold_path = concat!(env!("CARGO_MANIFEST_DIR"), "/sim_threshold.json");
            let text = std::fs::read_to_string(threshold_path)
                .unwrap_or_else(|e| panic!("read {threshold_path}: {e}"));
            let limits = fortrand::json::parse(&text).expect("parse sim_threshold.json");
            let min_x100 = limits
                .get("dgefa_min_fusion_coverage_x100")
                .and_then(|v| v.as_int())
                .expect("dgefa_min_fusion_coverage_x100");
            let x100 = (prof.coverage() * 100.0) as i128;
            println!(
                "fusion coverage {:.1}%              (floor {}%)",
                100.0 * prof.coverage(),
                min_x100
            );
            if x100 < min_x100 {
                eprintln!(
                    "CHECK FAIL: fusion coverage {x100}% below the {min_x100}% floor — \
                     a fusion pattern stopped firing on dgefa"
                );
                std::process::exit(1);
            }
            println!("check passed");
        }
    }
    if want("native") {
        banner("NATIVE — compiled node programs vs bytecode VM");
        if !rustc_available() {
            // Graceful skip: a runner without a toolchain still passes
            // `tables native --check` (the gate only fires where the
            // backend can actually run).
            println!("SKIP: no rustc toolchain on PATH — native backend unavailable");
        } else {
            let mut init = std::collections::BTreeMap::new();
            init.insert("a", dgefa_matrix(256));
            let t = fortrand_bench::native_experiment(
                "dgefa n=256 p=8",
                &dgefa_source(256, 8),
                8,
                &init,
                3,
            );
            println!(
                "{}: VM {} us, native {} us ({} us incl. emit+rustc) — {:.2}x, {} msgs / {} bytes, outputs {}",
                t.label,
                t.vm_wall_us,
                t.native_wall_us,
                t.build_wall_us,
                t.speedup(),
                t.msgs,
                t.bytes,
                if t.identical { "identical" } else { "DIVERGED" }
            );
            if json {
                let doc = fortrand_bench::native_report(&t);
                std::fs::write("BENCH_native.json", doc.pretty()).expect("write BENCH_native.json");
                println!("wrote BENCH_native.json");
            }
            if check {
                let threshold_path = concat!(env!("CARGO_MANIFEST_DIR"), "/native_threshold.json");
                let text = std::fs::read_to_string(threshold_path)
                    .unwrap_or_else(|e| panic!("read {threshold_path}: {e}"));
                let limits = fortrand::json::parse(&text).expect("parse native_threshold.json");
                let min_x100 = limits
                    .get("dgefa_n256_p8_min_speedup_x100")
                    .and_then(|v| v.as_int())
                    .expect("dgefa_n256_p8_min_speedup_x100");
                let mut failed = false;
                if !t.identical {
                    eprintln!(
                        "GATE FAIL: {}: native outputs diverged from the bytecode VM",
                        t.label
                    );
                    failed = true;
                }
                let x100 = (t.speedup() * 100.0) as i128;
                println!(
                    "{}: native speedup {:.2}x              (threshold {:.2}x)",
                    t.label,
                    t.speedup(),
                    min_x100 as f64 / 100.0
                );
                if x100 < min_x100 {
                    eprintln!(
                        "GATE FAIL: native speedup {:.2}x below threshold {:.2}x",
                        t.speedup(),
                        min_x100 as f64 / 100.0
                    );
                    failed = true;
                }
                if failed {
                    std::process::exit(1);
                }
                println!("gate passed");
            }
        }
    }
    if want("weakscale") {
        banner("WEAK SCALING — event machine, p=128..4096");
        let dgefa = fortrand_bench::weakscale_dgefa(&fortrand_bench::SCALE_DGEFA_PROCS);
        let relax = fortrand_bench::weakscale_relax(&fortrand_bench::SCALE_RELAX_PROCS);
        println!(
            "{}",
            fortrand_bench::render_scale("dgefa n=p (one cyclic column per rank)", &dgefa)
        );
        println!(
            "{}",
            fortrand_bench::render_scale("relax n=16p (16 block points per rank)", &relax)
        );
        if json {
            let doc = fortrand_bench::scale_report(&dgefa, &relax);
            std::fs::write("BENCH_scale.json", doc.pretty()).expect("write BENCH_scale.json");
            println!("wrote BENCH_scale.json");
        }
    }
    if want("scale-gate") {
        banner("WEAK SCALING — event-machine wall-clock regression gate");
        let threshold_path = concat!(env!("CARGO_MANIFEST_DIR"), "/scale_threshold.json");
        let text = std::fs::read_to_string(threshold_path)
            .unwrap_or_else(|e| panic!("read {threshold_path}: {e}"));
        let limits = fortrand::json::parse(&text).expect("parse scale_threshold.json");
        let limit = |key: &str| limits.get(key).and_then(|v| v.as_int()).expect(key) as u64;
        let dgefa_max_wall = limit("dgefa_p1024_max_wall_ms");
        let relax_max_wall = limit("relax_p4096_max_wall_ms");
        let dgefa = fortrand_bench::weakscale_dgefa(&fortrand_bench::SCALE_DGEFA_PROCS);
        let relax = fortrand_bench::weakscale_relax(&fortrand_bench::SCALE_RELAX_PROCS);
        println!(
            "{}",
            fortrand_bench::render_scale("dgefa n=p (one cyclic column per rank)", &dgefa)
        );
        println!(
            "{}",
            fortrand_bench::render_scale("relax n=16p (16 block points per rank)", &relax)
        );
        let mut failed = false;
        let d1024 = dgefa
            .iter()
            .find(|pt| pt.nprocs == 1024)
            .expect("dgefa p=1024 point");
        println!(
            "dgefa p=1024: wall {} ms              (budget {dgefa_max_wall} ms)",
            d1024.wall_ms
        );
        if d1024.wall_ms > dgefa_max_wall {
            eprintln!(
                "GATE FAIL: dgefa p=1024 wall {} ms exceeds budget {dgefa_max_wall} ms",
                d1024.wall_ms
            );
            failed = true;
        }
        let r4096 = relax
            .iter()
            .find(|pt| pt.nprocs == 4096)
            .expect("relax p=4096 point");
        println!(
            "relax p=4096: wall {} ms              (budget {relax_max_wall} ms)",
            r4096.wall_ms
        );
        if r4096.wall_ms > relax_max_wall {
            eprintln!(
                "GATE FAIL: relax p=4096 wall {} ms exceeds budget {relax_max_wall} ms",
                r4096.wall_ms
            );
            failed = true;
        }
        // Sanity on the curves themselves: every point must actually
        // communicate, and the stencil's per-rank traffic must stay flat
        // (weak scaling: messages grow linearly with p, not faster).
        for pt in dgefa.iter().chain(&relax) {
            if pt.msgs == 0 {
                eprintln!("GATE FAIL: p={} ran without communication", pt.nprocs);
                failed = true;
            }
        }
        let (r0, rn) = (&relax[0], &relax[relax.len() - 1]);
        let per_rank0 = r0.msgs as f64 / r0.nprocs as f64;
        let per_rankn = rn.msgs as f64 / rn.nprocs as f64;
        if per_rankn > 2.0 * per_rank0 {
            eprintln!(
                "GATE FAIL: relax per-rank messages grew {per_rank0:.2} -> {per_rankn:.2} \
                 (weak scaling must keep them flat)"
            );
            failed = true;
        }
        if json {
            let doc = fortrand_bench::scale_report(&dgefa, &relax);
            std::fs::write("BENCH_scale.json", doc.pretty()).expect("write BENCH_scale.json");
            println!("wrote BENCH_scale.json");
        }
        if failed {
            std::process::exit(1);
        }
        println!("gate passed");
    }
    if want("sec9-check") {
        banner("SEC 9 — dgefa residual check vs sequential");
        let n = 32;
        let src = dgefa_source(n, 4);
        let out = Session::new(src.as_str()).compile().unwrap().into_output();
        let machine = fortrand_machine::Machine::new(4);
        let mut init = std::collections::BTreeMap::new();
        init.insert(out.spmd.interner.get("a").unwrap(), dgefa_matrix(n));
        let res = fortrand_bench::run_spmd(&out.spmd, &machine, &init);
        println!(
            "simulated LU (n={n}, p=4): time {:.3} ms, {} msgs, {} bytes",
            res.stats.time_ms(),
            res.stats.total_msgs,
            res.stats.total_bytes
        );
        let _ = Row::from_stats("x", &res.stats);
    }
    if want("serve") {
        banner("SERVE — compile-as-a-service load test (1000 clients)");
        let cfg = fortrand_serve::LoadConfig::default();
        let report = fortrand_serve::run_load(&cfg);
        print_serve_report(&report);
        if json {
            std::fs::write("BENCH_serve.json", report.to_json().pretty())
                .expect("write BENCH_serve.json");
            println!("wrote BENCH_serve.json");
        }
        if report.failures > 0 {
            eprintln!("SERVE FAIL: {} failed requests", report.failures);
            std::process::exit(1);
        }
    }
    if want("serve-gate") {
        banner("SERVE — daemon throughput/latency regression gate (64 clients)");
        let threshold_path = concat!(env!("CARGO_MANIFEST_DIR"), "/serve_threshold.json");
        let text = std::fs::read_to_string(threshold_path)
            .unwrap_or_else(|e| panic!("read {threshold_path}: {e}"));
        let limits = fortrand::json::parse(&text).expect("parse serve_threshold.json");
        let limit = |key: &str| limits.get(key).and_then(|v| v.as_int()).expect(key) as u64;
        let cfg = fortrand_serve::LoadConfig {
            clients: 64,
            concurrency: 16,
            ..fortrand_serve::LoadConfig::default()
        };
        let report = fortrand_serve::run_load(&cfg);
        print_serve_report(&report);
        let mut failed = false;
        if report.failures > 0 {
            eprintln!("GATE FAIL: {} failed requests (must be 0)", report.failures);
            failed = true;
        }
        let min_tp = limit("min_throughput_x100");
        if report.throughput_x100 < min_tp {
            eprintln!(
                "GATE FAIL: throughput {}.{:02} compiles/s below threshold {}.{:02}",
                report.throughput_x100 / 100,
                report.throughput_x100 % 100,
                min_tp / 100,
                min_tp % 100
            );
            failed = true;
        }
        let max_p99 = limit("max_p99_us");
        if report.p99_us > max_p99 {
            eprintln!(
                "GATE FAIL: p99 compile latency {} us exceeds budget {max_p99} us",
                report.p99_us
            );
            failed = true;
        }
        let min_hit = limit("min_hit_rate_x100");
        if report.hit_rate_x100 < min_hit {
            eprintln!(
                "GATE FAIL: cross-session hit rate {}% below threshold {}%",
                report.hit_rate_x100, min_hit
            );
            failed = true;
        }
        let min_speedup = limit("min_speedup_x100");
        if report.speedup_x100 < min_speedup {
            eprintln!(
                "GATE FAIL: multi-client speedup {:.2}x below threshold {:.2}x",
                report.speedup_x100 as f64 / 100.0,
                min_speedup as f64 / 100.0
            );
            failed = true;
        }
        if json {
            std::fs::write("BENCH_serve.json", report.to_json().pretty())
                .expect("write BENCH_serve.json");
            println!("wrote BENCH_serve.json");
        }
        if failed {
            std::process::exit(1);
        }
        println!("gate passed");
    }
    if let Some(path) = trace_path {
        write_trace_artifact(&path);
    }
}

fn print_serve_report(report: &fortrand_serve::LoadReport) {
    println!(
        "{} clients, {} compiles: {} failures",
        report.clients, report.compiles, report.failures
    );
    println!(
        "multi    : wall {:>9} us, throughput {:>8}.{:02} compiles/s, hit rate {}%",
        report.wall_us,
        report.throughput_x100 / 100,
        report.throughput_x100 % 100,
        report.hit_rate_x100
    );
    println!(
        "baseline : wall {:>9} us, throughput {:>8}.{:02} compiles/s",
        report.baseline_wall_us,
        report.baseline_throughput_x100 / 100,
        report.baseline_throughput_x100 % 100
    );
    println!(
        "latency  : p50 {} us, p95 {} us, p99 {} us; speedup {:.2}x over sequential",
        report.p50_us,
        report.p95_us,
        report.p99_us,
        report.speedup_x100 as f64 / 100.0
    );
}

/// Compiles and runs dgefa n=256 p=8 with tracing on, streams the Chrome
/// trace to `path`, and self-validates the file (nonzero exit when the
/// export is malformed — this is the CI check for the trace artifact).
fn write_trace_artifact(path: &str) {
    banner("TRACE — dgefa n=256 p=8, Chrome trace-event export");
    let n = 256;
    let p = 8;
    let src = dgefa_source(n, p);
    let file = std::fs::File::create(path).unwrap_or_else(|e| {
        eprintln!("create {path}: {e}");
        std::process::exit(1);
    });
    let compiled = fortrand::Session::new(src.as_str())
        .strategy(Strategy::Interprocedural)
        .trace(fortrand::ChromeTraceSink::new(std::io::BufWriter::new(
            file,
        )))
        .compile()
        .expect("traced compile");
    let mut init = std::collections::BTreeMap::new();
    init.insert(compiled.spmd().interner.get("a").unwrap(), dgefa_matrix(n));
    let res = compiled.run(&init).expect("traced run");
    println!(
        "traced run: simulated {:.3} ms, {} msgs, {} bytes",
        res.stats.time_ms(),
        res.stats.total_msgs,
        res.stats.total_bytes
    );
    compiled.finish_trace().expect("flush trace");
    let text = std::fs::read_to_string(path).expect("re-read trace file");
    match fortrand_trace::chrome::validate(&text) {
        Ok(s) => {
            let compile_tracks = s.tracks.iter().filter(|t| t.0 == 1).count();
            let machine_tracks = s.tracks.iter().filter(|t| t.0 == 2).count();
            println!(
                "trace OK: {} events ({} spans, {} instants, {} counters) on \
                 {} compile + {} machine tracks -> {path}",
                s.events, s.spans, s.instants, s.counters, compile_tracks, machine_tracks
            );
            if compile_tracks == 0 || machine_tracks == 0 {
                eprintln!("TRACE INVALID: missing compile or machine timeline");
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("TRACE INVALID: {e}");
            std::process::exit(1);
        }
    }
}

fn banner(title: &str) {
    println!("\n==== {title} ====");
}

fn print_timings(timings: &[fortrand_bench::EngineTiming]) {
    println!(
        "{:<22} {:>14} {:>14} {:>9} {:>14}  outputs",
        "experiment", "tree (us)", "bytecode (us)", "speedup", "vm instrs"
    );
    for t in timings {
        println!(
            "{:<22} {:>14} {:>14} {:>8.2}x {:>14}  {}",
            t.label,
            t.tree_wall_us,
            t.bytecode_wall_us,
            t.speedup(),
            t.bytecode_instrs,
            if t.identical { "identical" } else { "DIVERGED" }
        );
    }
}
