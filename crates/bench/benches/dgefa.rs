//! Criterion bench for the §9 dgefa case study: LU factorization under
//! the three strategies at several processor counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fortrand::corpus::{dgefa_matrix, dgefa_source};
use fortrand::{DynOptLevel, Strategy};
use fortrand_bench::simulate_with;
use std::collections::BTreeMap;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("dgefa");
    g.sample_size(10);
    let n = 48i64;
    let mut init = BTreeMap::new();
    init.insert("a", dgefa_matrix(n));
    for &p in &[1usize, 4] {
        let src = dgefa_source(n, p);
        for (name, strategy) in [
            ("interprocedural", Strategy::Interprocedural),
            ("immediate", Strategy::Immediate),
            ("runtime-res", Strategy::RuntimeResolution),
        ] {
            // Runtime resolution at n=48 is very slow by design; bench a
            // smaller instance for it.
            let (bn, bsrc, binit) = if strategy == Strategy::RuntimeResolution {
                let bn = 16i64;
                let mut bi = BTreeMap::new();
                bi.insert("a", dgefa_matrix(bn));
                (bn, dgefa_source(bn, p), bi)
            } else {
                (n, src.clone(), init.clone())
            };
            let s = simulate_with(&bsrc, strategy, DynOptLevel::Kills, p, &binit);
            eprintln!(
                "[sim] dgefa n={bn} p={p} {name}: {:.3} ms, {} msgs, {} bytes",
                s.time_ms(),
                s.total_msgs,
                s.total_bytes
            );
            g.bench_with_input(
                BenchmarkId::new(format!("{name}/p{p}"), bn),
                &bsrc,
                |b, src| {
                    b.iter(|| simulate_with(src, strategy, DynOptLevel::Kills, p, &binit));
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
