//! Criterion bench for experiment `fig2-vs-fig3`: compile-time code
//! generation vs run-time resolution on the Fig. 1 pipeline pattern. The
//! measured quantity is end-to-end simulation wall time; the simulated
//! machine metrics (the paper's axis) are printed once per configuration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fortrand::corpus::relax_source;
use fortrand::{DynOptLevel, Strategy};
use fortrand_bench::simulate;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("resolution");
    g.sample_size(10);
    for &n in &[64i64, 256] {
        let src = relax_source(n, 5, 1, 4);
        for (name, strategy) in [
            ("compile-time", Strategy::Interprocedural),
            ("runtime-res", Strategy::RuntimeResolution),
        ] {
            let s = simulate(&src, strategy, DynOptLevel::Kills, 4);
            eprintln!(
                "[sim] resolution n={n} {name}: {:.3} ms, {} msgs, {} bytes",
                s.time_ms(),
                s.total_msgs,
                s.total_bytes
            );
            g.bench_with_input(BenchmarkId::new(name, n), &src, |b, src| {
                b.iter(|| simulate(src, strategy, DynOptLevel::Kills, 4));
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
