//! Execution-engine wall-clock: the bytecode VM vs the reference
//! tree-walker on the dgefa case study (n=64, p=4). The `sim-gate`
//! tables subcommand enforces the speedup on the larger n=256 instance;
//! this bench tracks the small instance with Criterion statistics.

use criterion::{criterion_group, criterion_main, Criterion};
use fortrand::corpus::{dgefa_matrix, dgefa_source};
use fortrand::{Bytecode, CompileOptions, ExecOptions, Strategy, Tree};
use fortrand_bench::{compile, run_spmd_opts};
use fortrand_machine::Machine;
use std::collections::BTreeMap;

fn bench_engines(c: &mut Criterion) {
    let n = 64;
    let p = 4;
    let out = compile(
        &dgefa_source(n, p),
        &CompileOptions::builder()
            .strategy(Strategy::Interprocedural)
            .nprocs(p)
            .build(),
    )
    .unwrap();
    let mut init = BTreeMap::new();
    init.insert(out.spmd.interner.get("a").unwrap(), dgefa_matrix(n));

    let mut g = c.benchmark_group("sim_time");
    g.sample_size(10);
    for (name, opts) in [
        ("dgefa_n64_p4_tree", ExecOptions::new().backend(Tree)),
        (
            "dgefa_n64_p4_bytecode",
            ExecOptions::new().backend(Bytecode),
        ),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let machine = Machine::new(p);
                run_spmd_opts(&out.spmd, &machine, &init, &opts)
                    .stats
                    .time_us
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
