//! Compile-time benchmark for the compilation driver itself: the
//! sequential reverse-topological sweep vs the wavefront-parallel
//! schedule vs an incremental one-leaf-edit recompile, over the wide
//! multi-procedure corpus ([`fortrand::corpus::wide_corpus`]).
//!
//! The parallel schedule only pays off with >1 host core; the incremental
//! engine pays off everywhere (it skips code generation for every unit
//! whose source and consumed facts are unchanged).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fortrand::corpus::{wide_corpus, wide_corpus_edited};
use fortrand::{CompileMode, CompileOptions, IncrementalEngine};
use fortrand_bench::compile;

fn bench_compile_time(c: &mut Criterion) {
    let mut g = c.benchmark_group("compile-time");
    g.sample_size(10);
    let procs = 16;
    let src = wide_corpus(procs, 256, 8);
    let edited = wide_corpus_edited(procs, 256, 8);

    g.bench_with_input(BenchmarkId::new("sequential", procs), &src, |b, src| {
        b.iter(|| compile(src, &CompileOptions::default()).unwrap())
    });

    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    g.bench_with_input(BenchmarkId::new("parallel", threads), &src, |b, src| {
        b.iter(|| {
            compile(
                src,
                &CompileOptions::builder()
                    .mode(CompileMode::Parallel(threads))
                    .build(),
            )
            .unwrap()
        })
    });

    g.bench_with_input(
        BenchmarkId::new("incremental-edit", procs),
        &src,
        |b, src| {
            let mut eng = IncrementalEngine::new();
            eng.compile(src, &CompileOptions::default()).unwrap();
            // Alternate base/edited so every iteration is a real one-leaf edit.
            let mut flip = false;
            b.iter(|| {
                flip = !flip;
                let s: &str = if flip { &edited } else { src };
                eng.compile(s, &CompileOptions::default()).unwrap()
            })
        },
    );
    g.finish();
}

criterion_group!(benches, bench_compile_time);
criterion_main!(benches);
