//! Criterion bench for the compiler itself: full-pipeline compilation
//! throughput on the corpus programs (parse → interprocedural analysis →
//! cloning → code generation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fortrand::corpus::dgefa_source;
use fortrand::{CompileOptions, Strategy};
use fortrand_analysis::fixtures::{FIG1, FIG15, FIG4};
use fortrand_bench::compile;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("compile");
    let dgefa = dgefa_source(64, 8);
    for (name, src) in [
        ("fig1", FIG1),
        ("fig4", FIG4),
        ("fig15", FIG15),
        ("dgefa", dgefa.as_str()),
    ] {
        g.bench_with_input(BenchmarkId::new("interprocedural", name), &src, |b, src| {
            b.iter(|| compile(src, &CompileOptions::default()).unwrap());
        });
        g.bench_with_input(BenchmarkId::new("runtime-res", name), &src, |b, src| {
            b.iter(|| {
                compile(
                    src,
                    &CompileOptions::builder()
                        .strategy(Strategy::RuntimeResolution)
                        .build(),
                )
                .unwrap()
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
