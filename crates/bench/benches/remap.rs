//! Criterion bench for experiment `fig16-perf`: dynamic-decomposition
//! optimization levels over the Fig. 15 time-step loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fortrand::corpus::fig15_source;
use fortrand::{DynOptLevel, Strategy};
use fortrand_bench::simulate;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("remap_optimization");
    g.sample_size(10);
    let src = fig15_source(8, 4);
    for (name, lvl) in [
        ("16a-none", DynOptLevel::None),
        ("16b-live", DynOptLevel::Live),
        ("16c-hoist", DynOptLevel::Hoist),
        ("16d-kills", DynOptLevel::Kills),
    ] {
        let s = simulate(&src, Strategy::Interprocedural, lvl, 4);
        eprintln!(
            "[sim] remap {name}: {:.3} ms, {} remaps, {} msgs",
            s.time_ms(),
            s.total_remaps,
            s.total_msgs
        );
        g.bench_with_input(BenchmarkId::new(name, 8), &src, |b, src| {
            b.iter(|| simulate(src, Strategy::Interprocedural, lvl, 4));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
