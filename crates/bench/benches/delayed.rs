//! Criterion bench for experiment `fig10-vs-fig12`: delayed vs immediate
//! instantiation across the enclosing trip count (§5.5's 1-vs-100-message
//! contrast).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fortrand::corpus::fig4_source;
use fortrand::{DynOptLevel, Strategy};
use fortrand_bench::simulate;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("delayed_instantiation");
    g.sample_size(10);
    for &trips in &[20i64, 100] {
        let src = fig4_source(trips, 4);
        for (name, strategy) in [
            ("interprocedural", Strategy::Interprocedural),
            ("immediate", Strategy::Immediate),
        ] {
            let s = simulate(&src, strategy, DynOptLevel::Kills, 4);
            eprintln!(
                "[sim] delayed trips={trips} {name}: {:.3} ms, {} msgs",
                s.time_ms(),
                s.total_msgs
            );
            g.bench_with_input(BenchmarkId::new(name, trips), &src, |b, src| {
                b.iter(|| simulate(src, strategy, DynOptLevel::Kills, 4));
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
