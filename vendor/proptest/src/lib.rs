//! Vendored minimal property-testing framework, API-compatible with the
//! subset of crates.io `proptest` this workspace uses.
//!
//! The build environment has no registry access, so the test-only external
//! dependencies are vendored as small, deterministic re-implementations.
//! Differences from real proptest, by design:
//!
//! - **No shrinking.** A failing case reports its generated inputs verbatim.
//! - **Deterministic seeding.** The RNG is seeded from the test function
//!   name, so every run (and every machine) explores the same cases.
//! - **Regex strategies** support the subset actually used here: a sequence
//!   of char-class / literal atoms, each with an optional `{m,n}` repeat.
//!
//! Supported surface: `Strategy` (`prop_map`, `prop_filter`), `Just`,
//! numeric `Range`/`RangeInclusive` strategies, tuple strategies (arity ≤ 8),
//! `prop::collection::vec`, `proptest::bool::ANY`, `any::<bool>()`,
//! `prop_oneof!`, `proptest!` (with optional `#![proptest_config(..)]`),
//! `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`, `TestCaseError`,
//! `ProptestConfig`.

pub mod rng {
    /// Deterministic splitmix64 RNG. Not cryptographic; test-case
    /// generation only.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_seed(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }

        /// Seed from a test name (FNV-1a), so each test gets a stable,
        /// distinct stream.
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            Self::from_seed(h)
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }

        /// Uniform in `[lo, hi)` (half-open); panics on an empty range.
        pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
            assert!(lo < hi, "empty strategy range {lo}..{hi}");
            let span = (hi as i128 - lo as i128) as u128;
            let off = ((self.next_u64() as u128 * span) >> 64) as i128;
            (lo as i128 + off) as i64
        }

        pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
            assert!(lo < hi, "empty strategy range {lo}..{hi}");
            lo + self.below((hi - lo) as u64) as usize
        }

        /// Uniform in `[lo, hi)`.
        pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
            assert!(lo < hi, "empty strategy range {lo}..{hi}");
            let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            lo + (hi - lo) * unit
        }

        pub fn gen_bool(&mut self) -> bool {
            self.next_u64() & 1 == 1
        }
    }
}

pub mod test_runner {
    use std::fmt;

    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required per test.
        pub cases: u32,
        /// Total strategy rejections tolerated before the test aborts.
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 64,
                max_global_rejects: 65536,
            }
        }
    }

    /// Error produced by a failing property body (via `prop_assert!` or an
    /// explicit `TestCaseError::fail`).
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        Fail(String),
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            }
        }
    }

    impl std::error::Error for TestCaseError {}
}

pub mod strategy {
    use crate::rng::TestRng;
    use std::fmt::Debug;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A generator of test values. `None` from [`Strategy::gen_value`] means
    /// the candidate was rejected (e.g. by `prop_filter`) and the runner
    /// should retry with fresh randomness.
    pub trait Strategy {
        type Value: Debug;

        fn gen_value(&self, rng: &mut TestRng) -> Option<Self::Value>;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            U: Debug,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        fn prop_filter<W, F>(self, _whence: W, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            W: Into<String>,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn gen_value(&self, rng: &mut TestRng) -> Option<Self::Value> {
            (**self).gen_value(rng)
        }
    }

    /// A strategy erased behind a box, as produced by `prop_oneof!`.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    /// Boxing helper used by `prop_oneof!` so type inference unifies the
    /// arms' value types.
    pub fn boxed<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
        Box::new(s)
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn gen_value(&self, _rng: &mut TestRng) -> Option<T> {
            Some(self.0.clone())
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        U: Debug,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn gen_value(&self, rng: &mut TestRng) -> Option<U> {
            self.inner.gen_value(rng).map(&self.f)
        }
    }

    pub struct Filter<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn gen_value(&self, rng: &mut TestRng) -> Option<S::Value> {
            self.inner.gen_value(rng).filter(|v| (self.f)(v))
        }
    }

    /// Uniform choice among boxed alternative strategies (`prop_oneof!`).
    pub struct OneOf<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T: Debug> OneOf<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            OneOf { arms }
        }
    }

    impl<T: Debug> Strategy for OneOf<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> Option<T> {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].gen_value(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($t:ty, $via:ident) => {
            impl Strategy for Range<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> Option<$t> {
                    Some(rng.$via(self.start as _, self.end as _) as $t)
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> Option<$t> {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range {lo}..={hi}");
                    if lo == hi {
                        return Some(lo);
                    }
                    let v = rng.$via(lo as _, hi as _);
                    // Fold the excluded endpoint back in with one extra draw.
                    Some(if rng.gen_bool() { hi } else { v as $t })
                }
            }
        };
    }

    int_range_strategy!(i64, range_i64);
    int_range_strategy!(i32, range_i64);
    int_range_strategy!(u32, range_i64);
    int_range_strategy!(u64, range_i64);
    int_range_strategy!(usize, range_usize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn gen_value(&self, rng: &mut TestRng) -> Option<f64> {
            Some(rng.range_f64(self.start, self.end))
        }
    }

    macro_rules! tuple_strategy {
        ($($s:ident . $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn gen_value(&self, rng: &mut TestRng) -> Option<Self::Value> {
                    Some(($(self.$idx.gen_value(rng)?,)+))
                }
            }
        };
    }

    tuple_strategy!(A.0);
    tuple_strategy!(A.0, B.1);
    tuple_strategy!(A.0, B.1, C.2);
    tuple_strategy!(A.0, B.1, C.2, D.3);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);

    // ----- regex-subset string strategies ---------------------------------

    /// One parsed regex atom: a set of inclusive char ranges plus a repeat
    /// count range (inclusive).
    struct Atom {
        ranges: Vec<(char, char)>,
        min: usize,
        max: usize,
    }

    fn unescape(c: char) -> char {
        match c {
            'n' => '\n',
            't' => '\t',
            'r' => '\r',
            other => other,
        }
    }

    /// Parse the regex subset used by this workspace's tests: a sequence of
    /// `[class]` or literal-char atoms, each optionally followed by `{m,n}`
    /// or `{m}`. Panics on anything else, with the offending pattern.
    fn parse_pattern(pat: &str) -> Vec<Atom> {
        let chars: Vec<char> = pat.chars().collect();
        let mut i = 0;
        let mut atoms = Vec::new();
        while i < chars.len() {
            let ranges = if chars[i] == '[' {
                i += 1;
                let mut ranges = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    let mut c = chars[i];
                    if c == '\\' {
                        i += 1;
                        c = unescape(chars[i]);
                    }
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let mut hi = chars[i + 2];
                        i += 2;
                        if hi == '\\' {
                            i += 1;
                            hi = unescape(chars[i]);
                        }
                        ranges.push((c, hi));
                    } else {
                        ranges.push((c, c));
                    }
                    i += 1;
                }
                assert!(
                    i < chars.len(),
                    "unterminated char class in regex strategy {pat:?}"
                );
                i += 1; // consume ']'
                ranges
            } else {
                let mut c = chars[i];
                if c == '\\' {
                    i += 1;
                    c = unescape(chars[i]);
                }
                assert!(
                    !"(|)*+?".contains(c),
                    "unsupported regex construct {c:?} in strategy pattern {pat:?}"
                );
                i += 1;
                vec![(c, c)]
            };
            let (min, max) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unterminated repeat in regex strategy {pat:?}"))
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse().expect("bad repeat lower bound"),
                        n.trim().parse().expect("bad repeat upper bound"),
                    ),
                    None => {
                        let m = body.trim().parse().expect("bad repeat count");
                        (m, m)
                    }
                }
            } else {
                (1, 1)
            };
            atoms.push(Atom { ranges, min, max });
        }
        atoms
    }

    fn gen_from_atoms(atoms: &[Atom], rng: &mut TestRng) -> String {
        let mut out = String::new();
        for atom in atoms {
            let n = rng.range_usize(atom.min, atom.max + 1);
            let total: u64 = atom
                .ranges
                .iter()
                .map(|&(lo, hi)| (hi as u64) - (lo as u64) + 1)
                .sum();
            for _ in 0..n {
                let mut k = rng.below(total);
                for &(lo, hi) in &atom.ranges {
                    let span = (hi as u64) - (lo as u64) + 1;
                    if k < span {
                        out.push(char::from_u32(lo as u32 + k as u32).unwrap());
                        break;
                    }
                    k -= span;
                }
            }
        }
        out
    }

    /// String-pattern strategies: `"[a-z][a-z0-9]{0,6}"` etc. The pattern
    /// is re-parsed per generation; these run in tests where that cost is
    /// irrelevant.
    impl Strategy for &str {
        type Value = String;
        fn gen_value(&self, rng: &mut TestRng) -> Option<String> {
            Some(gen_from_atoms(&parse_pattern(self), rng))
        }
    }

    /// Lazily-constructed strategy wrapper (parity with real proptest's
    /// `LazyJust`); also handy inside `prop_oneof!`.
    pub struct LazyJust<T, F: Fn() -> T> {
        f: F,
        _marker: PhantomData<T>,
    }

    impl<T: Debug, F: Fn() -> T> LazyJust<T, F> {
        pub fn new(f: F) -> Self {
            LazyJust {
                f,
                _marker: PhantomData,
            }
        }
    }

    impl<T: Debug, F: Fn() -> T> Strategy for LazyJust<T, F> {
        type Value = T;
        fn gen_value(&self, _rng: &mut TestRng) -> Option<T> {
            Some((self.f)())
        }
    }
}

pub mod collection {
    use crate::rng::TestRng;
    use crate::strategy::Strategy;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive element-count range for collection strategies.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        pub lo: usize,
        pub hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec-size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `prop::collection::vec(strategy, len)` — `len` may be an exact
    /// `usize` or a `Range`/`RangeInclusive`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
            let n = rng.range_usize(self.size.lo, self.size.hi + 1);
            let mut out = Vec::with_capacity(n);
            for _ in 0..n {
                out.push(self.element.gen_value(rng)?);
            }
            Some(out)
        }
    }
}

pub mod bool {
    use crate::rng::TestRng;
    use crate::strategy::Strategy;

    #[derive(Clone, Copy, Debug)]
    pub struct BoolStrategy;

    /// `proptest::bool::ANY`
    pub const ANY: BoolStrategy = BoolStrategy;

    impl Strategy for BoolStrategy {
        type Value = bool;
        fn gen_value(&self, rng: &mut TestRng) -> Option<bool> {
            Some(rng.gen_bool())
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;

    /// Types with a canonical strategy, reachable via [`crate::any`].
    pub trait Arbitrary: Sized {
        type Strategy: Strategy<Value = Self>;
        fn arbitrary() -> Self::Strategy;
    }

    impl Arbitrary for bool {
        type Strategy = crate::bool::BoolStrategy;
        fn arbitrary() -> Self::Strategy {
            crate::bool::ANY
        }
    }
}

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: arbitrary::Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// The `prop::` module path used by tests (`prop::collection::vec`, ...).
pub mod prop {
    pub use crate::bool;
    pub use crate::collection;
}

pub mod prelude {
    pub use crate::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![$($crate::strategy::boxed($arm)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            __a == __b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), __a, __b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            __a == __b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n{}",
            stringify!($a), stringify!($b), __a, __b, format!($($fmt)+)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            __a != __b,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            __a
        );
    }};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = ($cfg:expr);
     $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
     )*
    ) => {
        $(
            $(#[$meta])*
            #[allow(unused_labels, clippy::redundant_closure_call)]
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::rng::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                let mut __case: u32 = 0;
                let mut __rejects: u32 = 0;
                'outer: while __case < __cfg.cases {
                    $(
                        let $arg = match $crate::strategy::Strategy::gen_value(&($strat), &mut __rng) {
                            ::std::option::Option::Some(v) => v,
                            ::std::option::Option::None => {
                                __rejects += 1;
                                if __rejects > __cfg.max_global_rejects {
                                    panic!(
                                        "proptest {}: too many strategy rejections ({})",
                                        stringify!($name), __rejects
                                    );
                                }
                                continue 'outer;
                            }
                        };
                    )*
                    let __inputs: ::std::string::String = {
                        let mut __s = ::std::string::String::new();
                        $(
                            __s.push_str(&format!("  {} = {:?}\n", stringify!($arg), &$arg));
                        )*
                        __s
                    };
                    let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            { $body }
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(__e) = __result {
                        panic!(
                            "proptest {} failed at case {}:\n{}\ninputs:\n{}",
                            stringify!($name), __case, __e, __inputs
                        );
                    }
                    __case += 1;
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn determinism_same_name_same_stream() {
        let mut a = crate::rng::TestRng::from_name("x");
        let mut b = crate::rng::TestRng::from_name("x");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn string_pattern_shapes() {
        let mut rng = crate::rng::TestRng::from_name("pat");
        for _ in 0..200 {
            let s = "[a-z][a-z0-9]{0,6}".gen_value(&mut rng).unwrap();
            assert!(!s.is_empty() && s.len() <= 7, "bad {s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
        }
        for _ in 0..50 {
            let s = "[ -~\n]{0,400}".gen_value(&mut rng).unwrap();
            assert!(s.len() <= 400);
            assert!(s.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 40, ..ProptestConfig::default() })]

        #[test]
        fn ranges_respect_bounds(a in 3i64..9, b in 1usize..4, f in -2.0f64..2.0) {
            prop_assert!((3..9).contains(&a));
            prop_assert!((1..4).contains(&b));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn oneof_and_filter(kind in prop_oneof![Just(1i64), Just(2), 5i64..8],
                            even in (0i64..100).prop_filter("odd", |v| v % 2 == 0)) {
            prop_assert!(kind == 1 || kind == 2 || (5..8).contains(&kind));
            prop_assert_eq!(even % 2, 0);
        }

        #[test]
        fn vec_lengths(v in prop::collection::vec(any::<bool>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5, "len {}", v.len());
        }
    }
}
