//! Vendored minimal re-implementation of the `rustc-hash` crate (FxHash).
//!
//! The build environment has no access to crates.io, so the small external
//! dependencies this workspace uses are vendored as API-compatible subsets.
//! This one provides `FxHashMap`/`FxHashSet` backed by the Fx multiply-mix
//! hasher — fast, deterministic within a process, and *not* HashDoS
//! resistant (exactly like the real crate).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx hasher: rotate, xor, multiply per word.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(5) ^ i).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
            self.add_to_hash(rem.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_round_trips() {
        let mut m: FxHashMap<String, i32> = FxHashMap::default();
        m.insert("a".into(), 1);
        m.insert("b".into(), 2);
        assert_eq!(m.get("a"), Some(&1));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn hashing_is_deterministic() {
        let h = |s: &str| {
            let mut hasher = FxHasher::default();
            hasher.write(s.as_bytes());
            hasher.finish()
        };
        assert_eq!(h("fortrand"), h("fortrand"));
        assert_ne!(h("fortrand"), h("fortrane"));
    }
}
