//! Vendored minimal benchmark harness, API-compatible with the subset of
//! crates.io `criterion` this workspace's `benches/` use: `Criterion`,
//! `benchmark_group` (+ `sample_size`, `bench_with_input`, `bench_function`,
//! `finish`), `Bencher::iter`, `BenchmarkId::new`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! It times each benchmark with `std::time::Instant` (a short warmup, then
//! `sample_size` samples) and prints min/median/mean per benchmark. No
//! statistics beyond that, no HTML reports, no CLI filtering.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const DEFAULT_SAMPLE_SIZE: usize = 20;

#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            _c: self,
            name,
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into(), DEFAULT_SAMPLE_SIZE, &mut f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, self.sample_size, &mut |b| f(b, input));
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        run_one(&label, self.sample_size, &mut f);
        self
    }

    pub fn finish(self) {}
}

fn run_one(label: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        elapsed: Duration::ZERO,
        iters: 0,
    };
    // Warmup: one untimed invocation so lazy setup doesn't skew sample 0.
    f(&mut b);
    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples {
        b.elapsed = Duration::ZERO;
        b.iters = 0;
        f(&mut b);
        let per_iter = if b.iters > 0 {
            b.elapsed / b.iters as u32
        } else {
            Duration::ZERO
        };
        times.push(per_iter);
    }
    times.sort();
    let min = times[0];
    let median = times[times.len() / 2];
    let mean = times.iter().sum::<Duration>() / times.len() as u32;
    println!("bench {label}: min {min:?}  median {median:?}  mean {mean:?}  ({samples} samples)");
}

pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        self.elapsed += start.elapsed();
        self.iters += 1;
    }
}

pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), param),
        }
    }

    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId {
            label: param.to_string(),
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iters() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3);
        let mut calls = 0u64;
        g.bench_with_input(BenchmarkId::new("id", 1), &5u64, |b, &x| {
            b.iter(|| {
                calls += 1;
                x * 2
            })
        });
        g.finish();
        // warmup + 3 samples
        assert_eq!(calls, 4);
    }
}
