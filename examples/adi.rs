//! ADI (alternating-direction) integration: the paper's §6 motivation for
//! dynamic data decomposition. Row sweeps run local under `(BLOCK,:)`,
//! column sweeps under `(:,BLOCK)`; the executable `DISTRIBUTE` statements
//! between the phases become remap library calls, and *all* communication
//! in the program is those remaps.
//!
//! ```text
//! cargo run --release --example adi
//! ```

use fortrand::corpus::adi_source;
use fortrand::{run_sequential, Session, Strategy};
use std::collections::BTreeMap;

fn main() {
    let n = 64i64;
    let steps = 4;
    let nprocs = 8;
    let src = adi_source(n, steps, nprocs);

    // Sequential reference.
    let (prog, info) = fortrand_frontend::load_program(&src).expect("parse");
    let a_seq = prog.interner.get("a").unwrap();
    let mut init = BTreeMap::new();
    init.insert(
        a_seq,
        (0..n * n)
            .map(|i| ((i % 31) as f64) * 0.1)
            .collect::<Vec<_>>(),
    );
    let seq = run_sequential(&prog, &info, &init);

    println!("ADI {n}x{n}, {steps} time steps, {nprocs} processors\n");
    println!(
        "{:<20} {:>12} {:>10} {:>12} {:>8}",
        "strategy", "time (ms)", "msgs", "bytes", "remaps"
    );
    for (name, strategy) in [
        ("interprocedural", Strategy::Interprocedural),
        ("immediate", Strategy::Immediate),
        ("runtime-res", Strategy::RuntimeResolution),
    ] {
        let compiled = Session::new(src.as_str())
            .strategy(strategy)
            .compile()
            .expect("compilation");
        let a = compiled.spmd().interner.get("a").unwrap();
        let mut sinit = BTreeMap::new();
        sinit.insert(a, init[&a_seq].clone());
        let r = compiled.run(&sinit).expect("execution");
        // Verify against the sequential run.
        let maxerr = r.arrays[&a]
            .iter()
            .zip(&seq.arrays[&a_seq])
            .map(|(g, e)| (g - e).abs())
            .fold(0.0f64, f64::max);
        assert!(maxerr < 1e-6, "{name}: max error {maxerr}");
        println!(
            "{:<20} {:>12.3} {:>10} {:>12} {:>8}",
            name,
            r.stats.time_ms(),
            r.stats.total_msgs,
            r.stats.total_bytes,
            r.stats.total_remaps
        );
    }
    println!(
        "\nEvery sweep is communication-free under its phase's distribution; \
         the remaps between phases are the entire message traffic — the \
         trade dynamic data decomposition makes."
    );
}
