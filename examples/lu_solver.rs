//! LU factorization (the paper's §9 dgefa case study): compile the
//! column-cyclic LINPACK kernel interprocedurally, run it on the simulated
//! machine, verify the factors against the sequential interpreter, and
//! print a speedup curve.
//!
//! ```text
//! cargo run --release --example lu_solver
//! ```

use fortrand::corpus::{dgefa_matrix, dgefa_source};
use fortrand::{run_sequential, Session, Strategy};
use std::collections::BTreeMap;

fn main() {
    let n = 64i64;

    // Sequential reference factorization.
    let src1 = dgefa_source(n, 1);
    let (prog, info) = fortrand_frontend::load_program(&src1).expect("parse");
    let mut seq_init = BTreeMap::new();
    seq_init.insert(prog.interner.get("a").unwrap(), dgefa_matrix(n));
    let seq = run_sequential(&prog, &info, &seq_init);
    let reference = &seq.arrays[&prog.interner.get("a").unwrap()];

    println!("dgefa, n={n}, columns distributed (:,CYCLIC)\n");
    println!(
        "{:<6} {:>12} {:>10} {:>12} {:>9}",
        "procs", "time (ms)", "msgs", "bytes", "maxerr"
    );
    let mut base = None;
    let mut speedups = Vec::new();
    for p in [1usize, 2, 4, 8, 16] {
        let src = dgefa_source(n, p);
        let compiled = Session::new(src.as_str())
            .strategy(Strategy::Interprocedural)
            .compile()
            .expect("compilation");
        let mut init = BTreeMap::new();
        let a = compiled.spmd().interner.get("a").unwrap();
        init.insert(a, dgefa_matrix(n));
        let r = compiled.run(&init).expect("execution");
        let got = &r.arrays[&a];
        let maxerr = got
            .iter()
            .zip(reference)
            .map(|(g, e)| (g - e).abs())
            .fold(0.0f64, f64::max);
        println!(
            "{:<6} {:>12.3} {:>10} {:>12} {:>9.2e}",
            p,
            r.stats.time_ms(),
            r.stats.total_msgs,
            r.stats.total_bytes,
            maxerr
        );
        assert!(
            maxerr < 1e-6,
            "factorization must match the sequential reference"
        );
        let t = r.stats.time_us;
        if p == 1 {
            base = Some(t);
        }
        if let Some(b) = base {
            speedups.push((p, b / t));
        }
    }
    println!("\nspeedups: {:?}", speedups);
    println!(
        "\nEvery processor count reproduces the sequential factors exactly; \
         the speedup curve flattens as the pivot broadcasts start to \
         dominate — the shape reported for the iPSC/860."
    );
}
