//! Dynamic data decomposition (the paper's §6, Figs. 15–16): a time-step
//! loop whose callee wants a different distribution. Shows how each
//! optimization level — live decompositions, loop-invariant hoisting,
//! array kills — cuts the remapping traffic.
//!
//! ```text
//! cargo run --release --example dynamic_remap
//! ```

use fortrand::corpus::fig15_source;
use fortrand::{compile, CompileOptions, DynOptLevel, Strategy};
use fortrand_machine::Machine;
use fortrand_spmd::print::pretty;
use fortrand_spmd::run_spmd;
use std::collections::BTreeMap;

fn main() {
    let t = 16;
    let nprocs = 4;
    let src = fig15_source(t, nprocs);

    println!("Fig. 15 program, T={t} time steps, {nprocs} processors\n");
    println!(
        "{:<26} {:>8} {:>12} {:>10} {:>12}",
        "optimization level", "remaps", "time (ms)", "msgs", "bytes"
    );
    for (label, lvl) in [
        ("16a none", DynOptLevel::None),
        ("16b live decompositions", DynOptLevel::Live),
        ("16c + loop-invariant", DynOptLevel::Hoist),
        ("16d + array kills", DynOptLevel::Kills),
    ] {
        let out = compile(
            &src,
            &CompileOptions {
                strategy: Strategy::Interprocedural,
                dyn_opt: lvl,
                ..Default::default()
            },
        )
        .expect("compilation");
        let machine = Machine::new(nprocs);
        let r = run_spmd(&out.spmd, &machine, &BTreeMap::new());
        println!(
            "{:<26} {:>8} {:>12.3} {:>10} {:>12}",
            label,
            r.stats.total_remaps,
            r.stats.time_ms(),
            r.stats.total_msgs,
            r.stats.total_bytes
        );
        if lvl == DynOptLevel::Kills {
            println!("\n--- main program at level 16d ---");
            for line in pretty(&out.spmd, out.spmd.main).lines() {
                println!("  {line}");
            }
        }
    }
}
