//! Dynamic data decomposition (the paper's §6, Figs. 15–16): a time-step
//! loop whose callee wants a different distribution. Shows how each
//! optimization level — live decompositions, loop-invariant hoisting,
//! array kills — cuts the remapping traffic.
//!
//! ```text
//! cargo run --release --example dynamic_remap
//! ```

use fortrand::corpus::fig15_source;
use fortrand::{DynOptLevel, Session, Strategy};
use fortrand_spmd::print::pretty;
use std::collections::BTreeMap;

fn main() {
    let t = 16;
    let nprocs = 4;
    let src = fig15_source(t, nprocs);

    println!("Fig. 15 program, T={t} time steps, {nprocs} processors\n");
    println!(
        "{:<26} {:>8} {:>12} {:>10} {:>12}",
        "optimization level", "remaps", "time (ms)", "msgs", "bytes"
    );
    for (label, lvl) in [
        ("16a none", DynOptLevel::None),
        ("16b live decompositions", DynOptLevel::Live),
        ("16c + loop-invariant", DynOptLevel::Hoist),
        ("16d + array kills", DynOptLevel::Kills),
    ] {
        let compiled = Session::new(src.as_str())
            .strategy(Strategy::Interprocedural)
            .dyn_opt(lvl)
            .compile()
            .expect("compilation");
        let r = compiled.run(&BTreeMap::new()).expect("execution");
        println!(
            "{:<26} {:>8} {:>12.3} {:>10} {:>12}",
            label,
            r.stats.total_remaps,
            r.stats.time_ms(),
            r.stats.total_msgs,
            r.stats.total_bytes
        );
        if lvl == DynOptLevel::Kills {
            println!("\n--- main program at level 16d ---");
            for line in pretty(compiled.spmd(), compiled.spmd().main).lines() {
                println!("  {line}");
            }
        }
    }
}
