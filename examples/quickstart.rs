//! Quickstart: compile a Fortran D program, look at the generated SPMD
//! message-passing code, and execute it on the simulated machine — all
//! through the [`fortrand::Session`] facade.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use fortrand::{Session, Strategy};
use std::collections::BTreeMap;

const PROGRAM: &str = "
      PROGRAM demo
      PARAMETER (n$proc = 4)
      REAL x(100)
      DISTRIBUTE x(BLOCK)
      call shiftadd(x)
      END

      SUBROUTINE shiftadd(u)
      REAL u(100)
      do i = 1, 95
        u(i) = 0.5 * u(i+5)
      enddo
      END
";

fn main() {
    // 1. Compile with the full interprocedural pipeline.
    let compiled = Session::new(PROGRAM)
        .strategy(Strategy::Interprocedural)
        .compile()
        .expect("compilation");

    println!("=== generated SPMD node program ===\n{}", compiled.emit());
    let report = compiled.report();
    println!(
        "clones: {:?}   static sends: {}   static broadcasts: {}",
        report.clones, report.static_sends, report.static_bcasts
    );

    // 2. Execute on a 4-processor simulated distributed-memory machine.
    let mut init = BTreeMap::new();
    let x = compiled.spmd().interner.get("x").unwrap();
    init.insert(x, (1..=100).map(|v| v as f64).collect::<Vec<_>>());
    let result = compiled.run(&init).expect("execution");

    println!("\n=== simulated execution ===");
    println!(
        "time {:.1} µs, {} messages, {} bytes",
        result.stats.time_us, result.stats.total_msgs, result.stats.total_bytes
    );
    println!("x(1..8) = {:?}", &result.arrays[&x][..8]);
}
