//! Heat-pipeline example: a 1-D relaxation swept through subroutine calls
//! (the paper's Fig. 1 motif at application scale), compared across the
//! three compilation strategies.
//!
//! ```text
//! cargo run --release --example heat_pipeline
//! ```

use fortrand::corpus::relax_source;
use fortrand::{DynOptLevel, Session, Strategy};
use std::collections::BTreeMap;

fn main() {
    let n = 512;
    let steps = 4;
    let nprocs = 8;
    let src = relax_source(n, 3, steps, nprocs);

    println!("1-D relaxation, n={n}, {steps} double-sweeps, {nprocs} processors\n");
    println!(
        "{:<20} {:>12} {:>10} {:>12} {:>10}",
        "strategy", "time (ms)", "msgs", "bytes", "flops"
    );
    for (name, strategy) in [
        ("interprocedural", Strategy::Interprocedural),
        ("immediate", Strategy::Immediate),
        ("runtime-res", Strategy::RuntimeResolution),
    ] {
        let compiled = Session::new(src.as_str())
            .strategy(strategy)
            .dyn_opt(DynOptLevel::Kills)
            .compile()
            .expect("compilation");
        let mut init = BTreeMap::new();
        let x = compiled.spmd().interner.get("x").unwrap();
        init.insert(x, (0..n).map(|i| (i % 17) as f64).collect::<Vec<_>>());
        let r = compiled.run(&init).expect("execution");
        println!(
            "{:<20} {:>12.3} {:>10} {:>12} {:>10}",
            name,
            r.stats.time_ms(),
            r.stats.total_msgs,
            r.stats.total_bytes,
            r.stats.total_flops
        );
    }
    println!(
        "\nThe interprocedural strategy vectorizes each sweep's boundary \
         exchange out of the loops; run-time resolution pays per-element \
         ownership tests and messages — the gap is the paper's headline."
    );
}
